//! End-to-end integration: the full simulate → measure → model pipeline
//! across all five crates.

use drqos_analysis::model::{ElasticQosModel, EventRates};
use drqos_analysis::pipeline::analyze;
use drqos_core::experiment::run_churn;
use drqos_core::qos::ElasticQos;
use drqos_tests::{quick_experiment, small_paper_graph};

#[test]
fn pipeline_produces_model_within_qos_range() {
    let point = analyze(small_paper_graph(60, 1), &quick_experiment(300, 800, 1));
    let sim = point.report.avg_bandwidth_sim;
    assert!((100.0 - 1e-6..=500.0 + 1e-6).contains(&sim), "sim {sim}");
    let model = point.analytic_avg.expect("enough churn for a model");
    assert!((100.0..=500.0).contains(&model), "model {model}");
    assert!((100.0..=500.0).contains(&point.ideal_avg));
    point.network.validate();
}

#[test]
fn model_tracks_simulation_at_moderate_load() {
    // The paper's headline: the Markov model "accurately represents the
    // behavior of DR-connections with elastic QoS".
    let point = analyze(small_paper_graph(80, 2), &quick_experiment(600, 1_500, 2));
    let sim = point.report.avg_bandwidth_sim;
    let model = point.analytic_avg.expect("model solved");
    let rel = (model - sim).abs() / sim;
    assert!(
        rel < 0.30,
        "model {model:.1} vs simulation {sim:.1} ({:.0}% off)",
        rel * 100.0
    );
}

#[test]
fn network_invariants_survive_heavy_mixed_churn() {
    let mut config = quick_experiment(400, 1_200, 3);
    config.gamma = 0.0008; // close to λ: plenty of failures
    config.mean_repair = 300.0;
    let (report, net) = run_churn(small_paper_graph(60, 3), &config);
    assert!(report.failures > 0);
    net.validate();
}

#[test]
fn measured_params_feed_model_directly() {
    let (report, _) = run_churn(small_paper_graph(60, 4), &quick_experiment(400, 800, 4));
    let params = report.params.expect("arrivals recorded");
    assert!(params.is_consistent());
    let model = ElasticQosModel::new(
        ElasticQos::paper_video(50),
        &params,
        EventRates::paper_default(0.0),
    )
    .expect("consistent params build");
    let avg = model.average_bandwidth().expect("solvable chain");
    assert!((100.0..=500.0).contains(&avg));
    // The steady-state distribution over active states sums to one.
    if let Ok(ss) = model.steady_state() {
        let total: f64 = ss.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn rejected_and_accepted_requests_balance() {
    let (report, net) = run_churn(small_paper_graph(40, 5), &quick_experiment(800, 400, 5));
    assert_eq!(
        report.attempted,
        report.accepted + report.rejected_primary + report.rejected_backup
    );
    // Active = accepted − released − dropped; at minimum it is bounded.
    assert!(report.active_end as u64 <= report.accepted);
    assert_eq!(net.len(), report.active_end);
}

#[test]
fn five_state_and_nine_state_models_agree() {
    // Table 1's claim as an integration property: the increment size does
    // not change the average bandwidth materially.
    let run = |inc: u64, seed: u64| {
        let mut config = quick_experiment(500, 1_200, seed);
        config.qos = ElasticQos::paper_video(inc);
        analyze(small_paper_graph(80, 6), &config)
    };
    let five = run(100, 6).analytic_avg;
    let nine = run(50, 6).analytic_avg;
    if let (Some(a), Some(b)) = (five, nine) {
        assert!(
            (a - b).abs() < 80.0,
            "5-state {a:.1} vs 9-state {b:.1} diverge too much"
        );
    }
}
