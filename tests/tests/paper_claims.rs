//! Each qualitative claim of the paper's evaluation, checked at reduced
//! scale on every `cargo test` run. The full-size regenerators live in
//! `drqos-bench` (binaries `fig2`, `table1`, `fig3`, `fig4`).
//!
//! The multi-point checks run through the bench crate's parallel sweep
//! runner ([`drqos_bench::runner::sweep`]), same as the full-size
//! binaries, so the points of a claim are simulated concurrently and the
//! runner's split-mix seed derivation is exercised end to end. Paired
//! comparisons (5-state vs 9-state, calm vs stormy, elastic vs rigid)
//! share one derived seed — common random numbers keep the comparison
//! tight.

use drqos_analysis::pipeline::analyze;
use drqos_bench::runner::{derive_seed, sweep, PointObs};
use drqos_core::experiment::run_churn;
use drqos_core::qos::ElasticQos;
use drqos_sim::rng::Rng;
use drqos_tests::{quick_experiment, small_paper_graph};
use drqos_topology::transit_stub::TransitStubConfig;
use drqos_topology::waxman;

/// Figure 2's shape: bandwidth starts at the maximum, decays monotonically
/// (modulo noise) towards the minimum as load grows, and the analytic
/// model stays close to the simulation.
#[test]
fn fig2_bandwidth_decays_with_load_and_model_tracks() {
    let loads = [50usize, 400, 1_200];
    let result = sweep(21, &loads, |&load, point_seed| {
        let mut config = quick_experiment(load, 900, 21);
        config.seed = point_seed;
        let point = analyze(small_paper_graph(60, 21), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &point.report);
        (
            (
                point.report.avg_bandwidth_sim,
                point.analytic_avg,
                point.ideal_avg,
            ),
            obs,
        )
    });
    let mut sims = Vec::new();
    for (i, &(sim, model, ideal)) in result.rows().enumerate() {
        if let Some(model) = model {
            assert!(
                (model - sim).abs() / sim < 0.35,
                "load {}: model {model:.0} vs sim {sim:.0}",
                loads[i]
            );
            // Both under (or at) the ideal reference.
            assert!(model <= ideal + 30.0);
        }
        sims.push(sim);
    }
    assert!(sims[0] > sims[2], "no decay across the sweep: {sims:?}");
    assert!(sims[0] > 450.0, "light load should be near the maximum");
    assert!(
        result.total_events() > 0,
        "sweep must count simulated events"
    );
}

/// Table 1's first claim: the increment size (5 vs 9 states) does not
/// change the average bandwidth. Both increments run under one derived
/// seed (common random numbers) so only Δ varies.
#[test]
fn table1_increment_size_immaterial() {
    let increments = [100u64, 50];
    let shared_seed = derive_seed(22, 0);
    let rows = sweep(22, &increments, |&inc, _point_seed| {
        let mut config = quick_experiment(500, 1_000, 22);
        config.qos = ElasticQos::paper_video(inc);
        config.seed = shared_seed;
        let a = analyze(small_paper_graph(60, 22), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (a.report.avg_bandwidth_sim, obs)
    })
    .into_rows();
    let (five, nine) = (rows[0], rows[1]);
    assert!(
        (five - nine).abs() < 60.0,
        "Δ=100 gives {five:.0}, Δ=50 gives {nine:.0}"
    );
}

/// Table 1's second claim: the tiered (transit-stub) network rejects most
/// connections for lack of bandwidth in the core.
#[test]
fn table1_tier_network_saturates_early() {
    let tier = TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(23))
        .unwrap()
        .graph;
    let (tier_report, _) = run_churn(tier, &quick_experiment(2_000, 300, 23));
    let (random_report, _) = run_churn(
        small_paper_graph(100, 23),
        &quick_experiment(2_000, 300, 23),
    );
    assert!(
        tier_report.accepted < random_report.accepted / 2,
        "tier accepted {} vs random {}",
        tier_report.accepted,
        random_report.accepted
    );
}

/// Figure 3's shape: with load fixed, growing the network raises the
/// average bandwidth back towards the maximum, and the edge count grows
/// with the node count.
#[test]
fn fig3_more_nodes_means_more_bandwidth() {
    let node_counts = [40usize, 120];
    let rows = sweep(24, &node_counts, |&nodes, point_seed| {
        let graph = waxman::paper_waxman_scaled(nodes)
            .generate(&mut Rng::seed_from_u64(24))
            .unwrap();
        let edges = graph.link_count();
        let mut config = quick_experiment(800, 600, 24);
        config.seed = point_seed;
        let a = analyze(graph, &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        ((a.report.avg_bandwidth_sim, edges), obs)
    })
    .into_rows();
    let ((bw_small, edges_small), (bw_large, edges_large)) = (rows[0], rows[1]);
    assert!(edges_large > edges_small);
    assert!(
        bw_large > bw_small,
        "more resources should raise bandwidth: {bw_small:.0} vs {bw_large:.0}"
    );
}

/// Figure 4's claim: realistic failure rates (γ ≪ λ) have no visible
/// effect on the average bandwidth. Calm and stormy runs share one
/// derived seed so only γ varies.
#[test]
fn fig4_small_failure_rates_invisible() {
    let gammas = [0.0f64, 1e-6];
    let shared_seed = derive_seed(25, 0);
    let rows = sweep(25, &gammas, |&gamma, _point_seed| {
        let mut config = quick_experiment(500, 900, 25);
        config.gamma = gamma;
        config.seed = shared_seed;
        let a = analyze(small_paper_graph(60, 25), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (a.report.avg_bandwidth_sim, obs)
    })
    .into_rows();
    let (calm, stormy) = (rows[0], rows[1]);
    assert!(
        (calm - stormy).abs() < 40.0,
        "γ=1e-6 moved the average: {calm:.1} vs {stormy:.1}"
    );
}

/// Section 1's motivation: elastic QoS yields far more bandwidth per
/// channel than the rigid single-value scheme on the same workload.
#[test]
fn elastic_beats_rigid_baseline() {
    let variants = [
        ElasticQos::paper_video(50),
        ElasticQos::rigid(drqos_core::qos::Bandwidth::kbps(100)).unwrap(),
    ];
    let shared_seed = derive_seed(26, 0);
    let rows = sweep(26, &variants, |&qos, _point_seed| {
        let mut config = quick_experiment(300, 600, 26);
        config.qos = qos;
        config.seed = shared_seed;
        let a = analyze(small_paper_graph(60, 26), &config);
        let mut obs = PointObs::default();
        obs.absorb(&config, &a.report);
        (a.report.avg_bandwidth_sim, obs)
    })
    .into_rows();
    let (elastic, rigid) = (rows[0], rows[1]);
    assert!((rigid - 100.0).abs() < 1e-6, "rigid is pinned to 100");
    assert!(
        elastic > 1.5 * rigid,
        "elastic {elastic:.0} should dominate rigid {rigid:.0}"
    );
}
