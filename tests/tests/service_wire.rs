//! Wire-mode tests for `drqos-service`: the text-vs-binary daemon
//! equivalence proof (the two framings must decode to byte-identical
//! transcripts for the same session), a golden transcript of the binary
//! framing itself — every opcode plus each frame-level error family —
//! and a binary-mode load-generator smoke run.
//!
//! Re-bless the binary transcript after an intentional framing change:
//!
//! ```text
//! DRQOS_BLESS=1 cargo test -p drqos-tests --test service_wire
//! ```

use drqos_core::env::WireMode;
use drqos_core::network::{Network, NetworkConfig};
use drqos_service::engine::Engine;
use drqos_service::frame;
use drqos_service::loadgen::{self, LoadgenConfig};
use drqos_service::protocol::{self, Response};
use drqos_service::server::Server;
use drqos_testkit::golden::verify_golden;
use drqos_testkit::session::replay_script;
use drqos_topology::regular;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn ring_engine() -> Engine {
    Engine::new(Network::new(
        regular::ring(6).unwrap(),
        NetworkConfig::default(),
    ))
}

/// Every verb plus one error from each *domain* family: QoS (100),
/// admission (201), network (300, 302). Text-level parse errors (codes
/// 1–4) are unreachable through a well-formed binary frame — their
/// binary counterparts (malformed frames) are pinned by the golden
/// transcript below.
const WIRE_SCRIPT: &[&str] = &[
    "SNAPSHOT",
    "ESTABLISH 0 3 100 500 100",
    "ESTABLISH 1 4 100 500 100",
    "ESTABLISH 2 2 100 500 100",
    "ESTABLISH 0 2 0 500 100",
    "RELEASE 99",
    "FAIL-LINK 0",
    "FAIL-LINK 0",
    "REPAIR-LINK 0",
    "FAIL-NODE 5",
    "STATS",
    "SNAPSHOT",
    "RELEASE 1",
    "RELEASE 0",
    "SHUTDOWN",
];

/// Replaces the values of `STATS`' wall-clock fields with `_`, keeping
/// every deterministic field byte-exact for transcript comparison.
fn normalize_stats_line(line: &str) -> String {
    line.split(' ')
        .map(|tok| match tok.split_once('=') {
            Some((k, _)) if matches!(k, "p50_us" | "p95_us" | "p99_us" | "ops_per_sec") => {
                format!("{k}=_")
            }
            _ => tok.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs [`WIRE_SCRIPT`] against an in-process daemon speaking `wire` and
/// returns the decoded transcript plus the server's (ops, violations).
fn session_transcript(wire: WireMode) -> (String, u64, usize) {
    let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net)
        .expect("bind ephemeral")
        .with_wire(wire);
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());

    let tcp = TcpStream::connect(addr).expect("connect");
    tcp.set_nodelay(true).unwrap();
    let mut writer = tcp.try_clone().unwrap();
    let transcript = match wire {
        WireMode::Text => {
            let mut reader = BufReader::new(tcp);
            replay_script("ring6 wire equivalence", WIRE_SCRIPT, |line| {
                writeln!(writer, "{line}").unwrap();
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                normalize_stats_line(resp.trim_end())
            })
        }
        WireMode::Binary => {
            let mut reader = tcp;
            replay_script("ring6 wire equivalence", WIRE_SCRIPT, |line| {
                let req = protocol::parse(line).expect("script lines parse");
                writer.write_all(&frame::encode_request(&req)).unwrap();
                writer.flush().unwrap();
                let body = frame::read_frame(&mut reader).expect("response frame");
                let resp = frame::decode_response(&body).expect("well-formed response");
                normalize_stats_line(&resp.to_string())
            })
        }
    };
    let report = handle.join().unwrap().unwrap();
    (transcript, report.ops, report.violations)
}

/// The tentpole equivalence proof: a text daemon and a binary daemon
/// serving the same session must produce byte-identical transcripts once
/// the binary replies are decoded — same payloads, same error codes,
/// same messages — and must count the same ops with a clean shutdown.
#[test]
fn text_and_binary_daemons_decode_to_identical_transcripts() {
    let (text, text_ops, text_violations) = session_transcript(WireMode::Text);
    let (binary, binary_ops, binary_violations) = session_transcript(WireMode::Binary);
    assert_eq!(text, binary, "wire modes must be observationally identical");
    assert_eq!(text_ops, binary_ops, "both daemons served every command");
    assert_eq!((text_violations, binary_violations), (0, 0));
    // Non-vacuity: the shared transcript really exercises each domain
    // error family, not just happy-path replies.
    for needle in ["ERR 100 ", "ERR 201 ", "ERR 300 ", "ERR 302 "] {
        assert!(text.contains(needle), "script must exercise {needle}");
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// A complete frame (length prefix included) around a hand-built body —
/// used to pin malformed-frame handling in the golden transcript.
fn raw_frame(body: &[u8]) -> Vec<u8> {
    let mut f = (body.len() as u32).to_le_bytes().to_vec();
    f.extend_from_slice(body);
    f
}

/// Golden transcript of the binary framing: every opcode, each domain
/// error family, and each frame-level error family (empty body → 1,
/// unknown opcode → 2, wrong argument count → 3, torn `u64` block → 4).
/// Each command line is `<label> | <request frame hex>`; each response
/// line is `<response frame hex> | <decoded text>`, so the golden file
/// pins the exact bytes while staying reviewable.
#[test]
fn binary_frames_match_blessed_transcript() {
    let req = |line: &str| frame::encode_request(&protocol::parse(line).expect("script parses"));
    let script: Vec<(&str, Vec<u8>)> = vec![
        ("SNAPSHOT", req("SNAPSHOT")),
        (
            "ESTABLISH 0 3 100 500 100",
            req("ESTABLISH 0 3 100 500 100"),
        ),
        (
            "ESTABLISH 1 4 100 500 100",
            req("ESTABLISH 1 4 100 500 100"),
        ),
        (
            "ESTABLISH 2 2 100 500 100",
            req("ESTABLISH 2 2 100 500 100"),
        ),
        ("ESTABLISH 0 2 0 500 100", req("ESTABLISH 0 2 0 500 100")),
        ("RELEASE 99", req("RELEASE 99")),
        ("FAIL-LINK 0", req("FAIL-LINK 0")),
        ("FAIL-LINK 0", req("FAIL-LINK 0")),
        ("REPAIR-LINK 0", req("REPAIR-LINK 0")),
        ("FAIL-NODE 5", req("FAIL-NODE 5")),
        ("RELEASE 1", req("RELEASE 1")),
        ("RELEASE 0", req("RELEASE 0")),
        ("empty body", raw_frame(&[])),
        ("unknown opcode 99", raw_frame(&[99])),
        (
            "RELEASE missing its argument",
            raw_frame(&[frame::OP_RELEASE]),
        ),
        (
            "RELEASE with a torn u64",
            raw_frame(&[frame::OP_RELEASE, 1, 2, 3]),
        ),
        ("SHUTDOWN", req("SHUTDOWN")),
    ];
    let commands: Vec<String> = script
        .iter()
        .map(|(label, frame_bytes)| format!("{label} | {}", hex(frame_bytes)))
        .collect();
    let command_refs: Vec<&str> = commands.iter().map(String::as_str).collect();

    let mut engine = ring_engine();
    let transcript = replay_script("ring6 binary frames", &command_refs, |cmd| {
        let frame_hex = cmd.rsplit(" | ").next().expect("label | hex shape");
        let frame_bytes = unhex(frame_hex);
        let (len_bytes, body) = frame_bytes.split_at(4);
        let announced = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        assert_eq!(announced, body.len(), "length field must match the body");
        // Mirror the daemon's binary reader: decode, re-render to the
        // canonical text line, hand it to the engine; decode errors are
        // answered directly without reaching the engine.
        let resp = match frame::decode_request(body) {
            Ok(req) => engine.handle_line(&req.render()),
            Err(e) => Response::from(e),
        };
        format!("{} | {resp}", hex(&frame::encode_response(&resp)))
    });
    // Non-vacuity before pinning bytes: all four frame-level families
    // and all four domain families appear in the decoded column.
    for needle in [
        "ERR 1 ", "ERR 2 ", "ERR 3 ", "ERR 4 ", "ERR 100 ", "ERR 201 ", "ERR 300 ", "ERR 302 ",
    ] {
        assert!(transcript.contains(needle), "transcript must pin {needle}");
    }
    if let Err(e) = verify_golden(&golden_dir(), "service_wire_binary", &transcript) {
        panic!("{e}");
    }
}

/// Golden transcript of the SRLG opcodes in the binary framing: both
/// happy paths (9 = `FAIL-SRLG`, 10 = `REPAIR-SRLG`), both domain error
/// families (305 unknown group, 306 state unchanged), and the
/// frame-level malformations of the new opcodes (missing argument,
/// torn `u64`). Same `<label> | <hex>` / `<hex> | <decoded>` shape as
/// the main binary golden, so the exact bytes stay pinned.
#[test]
fn binary_srlg_frames_match_blessed_transcript() {
    let req = |line: &str| frame::encode_request(&protocol::parse(line).expect("script parses"));
    let script: Vec<(&str, Vec<u8>)> = vec![
        (
            "ESTABLISH 0 3 100 500 100",
            req("ESTABLISH 0 3 100 500 100"),
        ),
        (
            "ESTABLISH 1 4 100 500 100",
            req("ESTABLISH 1 4 100 500 100"),
        ),
        ("FAIL-SRLG 0", req("FAIL-SRLG 0")),
        ("FAIL-SRLG 0", req("FAIL-SRLG 0")),
        ("FAIL-SRLG 99", req("FAIL-SRLG 99")),
        ("REPAIR-SRLG 0", req("REPAIR-SRLG 0")),
        ("REPAIR-SRLG 0", req("REPAIR-SRLG 0")),
        ("REPAIR-SRLG 99", req("REPAIR-SRLG 99")),
        (
            "FAIL-SRLG missing its argument",
            raw_frame(&[frame::OP_FAIL_SRLG]),
        ),
        (
            "REPAIR-SRLG with a torn u64",
            raw_frame(&[frame::OP_REPAIR_SRLG, 1, 2, 3]),
        ),
        ("SNAPSHOT", req("SNAPSHOT")),
        ("RELEASE 1", req("RELEASE 1")),
        ("RELEASE 0", req("RELEASE 0")),
        ("SHUTDOWN", req("SHUTDOWN")),
    ];
    let commands: Vec<String> = script
        .iter()
        .map(|(label, frame_bytes)| format!("{label} | {}", hex(frame_bytes)))
        .collect();
    let command_refs: Vec<&str> = commands.iter().map(String::as_str).collect();

    let mut net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let registered = drqos_core::register_seeded_srlgs(&mut net, 2, 2, 2001);
    assert_eq!(registered, 2, "ring of 6 fits two disjoint 2-link groups");
    let mut engine = Engine::new(net);
    let transcript = replay_script("ring6 binary srlg frames", &command_refs, |cmd| {
        let frame_hex = cmd.rsplit(" | ").next().expect("label | hex shape");
        let frame_bytes = unhex(frame_hex);
        let (len_bytes, body) = frame_bytes.split_at(4);
        let announced = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        assert_eq!(announced, body.len(), "length field must match the body");
        let resp = match frame::decode_request(body) {
            Ok(req) => engine.handle_line(&req.render()),
            Err(e) => Response::from(e),
        };
        format!("{} | {resp}", hex(&frame::encode_response(&resp)))
    });
    for needle in ["OK links=2", "ERR 305 ", "ERR 306 ", "ERR 3 ", "ERR 4 "] {
        assert!(transcript.contains(needle), "transcript must pin {needle}");
    }
    if let Err(e) = verify_golden(&golden_dir(), "service_wire_srlg", &transcript) {
        panic!("{e}");
    }
}

/// The load generator speaks the binary framing end-to-end: a seeded
/// 4-client run against a binary-wire daemon completes with zero
/// protocol errors and an invariant-clean shutdown.
#[test]
fn loadgen_over_binary_wire_runs_clean() {
    let net = Network::new(regular::torus(6, 6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net)
        .expect("bind ephemeral")
        .with_wire(WireMode::Binary);
    let addr = server.local_addr().unwrap();
    let server_handle = thread::spawn(move || server.run());

    let config = LoadgenConfig {
        addr: addr.to_string(),
        clients: 4,
        requests_per_client: 25,
        seed: 7,
        shutdown: true,
        wire: WireMode::Binary,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("binary loadgen completes");
    assert_eq!(report.protocol_errors, 0, "{}", report.summary());
    assert!(
        report.ops >= 4 * 25,
        "every establish counts: {}",
        report.ops
    );
    assert!(
        report.admitted > 0,
        "torus at 10 Mbps admits: {}",
        report.summary()
    );
    assert_eq!(report.clean_shutdown, Some(true));

    let server_report = server_handle.join().unwrap().unwrap();
    assert_eq!(server_report.violations, 0);
}
