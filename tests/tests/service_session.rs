//! Protocol-session tests for `drqos-service`: a golden transcript
//! covering every verb and error family, an order-independence proof for
//! concurrent disjoint-stream clients, and an in-process load-generator
//! smoke run (the PR's acceptance criterion).
//!
//! Re-bless the transcript after an intentional protocol change:
//!
//! ```text
//! DRQOS_BLESS=1 cargo test -p drqos-tests --test service_session
//! ```

use drqos_core::network::{Network, NetworkConfig};
use drqos_service::engine::Engine;
use drqos_service::loadgen::{self, LoadgenConfig};
use drqos_service::protocol::payload_field;
use drqos_service::server::Server;
use drqos_testkit::golden::verify_golden;
use drqos_testkit::session::replay_script;
use drqos_topology::regular;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn ring_engine() -> Engine {
    Engine::new(Network::new(
        regular::ring(6).unwrap(),
        NetworkConfig::default(),
    ))
}

/// Every verb plus one error from each family: protocol (2, 3, 4),
/// QoS (100), admission (201), network (300, 302). `STATS` is excluded —
/// it is the one intentionally non-deterministic reply.
const GOLDEN_SCRIPT: &[&str] = &[
    "SNAPSHOT",
    "ESTABLISH 0 3 100 500 100",
    "ESTABLISH 1 4 100 500 100",
    "SNAPSHOT",
    "ESTABLISH 2 2 100 500 100",
    "ESTABLISH 0 2 0 500 100",
    "RELEASE 99",
    "FAIL-LINK 0",
    "FAIL-LINK 0",
    "REPAIR-LINK 0",
    "FAIL-NODE 5",
    "SNAPSHOT",
    "RELEASE 1",
    "RELEASE 0",
    "BOGUS",
    "RELEASE",
    "RELEASE x",
    "SNAPSHOT",
    "SHUTDOWN",
];

#[test]
fn protocol_session_matches_blessed_transcript() {
    let mut engine = ring_engine();
    let transcript = replay_script("ring6 all verbs", GOLDEN_SCRIPT, |line| {
        engine.handle_line(line).to_string()
    });
    if let Err(e) = verify_golden(&golden_dir(), "service_session", &transcript) {
        panic!("{e}");
    }
}

/// Replays `script` as one drained server batch — the path that
/// engages wave admission for consecutive `ESTABLISH` lines — and
/// renders the same transcript shape as [`replay_script`].
fn batch_transcript(
    name: &str,
    engine: &mut drqos_service::engine::Engine,
    script: &[&str],
) -> String {
    use drqos_service::engine::Handled;
    use std::fmt::Write as _;
    let lines: Vec<String> = script.iter().map(|s| s.to_string()).collect();
    let replies = engine.handle_server_batch(&lines);
    let mut out = format!("# drqos protocol session: {name}\n");
    for (line, handled) in lines.iter().zip(replies) {
        let reply = match handled {
            Handled::Reply(r) => r,
            Handled::ShutdownRequested => engine.finish_shutdown(),
        };
        writeln!(out, "> {line}").expect("writing to String cannot fail");
        writeln!(out, "< {reply}").expect("writing to String cannot fail");
    }
    out
}

/// The full golden script through a `DRQOS_SHARDS=4` engine, as the
/// server's event loop would drain it: the transcript is blessed on its
/// own golden and must also be byte-identical to the monolith's batch
/// replay of the same script.
#[test]
fn sharded_session_matches_blessed_transcript_and_the_monolith() {
    let net = || Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let mut sharded = Engine::with_shards(net(), 4);
    let transcript = batch_transcript("ring6 all verbs, 4 shards", &mut sharded, GOLDEN_SCRIPT);
    let mut mono = Engine::with_shards(net(), 1);
    let mono_transcript = batch_transcript("ring6 all verbs, 4 shards", &mut mono, GOLDEN_SCRIPT);
    assert_eq!(
        transcript, mono_transcript,
        "sharded batch replay must be byte-identical to the monolith"
    );
    if let Err(e) = verify_golden(&golden_dir(), "service_session_sharded", &transcript) {
        panic!("{e}");
    }
}

/// The SRLG verbs plus both of their error families: 305 (unknown
/// group) and 306 (state unchanged — firing an already-down group,
/// healing an already-up one), interleaved with live connections so the
/// `FAIL-SRLG` reply carries real activation/drop counts, plus the
/// text-level parse errors for the new verbs.
const SRLG_SCRIPT: &[&str] = &[
    "SNAPSHOT",
    "ESTABLISH 0 3 100 500 100",
    "ESTABLISH 1 4 100 500 100",
    "FAIL-SRLG 0",
    "SNAPSHOT",
    "FAIL-SRLG 0",
    "FAIL-SRLG 99",
    "REPAIR-SRLG 0",
    "REPAIR-SRLG 0",
    "REPAIR-SRLG 99",
    "FAIL-SRLG",
    "REPAIR-SRLG x",
    "SNAPSHOT",
    "RELEASE 1",
    "RELEASE 0",
    "SHUTDOWN",
];

/// A ring engine with two seeded 2-link shared-risk groups — the same
/// derivation `drqosd --seed 2001` performs under `DRQOS_SRLG_COUNT=2`
/// `DRQOS_SRLG_SIZE=2`.
fn srlg_ring_engine(shards: usize) -> Engine {
    let mut net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let registered = drqos_core::register_seeded_srlgs(&mut net, 2, 2, 2001);
    assert_eq!(registered, 2, "ring of 6 fits two disjoint 2-link groups");
    Engine::with_shards(net, shards)
}

/// Golden transcript for the correlated-failure verbs, pinned through
/// the sharded batch path: `DRQOS_SHARDS=4` and `=1` engines must replay
/// byte-identically, and the shared transcript must exercise both SRLG
/// error families before being compared against the blessed trace.
#[test]
fn srlg_session_matches_blessed_transcript_at_any_shard_count() {
    let mut sharded = srlg_ring_engine(4);
    let transcript = batch_transcript("ring6 srlg verbs, 4 shards", &mut sharded, SRLG_SCRIPT);
    let mut mono = srlg_ring_engine(1);
    let mono_transcript = batch_transcript("ring6 srlg verbs, 4 shards", &mut mono, SRLG_SCRIPT);
    assert_eq!(
        transcript, mono_transcript,
        "SRLG batch replay must be byte-identical across shard counts"
    );
    for needle in ["OK links=2", "ERR 305 ", "ERR 306 ", "ERR 3 "] {
        assert!(transcript.contains(needle), "script must exercise {needle}");
    }
    if let Err(e) = verify_golden(&golden_dir(), "service_session_srlg", &transcript) {
        panic!("{e}");
    }
}

/// A serial replay of all four clients' streams, used as the reference
/// for the concurrent run below.
fn serial_snapshot(streams: &[Vec<String>]) -> String {
    let mut engine = ring_engine();
    for stream in streams {
        for line in stream {
            let resp = engine.handle_line(line).to_string();
            assert!(
                resp.starts_with("OK "),
                "serial replay must be clean: {resp}"
            );
        }
    }
    engine.handle_line("SNAPSHOT").to_string()
}

/// Four disjoint-stream clients (distinct endpoints, ample capacity, no
/// cross-client RELEASEs) must leave the network in the same final state
/// regardless of interleaving: the event loop serializes all writes, and
/// with no contention every connection reaches `bmax` either way.
#[test]
fn concurrent_disjoint_clients_match_serial_replay() {
    // Ring of 6 at 10 Mbps: 4 concurrent 500-Kbps-max connections cannot
    // contend, so admitted bandwidth is interleaving-independent.
    let streams: Vec<Vec<String>> = (0..4)
        .map(|c| {
            vec![
                format!("ESTABLISH {} {} 100 500 100", c, (c + 2) % 6),
                "SNAPSHOT".to_string(),
            ]
        })
        .collect();
    let expected = serial_snapshot(&streams);

    let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let server_handle = thread::spawn(move || server.run());
    thread::scope(|scope| {
        for stream in &streams {
            scope.spawn(move || {
                let tcp = TcpStream::connect(addr).expect("connect");
                tcp.set_nodelay(true).unwrap();
                let mut writer = tcp.try_clone().unwrap();
                let mut reader = BufReader::new(tcp);
                for line in stream {
                    writeln!(writer, "{line}").unwrap();
                    let mut resp = String::new();
                    reader.read_line(&mut resp).unwrap();
                    let resp = resp.trim_end();
                    assert!(
                        resp.starts_with("OK "),
                        "disjoint streams must not fail: {line} -> {resp}"
                    );
                }
            });
        }
    });
    // All clients done; the final state must match the serial reference.
    let tcp = TcpStream::connect(addr).expect("connect");
    let mut writer = tcp.try_clone().unwrap();
    let mut reader = BufReader::new(tcp);
    writeln!(writer, "SNAPSHOT").unwrap();
    let mut snap = String::new();
    reader.read_line(&mut snap).unwrap();
    assert_eq!(
        snap.trim_end(),
        expected,
        "concurrent != serial final state"
    );
    writeln!(writer, "SHUTDOWN").unwrap();
    let mut bye = String::new();
    reader.read_line(&mut bye).unwrap();
    assert_eq!(bye.trim_end(), "OK violations=0");
    let report = server_handle.join().unwrap().unwrap();
    assert_eq!(report.violations, 0);
}

/// The acceptance criterion: a seeded 4-client load-generator run against
/// an in-process server completes with zero protocol errors, reports tail
/// latency, and shuts the server down invariant-clean.
#[test]
fn loadgen_four_clients_zero_protocol_errors() {
    let net = Network::new(regular::torus(6, 6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let server_handle = thread::spawn(move || server.run());

    let config = LoadgenConfig {
        addr: addr.to_string(),
        clients: 4,
        requests_per_client: 50,
        seed: 2001,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen run completes");
    assert_eq!(report.protocol_errors, 0, "{}", report.summary());
    assert!(
        report.ops >= 4 * 50,
        "every establish counts: {}",
        report.ops
    );
    assert!(
        report.admitted > 0,
        "torus at 10 Mbps admits: {}",
        report.summary()
    );
    assert_eq!(report.clean_shutdown, Some(true));
    // Tail latency is measured (histogram floors at 1 µs once non-empty).
    assert!(report.latency.quantile_us(0.99) >= 1);

    let server_report = server_handle.join().unwrap().unwrap();
    assert_eq!(server_report.violations, 0);
    assert!(server_report.metrics_json.contains("\"op\":\"establish\""));
}

/// A session script with deliberately repeated endpoint pairs and a
/// fail/repair cycle — the shape that exercises every route-cache code
/// path: doorkeeper (miss #1), memoization (miss #2), a genuine hit
/// (the `RELEASE` restores the exact planning state the entry was
/// recorded under — value-based digests revalidate round-trips), lazy
/// staleness, and eager link eviction.
const CACHE_SCRIPT: &[&str] = &[
    "SNAPSHOT",
    "ESTABLISH 0 3 100 500 100",
    "ESTABLISH 0 3 100 500 100",
    "RELEASE 1",
    "ESTABLISH 0 3 100 500 100",
    "SNAPSHOT",
    "RELEASE 2",
    "FAIL-LINK 0",
    "ESTABLISH 0 3 100 500 100",
    "SNAPSHOT",
    "REPAIR-LINK 0",
    "ESTABLISH 1 4 100 500 100",
    "SNAPSHOT",
];

/// An engine with the route cache explicitly forced on or off — the
/// tests must control both sides themselves rather than inherit whatever
/// `DRQOS_ROUTE_CACHE` happens to be set in the environment.
fn ring_engine_with_cache(route_cache: bool) -> Engine {
    Engine::new(Network::new(
        regular::ring(6).unwrap(),
        NetworkConfig {
            route_cache,
            ..NetworkConfig::default()
        },
    ))
}

/// Replaces the values of `STATS`' wall-clock fields with `_`, keeping
/// every deterministic field (counters, cache hit/miss/stale) byte-exact
/// for golden comparison.
fn normalize_stats_line(line: &str) -> String {
    line.split(' ')
        .map(|tok| match tok.split_once('=') {
            Some((k, _)) if matches!(k, "p50_us" | "p95_us" | "p99_us" | "ops_per_sec") => {
                format!("{k}=_")
            }
            _ => tok.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Golden `STATS` transcript: with the wall-clock latency fields masked,
/// the reply — including the route-cache counters — is a deterministic
/// function of the session script and stays pinned byte-exact.
#[test]
fn stats_transcript_matches_blessed_transcript() {
    let mut engine = ring_engine_with_cache(true);
    let script: Vec<&str> = CACHE_SCRIPT.iter().copied().chain(["STATS"]).collect();
    let transcript = replay_script("ring6 cache script + stats", &script, |line| {
        normalize_stats_line(&engine.handle_line(line).to_string())
    });
    if let Err(e) = verify_golden(&golden_dir(), "service_session_stats", &transcript) {
        panic!("{e}");
    }
}

/// The daemon-level equivalence regression: a cache-on and a cache-off
/// engine (what `drqosd` builds under `DRQOS_ROUTE_CACHE=1` / `=0`) must
/// produce byte-identical transcripts — every `SNAPSHOT`, admission
/// response, and failure report — for the same scripted session.
#[test]
fn cache_on_and_off_daemons_replay_identically() {
    let mut on = ring_engine_with_cache(true);
    let mut off = ring_engine_with_cache(false);
    let transcript_on = replay_script("ring6 cache equivalence", CACHE_SCRIPT, |line| {
        on.handle_line(line).to_string()
    });
    let transcript_off = replay_script("ring6 cache equivalence", CACHE_SCRIPT, |line| {
        off.handle_line(line).to_string()
    });
    assert_eq!(transcript_on, transcript_off);
    // The equivalence must be non-vacuous: the cache-on engine really
    // consulted (and at least once replayed from) its memo.
    let stats = on.network().route_cache_stats();
    assert!(stats.lookups() > 0, "cache never consulted: {stats:?}");
    assert!(stats.hits > 0, "script must produce at least one hit");
}

/// `STATS` is reachable over TCP and reports integer counters (it is
/// excluded from the golden transcript because latency fields are
/// wall-clock measurements).
#[test]
fn stats_reports_counters_over_tcp() {
    let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let server_handle = thread::spawn(move || server.run());
    let tcp = TcpStream::connect(addr).expect("connect");
    let mut writer = tcp.try_clone().unwrap();
    let mut reader = BufReader::new(tcp);
    let mut roundtrip = |line: &str| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    };
    roundtrip("ESTABLISH 0 3 100 500 100");
    let stats = roundtrip("STATS");
    let payload = stats
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("STATS reply: {stats:?}"))
        .to_string();
    assert_eq!(payload_field(&payload, "admitted"), Some(1));
    assert_eq!(payload_field(&payload, "errors"), Some(0));
    assert_eq!(roundtrip("SHUTDOWN"), "OK violations=0");
    server_handle.join().unwrap().unwrap();
}
