//! Differential check: the event simulation and the analytic Markov model
//! compute the steady-state average bandwidth independently; on
//! fuzzer-generated workloads they must agree within a loose tolerance.
//! CI runs a wider band through the fuzz binary's `--diff` flag.

use drqos_testkit::{run_diff, DiffCase};

#[test]
fn simulation_tracks_the_markov_model_on_seeded_cases() {
    let mut checked = 0;
    for i in 0..3u64 {
        let case = DiffCase::from_seed(drqos_testkit::fuzz::case_seed(2001, i));
        let result = run_diff(&case);
        assert!(
            result.within(0.45),
            "case {:?}: sim {:.1} vs model {:?} (rel error {:?})",
            result.case,
            result.sim,
            result.model,
            result.rel_error
        );
        if result.rel_error.is_some() {
            checked += 1;
        }
    }
    // At least one case must have produced a real model prediction —
    // otherwise the check is vacuous and the estimator is likely broken.
    assert!(checked >= 1, "no differential case produced a model value");
}
