//! Tier-1 gate: the workspace must be lint-clean.
//!
//! `drqos-lint` mechanically enforces the contracts the rest of this suite
//! proves dynamically — a panic-free daemon, byte-stable emitters, and the
//! env/wire registries staying in sync with their docs. Running it as an
//! integration test means `cargo test` fails on a violation even before CI
//! runs the dedicated lint job.
//!
//! If this test fails: run `cargo run -p drqos-lint` for the findings, fix
//! them, or — only for an intentional, justified exception — run
//! `cargo run -p drqos-lint -- --fix-allowlist` and edit the emitted
//! pragma's TODO into a real justification.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives one level below the workspace root")
}

#[test]
fn workspace_has_no_lint_findings() {
    let findings = drqos_lint::run_workspace(workspace_root()).expect("workspace is readable");
    assert!(
        findings.is_empty(),
        "drqos-lint found violations:\n{}",
        drqos_lint::render_human(&findings)
    );
}

#[test]
fn readme_env_table_matches_registry() {
    // Subsumed by the full run above, but kept separate so a drifted env
    // table fails with the regeneration instructions instead of a generic
    // findings dump.
    let readme = std::fs::read_to_string(workspace_root().join("README.md")).expect("README.md");
    let findings = drqos_lint::check_env_docs(&readme);
    assert!(
        findings.is_empty(),
        "README.md env table is out of sync with drqos_core::env::registry().\n\
         Replace the block between the env-table markers with the output of\n\
         drqos_core::env::readme_table():\n\n{}\nFindings:\n{}",
        drqos_core::env::readme_table(),
        drqos_lint::render_human(&findings)
    );
}

#[test]
fn every_documented_rule_id_exists() {
    // TESTING.md documents the rules by id; a renamed rule must update the
    // docs (ids are a stable interface — pragmas embed them).
    let testing = std::fs::read_to_string(workspace_root().join("TESTING.md")).expect("TESTING.md");
    for rule in drqos_lint::rules::RULES {
        assert!(
            testing.contains(rule),
            "rule id `{rule}` is not documented in TESTING.md"
        );
    }
}

#[test]
fn call_graph_resolves_enough_edges_to_be_meaningful() {
    // The interprocedural rules are only as strong as the resolver
    // feeding them. If a parser or resolver regression drops the edge
    // count below the committed floor, reachability silently turns
    // vacuous — so the floor is itself a tier-1 assertion.
    let graph = drqos_lint::build_workspace_graph(workspace_root()).expect("workspace is readable");
    assert!(
        graph.resolved_edges() >= drqos_lint::callgraph::MIN_RESOLVED_EDGES,
        "call graph resolved only {} edges (floor {}): the resolver regressed",
        graph.resolved_edges(),
        drqos_lint::callgraph::MIN_RESOLVED_EDGES
    );
}
