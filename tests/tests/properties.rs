//! Property-style tests on the workspace's core invariants.
//!
//! These used to run under proptest; the offline build has no crates.io
//! access, so each property is now exercised over a deterministic family
//! of cases derived with the bench runner's split-mix hash. Coverage is
//! equivalent in spirit (dozens of seeds × sizes per property) and
//! failures are trivially reproducible: the panic message carries the
//! exact seed and parameters.

use drqos_bench::runner::{derive_seed, splitmix64};
use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_markov::birth_death;
use drqos_markov::ctmc::CtmcBuilder;
use drqos_markov::steady_state;
use drqos_sim::rng::Rng;
use drqos_topology::disjoint::suurballe;
use drqos_topology::graph::{Graph, NodeId};
use drqos_topology::paths::{bfs_path, k_shortest_paths, pass_all};
use drqos_topology::{metrics, waxman};

/// Deterministic case seeds for one property (`salt` names the property).
fn case_seeds(salt: u64, n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64).map(move |i| derive_seed(salt, i))
}

/// Maps a case seed into `lo..hi`.
fn in_range(seed: u64, lo: usize, hi: usize) -> usize {
    lo + (splitmix64(seed) % (hi - lo) as u64) as usize
}

/// A connected random graph from a seed (size 8..40).
fn seeded_graph(seed: u64, nodes: usize) -> Graph {
    waxman::WaxmanConfig::new(nodes, 0.8, 0.4)
        .expect("static parameters are valid")
        .generate(&mut Rng::seed_from_u64(seed))
        .expect("valid config")
}

#[test]
fn generated_graphs_are_connected_and_sane() {
    for seed in case_seeds(1, 48) {
        let nodes = in_range(seed, 8, 40);
        let g = seeded_graph(seed, nodes);
        assert_eq!(g.node_count(), nodes, "seed {seed}");
        assert!(metrics::is_connected(&g), "seed {seed} nodes {nodes}");
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        assert_eq!(degree_sum, 2 * g.link_count(), "seed {seed}");
    }
}

#[test]
fn bfs_paths_are_shortest_and_valid() {
    for seed in case_seeds(2, 24) {
        let nodes = in_range(seed, 8, 30);
        let g = seeded_graph(seed, nodes);
        let dist = metrics::bfs_distances(&g, NodeId(0));
        for dst in g.nodes().skip(1) {
            let p = bfs_path(&g, NodeId(0), dst, &pass_all).expect("connected graph");
            assert_eq!(Some(p.hop_count()), dist[dst.index()], "seed {seed}");
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.destination(), dst);
        }
    }
}

#[test]
fn suurballe_pairs_are_disjoint_and_no_shorter_than_bfs() {
    for seed in case_seeds(3, 24) {
        let nodes = in_range(seed, 8, 30);
        let g = seeded_graph(seed, nodes);
        let dst = NodeId(nodes - 1);
        if let Some(pair) = suurballe(&g, NodeId(0), dst, &pass_all) {
            assert!(pair.first.is_link_disjoint(&pair.second), "seed {seed}");
            assert!(pair.first.hop_count() <= pair.second.hop_count());
            // The pair's first path can never beat the true shortest path.
            let shortest = bfs_path(&g, NodeId(0), dst, &pass_all).expect("connected");
            assert!(
                pair.first.hop_count() >= shortest.hop_count(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn yen_paths_are_distinct_sorted_and_simple() {
    for seed in case_seeds(4, 16) {
        let nodes = in_range(seed, 8, 20);
        let g = seeded_graph(seed, nodes);
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(nodes - 1), 5, &pass_all);
        for w in ps.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count(), "seed {seed}");
            assert_ne!(&w[0], &w[1], "seed {seed}");
        }
    }
}

#[test]
fn gth_matches_direct_solve_on_random_chains() {
    for seed in case_seeds(5, 32) {
        let n = in_range(seed, 2, 10);
        let mut rng = Rng::seed_from_u64(seed);
        let mut builder = CtmcBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    builder = builder.rate(i, j, rng.range_f64(0.01, 5.0)).expect("valid");
                }
            }
        }
        let chain = builder.build().expect("non-empty");
        let a = steady_state::gth(&chain).expect("irreducible");
        let b = steady_state::linear(&chain).expect("irreducible");
        for (x, y) in a.probs().iter().zip(b.probs()) {
            assert!(
                (x - y).abs() < 1e-8,
                "seed {seed}: {:?} vs {:?}",
                a.probs(),
                b.probs()
            );
        }
        assert!((a.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn birth_death_closed_form_matches_gth() {
    for seed in case_seeds(6, 32) {
        let n = in_range(seed, 1, 8);
        let mut rng = Rng::seed_from_u64(seed);
        let birth: Vec<f64> = (0..n).map(|_| rng.range_f64(0.1, 3.0)).collect();
        let death: Vec<f64> = (0..n).map(|_| rng.range_f64(0.1, 3.0)).collect();
        let exact = birth_death::birth_death_stationary(&birth, &death).expect("positive");
        let chain = birth_death::birth_death_ctmc(&birth, &death).expect("valid");
        let gth = steady_state::gth(&chain).expect("irreducible");
        for (x, y) in exact.iter().zip(gth.probs()) {
            assert!((x - y).abs() < 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn elastic_qos_levels_are_exact() {
    for seed in case_seeds(7, 48) {
        let min = 1 + splitmix64(seed) % 499;
        let steps = 1 + splitmix64(seed ^ 1) % 11;
        let inc = 1 + splitmix64(seed ^ 2) % 99;
        let qos = ElasticQos::new(
            Bandwidth::kbps(min),
            Bandwidth::kbps(min + steps * inc),
            Bandwidth::kbps(inc),
            1.0,
        )
        .expect("constructed to divide evenly");
        assert_eq!(qos.num_levels(), steps as usize + 1, "seed {seed}");
        for level in 0..qos.num_levels() {
            let bw = qos.level_bandwidth(level);
            assert_eq!(qos.level_of(bw), Some(level), "seed {seed}");
            assert!(bw >= qos.min() && bw <= qos.max());
        }
    }
}

#[test]
fn establish_release_cycles_preserve_invariants() {
    for seed in case_seeds(8, 12) {
        let nodes = in_range(seed, 10, 25);
        let ops = in_range(seed ^ 1, 10, 60);
        let g = seeded_graph(seed, nodes);
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(2_000),
                ..NetworkConfig::default()
            },
        );
        let mut rng = Rng::seed_from_u64(seed ^ 0xF00D);
        let qos = ElasticQos::paper_video(100);
        let mut live: Vec<drqos_core::channel::ConnectionId> = Vec::new();
        for _ in 0..ops {
            if live.is_empty() || rng.chance(0.6) {
                let s = rng.range_usize(nodes);
                let mut d = rng.range_usize(nodes - 1);
                if d >= s {
                    d += 1;
                }
                if let Ok(id) = net.establish(NodeId(s), NodeId(d), qos) {
                    live.push(id);
                }
            } else {
                let victim = live.swap_remove(rng.range_usize(live.len()));
                net.release(victim).expect("tracked as live");
            }
        }
        net.validate();
        // Every connection sits within its QoS range on every link.
        for c in net.connections() {
            assert!(
                c.bandwidth() >= qos.min() && c.bandwidth() <= qos.max(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn multi_backup_invariants_under_churn() {
    for seed in case_seeds(9, 12) {
        let nodes = in_range(seed, 10, 20);
        let backups = in_range(seed ^ 1, 1, 4);
        let g = seeded_graph(seed, nodes);
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(3_000),
                backup_count: backups,
                ..NetworkConfig::default()
            },
        );
        let mut rng = Rng::seed_from_u64(seed ^ 0xCAFE);
        let qos = ElasticQos::paper_video(100);
        for _ in 0..25 {
            let s = rng.range_usize(nodes);
            let mut d = rng.range_usize(nodes - 1);
            if d >= s {
                d += 1;
            }
            let _ = net.establish(NodeId(s), NodeId(d), qos);
        }
        // One failure round.
        let up: Vec<_> = net.up_links().collect();
        if let Some(&l) = rng.choose(&up) {
            net.fail_link(l).expect("verified up");
        }
        net.validate();
        for c in net.connections() {
            assert!(c.backup_count() <= backups, "seed {seed}");
            // Backups never exceed the configured count and are mutually
            // link-disjoint (validate() asserts the rest).
            for (i, a) in c.backups().iter().enumerate() {
                for b in &c.backups()[i + 1..] {
                    assert!(a.is_link_disjoint(b), "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn mixed_ops_with_failures_preserve_invariants() {
    for seed in case_seeds(10, 12) {
        let nodes = in_range(seed, 10, 20);
        let ops = in_range(seed ^ 1, 10, 40);
        let g = seeded_graph(seed, nodes);
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(1_500),
                ..NetworkConfig::default()
            },
        );
        let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);
        let qos = ElasticQos::paper_video(100);
        for _ in 0..ops {
            match rng.range_usize(4) {
                0 | 1 => {
                    let s = rng.range_usize(nodes);
                    let mut d = rng.range_usize(nodes - 1);
                    if d >= s {
                        d += 1;
                    }
                    let _ = net.establish(NodeId(s), NodeId(d), qos);
                }
                2 => {
                    let ids: Vec<_> = net.connections().map(|c| c.id()).collect();
                    if let Some(&id) = rng.choose(&ids) {
                        net.release(id).expect("live id");
                    }
                }
                _ => {
                    let up: Vec<_> = net.up_links().collect();
                    // Keep at least half the links alive.
                    if up.len() * 2 > net.graph().link_count() {
                        if let Some(&l) = rng.choose(&up) {
                            net.fail_link(l).expect("verified up");
                        }
                    } else {
                        let down: Vec<_> = net
                            .graph()
                            .links()
                            .map(|l| l.id())
                            .filter(|&l| !net.link_usage(l).is_up())
                            .collect();
                        if let Some(&l) = rng.choose(&down) {
                            net.repair_link(l).expect("verified down");
                        }
                    }
                }
            }
            net.validate();
        }
    }
}
