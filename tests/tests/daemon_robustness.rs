//! Robustness regression for `drqosd`: a client bursting malformed,
//! overflowing, and truncated input must get error *replies*, never kill
//! a reader thread or the event loop. This is the dynamic counterpart of
//! the `no-panic-daemon` lint rule — the lint proves the panic sites are
//! gone from the source, this test proves the daemon survives the inputs
//! those sites used to be reachable from.

use drqos_core::network::{Network, NetworkConfig};
use drqos_service::server::Server;
use drqos_topology::regular;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

/// One TCP client: send `line`, read one reply.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let tcp = TcpStream::connect(addr).expect("connect");
        tcp.set_nodelay(true).unwrap();
        Self {
            writer: tcp.try_clone().unwrap(),
            reader: BufReader::new(tcp),
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        assert!(
            !resp.is_empty(),
            "daemon closed the connection instead of replying to {line:?}"
        );
        resp.trim_end().to_string()
    }
}

/// Every line in the burst is designed to hit a failure path that was, or
/// could plausibly become, a panic: parse failures, integer overflow,
/// unknown ids far past any allocated connection, out-of-range links and
/// nodes, binary garbage, and case mismatches.
const MALFORMED_BURST: &[(&str, &str)] = &[
    ("", "ERR 1"),                                   // empty line
    ("   ", "ERR 1"),                                // whitespace only
    ("BOGUS", "ERR 2"),                              // unknown verb
    ("release 1", "ERR 2"),                          // verbs are case-sensitive
    ("ESTABLISH", "ERR 3"),                          // no args
    ("ESTABLISH 0 3 100 500 100 7", "ERR 3"),        // too many args
    ("RELEASE 99999999999999999999999999", "ERR 4"), // u64 overflow
    ("RELEASE -1", "ERR 4"),                         // negative
    ("RELEASE 0x10", "ERR 4"),                       // hex is not an integer
    ("RELEASE 18446744073709551615", "ERR 300"),     // u64::MAX id: unknown
    ("FAIL-LINK 18446744073709551615", "ERR 301"),   // u64::MAX link
    ("REPAIR-LINK 424242", "ERR 301"),               // out-of-range link
    ("FAIL-NODE 424242", "ERR 303"),                 // out-of-range node
    ("ESTABLISH 0 0 100 500 100", "ERR 201"),        // src == dst
    ("ESTABLISH 0 3 0 500 100", "ERR 100"),          // zero minimum
    ("ESTABLISH 0 3 500 100 100", "ERR 101"),        // min > max
    ("ESTABLISH 424242 3 100 500 100", "ERR 200"),   // unknown src node
    ("\u{7f}\u{1}garbage\u{2}", "ERR 2"),            // binary garbage
];

#[test]
fn malformed_burst_cannot_kill_the_daemon() {
    let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
    let server = Server::bind("127.0.0.1:0", net).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let server_handle = thread::spawn(move || server.run());

    let mut hostile = Client::connect(addr);
    for &(line, want_prefix) in MALFORMED_BURST {
        let resp = hostile.roundtrip(line);
        assert!(
            resp.starts_with("ERR "),
            "{line:?} must be rejected, got {resp:?}"
        );
        if !want_prefix.is_empty() {
            assert!(
                resp.starts_with(want_prefix),
                "{line:?}: expected {want_prefix} ..., got {resp:?}"
            );
        }
    }

    // A partial line followed by an abrupt disconnect must not wedge the
    // reader or the loop.
    {
        let tcp = TcpStream::connect(addr).expect("connect");
        let mut w = tcp.try_clone().unwrap();
        w.write_all(b"ESTABLISH 0 3 1").unwrap(); // no newline
        drop(w);
        drop(tcp);
    }

    // The daemon is still fully functional for a well-behaved client.
    let mut good = Client::connect(addr);
    let resp = good.roundtrip("ESTABLISH 0 3 100 500 100");
    assert!(resp.starts_with("OK id="), "daemon degraded: {resp:?}");
    let resp = good.roundtrip("SNAPSHOT");
    assert!(resp.starts_with("OK conns=1"), "state corrupted: {resp:?}");

    // And it shuts down invariant-clean: nothing in the burst leaked
    // bandwidth or half-registered a connection.
    assert_eq!(good.roundtrip("SHUTDOWN"), "OK violations=0");
    let report = server_handle.join().unwrap().unwrap();
    assert_eq!(report.violations, 0);
}
