//! Reproducibility: every layer of the stack must be a pure function of
//! its seed, or the paper's measured parameters would not be replicable.

use drqos_analysis::pipeline::analyze;
use drqos_core::experiment::run_churn;
use drqos_sim::rng::Rng;
use drqos_tests::{quick_experiment, small_paper_graph};
use drqos_topology::transit_stub::TransitStubConfig;

#[test]
fn graphs_are_identical_across_runs() {
    let a = small_paper_graph(50, 99);
    let b = small_paper_graph(50, 99);
    assert_eq!(a.link_count(), b.link_count());
    assert_eq!(
        a.links().map(|l| l.endpoints()).collect::<Vec<_>>(),
        b.links().map(|l| l.endpoints()).collect::<Vec<_>>()
    );
}

#[test]
fn transit_stub_is_deterministic() {
    let a = TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(4))
        .unwrap();
    let b = TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(4))
        .unwrap();
    assert_eq!(a.graph.link_count(), b.graph.link_count());
    assert_eq!(a.transit_nodes, b.transit_nodes);
}

#[test]
fn churn_reports_are_bit_identical() {
    let r1 = run_churn(small_paper_graph(40, 5), &quick_experiment(200, 500, 5)).0;
    let r2 = run_churn(small_paper_graph(40, 5), &quick_experiment(200, 500, 5)).0;
    assert_eq!(r1, r2);
}

#[test]
fn full_pipeline_is_deterministic_including_model() {
    let a1 = analyze(small_paper_graph(40, 6), &quick_experiment(250, 500, 6));
    let a2 = analyze(small_paper_graph(40, 6), &quick_experiment(250, 500, 6));
    assert_eq!(a1.report, a2.report);
    assert_eq!(a1.analytic_avg, a2.analytic_avg);
    assert_eq!(a1.ideal_avg, a2.ideal_avg);
}

#[test]
fn sharded_warmup_is_bit_identical_to_the_monolith() {
    // `shards` may only change how the warm-up is computed, never what
    // it computes: churn reports and the analysis pipeline must match
    // the monolith byte-for-byte (cache counters excluded — waves plan
    // outside the route cache, and the counters are not observables).
    let mut mono = quick_experiment(200, 500, 5);
    mono.shards = 1;
    let mut sharded = mono.clone();
    sharded.shards = 4;
    let r1 = run_churn(small_paper_graph(40, 5), &mono).0;
    let mut r4 = run_churn(small_paper_graph(40, 5), &sharded).0;
    r4.cache = r1.cache;
    assert_eq!(r1, r4);
    let a1 = analyze(small_paper_graph(40, 6), &mono);
    let a4 = analyze(small_paper_graph(40, 6), &sharded);
    assert_eq!(a1.analytic_avg, a4.analytic_avg);
    assert_eq!(a1.ideal_avg, a4.ideal_avg);
    let mut report4 = a4.report;
    report4.cache = a1.report.cache;
    assert_eq!(a1.report, report4);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run_churn(small_paper_graph(40, 7), &quick_experiment(200, 500, 7)).0;
    let b = run_churn(small_paper_graph(40, 7), &quick_experiment(200, 500, 8)).0;
    assert_ne!(a, b);
}

#[test]
fn failure_seeded_runs_are_reproducible() {
    let mut config = quick_experiment(150, 600, 9);
    config.gamma = 0.001;
    config.mean_repair = 200.0;
    let a = run_churn(small_paper_graph(40, 9), &config).0;
    let b = run_churn(small_paper_graph(40, 9), &config).0;
    assert_eq!(a, b);
    assert!(a.failures > 0);
}
