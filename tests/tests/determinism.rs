//! Reproducibility: every layer of the stack must be a pure function of
//! its seed, or the paper's measured parameters would not be replicable.

use drqos_analysis::pipeline::analyze;
use drqos_core::experiment::run_churn;
use drqos_sim::rng::Rng;
use drqos_tests::{quick_experiment, small_paper_graph};
use drqos_topology::transit_stub::TransitStubConfig;

#[test]
fn graphs_are_identical_across_runs() {
    let a = small_paper_graph(50, 99);
    let b = small_paper_graph(50, 99);
    assert_eq!(a.link_count(), b.link_count());
    assert_eq!(
        a.links().map(|l| l.endpoints()).collect::<Vec<_>>(),
        b.links().map(|l| l.endpoints()).collect::<Vec<_>>()
    );
}

#[test]
fn transit_stub_is_deterministic() {
    let a = TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(4))
        .unwrap();
    let b = TransitStubConfig::paper_default()
        .generate(&mut Rng::seed_from_u64(4))
        .unwrap();
    assert_eq!(a.graph.link_count(), b.graph.link_count());
    assert_eq!(a.transit_nodes, b.transit_nodes);
}

#[test]
fn churn_reports_are_bit_identical() {
    let r1 = run_churn(small_paper_graph(40, 5), &quick_experiment(200, 500, 5)).0;
    let r2 = run_churn(small_paper_graph(40, 5), &quick_experiment(200, 500, 5)).0;
    assert_eq!(r1, r2);
}

#[test]
fn full_pipeline_is_deterministic_including_model() {
    let a1 = analyze(small_paper_graph(40, 6), &quick_experiment(250, 500, 6));
    let a2 = analyze(small_paper_graph(40, 6), &quick_experiment(250, 500, 6));
    assert_eq!(a1.report, a2.report);
    assert_eq!(a1.analytic_avg, a2.analytic_avg);
    assert_eq!(a1.ideal_avg, a2.ideal_avg);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run_churn(small_paper_graph(40, 7), &quick_experiment(200, 500, 7)).0;
    let b = run_churn(small_paper_graph(40, 7), &quick_experiment(200, 500, 8)).0;
    assert_ne!(a, b);
}

#[test]
fn failure_seeded_runs_are_reproducible() {
    let mut config = quick_experiment(150, 600, 9);
    config.gamma = 0.001;
    config.mean_repair = 200.0;
    let a = run_churn(small_paper_graph(40, 9), &config).0;
    let b = run_churn(small_paper_graph(40, 9), &config).0;
    assert_eq!(a, b);
    assert!(a.failures > 0);
}
