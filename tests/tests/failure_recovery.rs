//! Integration tests for the failure/recovery path: backup activation,
//! multiplexing safety, drops, and repair across the full stack.

use drqos_core::channel::ConnectionId;
use drqos_core::error::NetworkError;
use drqos_core::qos::Bandwidth;
use drqos_tests::loaded_network;
use drqos_topology::{LinkId, NodeId};
use std::collections::BTreeSet;

#[test]
fn single_failure_never_strands_backed_up_connections() {
    let (mut net, _) = loaded_network(50, 120, 10);
    net.validate();
    let with_backup: BTreeSet<ConnectionId> = net
        .connections()
        .filter(|c| c.has_backup() && c.backup_fully_disjoint())
        .map(|c| c.id())
        .collect();
    // Fail one link; every fully-backed-up connection must survive.
    let link = net.up_links().next().expect("links exist");
    let report = net.fail_link(link).expect("link is up");
    for id in &with_backup {
        assert!(
            net.connection(*id).is_some(),
            "{id} had a disjoint backup but vanished"
        );
    }
    for id in &report.dropped {
        assert!(
            !with_backup.contains(id),
            "{id} dropped despite disjoint backup"
        );
    }
    net.validate();
}

#[test]
fn activation_burst_fits_in_reserved_bandwidth() {
    // The multiplexed reservation must cover the worst single-failure
    // activation burst: after any single failure, no link's *allocated*
    // bandwidth (minima + extras) may exceed capacity.
    let (mut net, mut rng) = loaded_network(50, 150, 11);
    let up: Vec<_> = net.up_links().collect();
    let link = up[rng.range_usize(up.len())];
    net.fail_link(link).expect("link is up");
    for l in net.graph().links() {
        let u = net.link_usage(l.id());
        assert!(
            u.primary_min_sum() + u.extra_sum() <= u.capacity(),
            "allocation burst exceeded capacity on {}",
            l.id()
        );
    }
    net.validate();
}

#[test]
fn repeated_fail_repair_cycles_preserve_invariants() {
    let (mut net, mut rng) = loaded_network(40, 80, 12);
    for _ in 0..12 {
        let up: Vec<_> = net.up_links().collect();
        if up.is_empty() {
            break;
        }
        let link = up[rng.range_usize(up.len())];
        net.fail_link(link).expect("link is up");
        net.validate();
        net.repair_link(link).expect("link is down");
        net.validate();
    }
}

#[test]
fn concurrent_failures_then_repairs() {
    let (mut net, mut rng) = loaded_network(40, 60, 13);
    let mut down = Vec::new();
    for _ in 0..4 {
        let up: Vec<_> = net.up_links().collect();
        let link = up[rng.range_usize(up.len())];
        net.fail_link(link).expect("link is up");
        down.push(link);
        net.validate();
    }
    for link in down {
        net.repair_link(link).expect("still down");
        net.validate();
    }
    // After full repair, connections may regain backups.
    let backed = net.connections().filter(|c| c.has_backup()).count();
    assert!(backed > 0);
}

#[test]
fn failover_retains_minimum_bandwidth() {
    let (mut net, _) = loaded_network(50, 100, 14);
    let link = net.up_links().next().expect("links exist");
    let report = net.fail_link(link).expect("link is up");
    for id in &report.activated {
        let c = net.connection(*id).expect("activated connections survive");
        assert!(c.bandwidth() >= Bandwidth::kbps(100));
        assert_eq!(c.failovers(), 1);
        // The new primary must avoid the dead link.
        assert!(!c.primary().crosses(link));
    }
}

#[test]
fn repair_restores_up_links_and_never_resurrects_connections() {
    // Property, across seeds: failing a link and repairing it restores
    // the exact up-link set, and connections released or dropped while
    // the link was down never come back.
    for seed in [21u64, 22, 23, 24] {
        let (mut net, mut rng) = loaded_network(40, 60, seed);
        let before: BTreeSet<_> = net.up_links().collect();
        let up: Vec<_> = net.up_links().collect();
        let link = up[rng.range_usize(up.len())];

        let report = net.fail_link(link).expect("link is up");
        let mut gone: BTreeSet<ConnectionId> = report.dropped.iter().copied().collect();
        // Release one survivor while the link is down.
        let survivor = net.connections().map(|c| c.id()).next();
        if let Some(id) = survivor {
            net.release(id).expect("live id");
            gone.insert(id);
        }

        net.repair_link(link).expect("link is down");
        let after: BTreeSet<_> = net.up_links().collect();
        assert_eq!(before, after, "seed {seed}: repair must restore up_links");
        for id in &gone {
            assert!(
                net.connection(*id).is_none(),
                "seed {seed}: {id} resurrected by repair"
            );
        }
        net.validate();
    }
}

#[test]
fn fail_node_rejects_unknown_and_fully_downed_nodes() {
    let (mut net, _) = loaded_network(40, 30, 25);
    let n = net.graph().node_count();
    assert_eq!(
        net.fail_node(NodeId(n + 7)),
        Err(NetworkError::UnknownNode(NodeId(n + 7)))
    );
    // Down every link adjacent to node 0, then failing it again is an
    // error rather than a silent no-op.
    let adjacent: Vec<_> = net
        .graph()
        .neighbors(NodeId(0))
        .iter()
        .map(|&(_, l)| l)
        .collect();
    assert!(!adjacent.is_empty());
    let epoch_before_outage = net.topology_epoch();
    net.fail_node(NodeId(0)).expect("node has up links");
    assert_eq!(
        net.fail_node(NodeId(0)),
        Err(NetworkError::NodeAlreadyDown(NodeId(0)))
    );
    // Failed calls must not bump the topology epoch further.
    assert_eq!(
        net.topology_epoch(),
        epoch_before_outage + adjacent.len() as u64
    );
    net.validate();
}

#[test]
fn overlapping_node_and_srlg_events_never_double_count_drops() {
    // Regression: a node outage followed by an SRLG firing on a group
    // that *partially* overlaps the downed links must only fail the
    // members the outage missed, and every dropped connection must be
    // counted exactly once — live + dropped stays conserved.
    for seed in [31u64, 32, 33, 34] {
        let (mut net, _) = loaded_network(40, 80, seed);
        let live_before = net.len() as u64;
        let dropped_before = net.dropped_total();

        let adjacent: BTreeSet<LinkId> = net
            .graph()
            .neighbors(NodeId(0))
            .iter()
            .map(|&(_, l)| l)
            .collect();
        let outside: Vec<LinkId> = net
            .up_links()
            .filter(|l| !adjacent.contains(l))
            .take(2)
            .collect();
        assert_eq!(outside.len(), 2, "seed {seed}: graph too small");
        // Two links the outage will down, two it won't: partial overlap.
        let mut members: Vec<LinkId> = adjacent.iter().copied().take(2).collect();
        members.extend(&outside);
        let g = net.register_srlg(members).expect("valid group");

        let node_reports = net.fail_node(NodeId(0)).expect("node has up links");
        let node_drops: u64 = node_reports.iter().map(|r| r.dropped.len() as u64).sum();

        let srlg_reports = net.fail_srlg(g).expect("group still has up members");
        // Only the non-overlapping members fire — the two links the
        // outage already downed are skipped, not re-failed.
        assert_eq!(srlg_reports.len(), 2, "seed {seed}");
        for report in &srlg_reports {
            assert!(
                !adjacent.contains(&report.link),
                "seed {seed}: SRLG re-failed downed link {}",
                report.link
            );
        }
        let srlg_drops: u64 = srlg_reports.iter().map(|r| r.dropped.len() as u64).sum();

        // The counter moved by exactly the per-report sums (no double
        // count), and every established connection is still accounted
        // for: alive or dropped, never both, never twice.
        assert_eq!(
            net.dropped_total() - dropped_before,
            node_drops + srlg_drops,
            "seed {seed}"
        );
        assert_eq!(
            net.len() as u64 + (net.dropped_total() - dropped_before),
            live_before,
            "seed {seed}: drop conservation violated"
        );
        net.validate();
    }
}

#[test]
fn drops_are_counted_once() {
    let (mut net, _) = loaded_network(40, 80, 15);
    let before = net.dropped_total();
    let mut dropped_reports = 0;
    let links: Vec<_> = net.up_links().take(6).collect();
    for link in links {
        dropped_reports += net.fail_link(link).expect("link is up").dropped.len() as u64;
    }
    assert_eq!(net.dropped_total() - before, dropped_reports);
}
