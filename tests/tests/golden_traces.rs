//! Golden-trace verification: canonical scenarios replayed against the
//! blessed traces in `tests/golden/`, byte-exact.
//!
//! To update after an intentional behaviour change:
//!
//! ```text
//! DRQOS_BLESS=1 cargo test -p drqos-tests --test golden_traces
//! ```
//!
//! then commit the rewritten `tests/golden/*.txt`.

use drqos_bench::runner::{sweep, PointObs};
use drqos_core::experiment::run_churn;
use drqos_testkit::golden::{scenarios, verify_golden};
use drqos_tests::{quick_experiment, small_paper_graph};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[test]
fn canonical_scenarios_match_blessed_traces() {
    for (name, content) in scenarios::all() {
        if let Err(e) = verify_golden(&golden_dir(), name, &content) {
            panic!("{e}");
        }
    }
}

/// The deterministic series columns of a small sweep, as trace lines.
/// Only integer counters — no floats, no wall-clock — so the text is
/// byte-stable across machines and worker counts.
fn sweep_series() -> String {
    let points: Vec<(usize, usize)> = vec![(30, 40), (30, 80), (40, 60), (50, 100)];
    let result = sweep(2001, &points, |&(nodes, target), seed| {
        let graph = small_paper_graph(nodes, seed);
        let config = quick_experiment(target, 150, seed);
        let (report, net) = run_churn(graph, &config);
        net.validate();
        let mut obs = PointObs::default();
        obs.absorb(&config, &report);
        let row = format!(
            "nodes={nodes} target={target} accepted={} rejected={} dropped={} failures={} epoch={}",
            report.accepted,
            report.rejected_primary + report.rejected_backup,
            report.dropped,
            report.failures,
            net.topology_epoch(),
        );
        (row, obs)
    });
    let mut out = String::from("# drqos golden trace: sweep_series (4 points, seed 2001)\n");
    for row in result.rows() {
        out.push_str(row);
        out.push('\n');
    }
    out
}

#[test]
fn sweep_series_is_thread_invariant_and_matches_golden() {
    // The sweep engine must produce identical series columns regardless of
    // the worker count; pin it to 1 and 4 threads explicitly and compare
    // both against the blessed trace. (This test is the only one in this
    // binary touching DRQOS_THREADS, so the process-global env is safe.)
    let prev = drqos_core::env::raw(drqos_core::env::THREADS);
    std::env::set_var(drqos_core::env::THREADS, "1");
    let serial = sweep_series();
    std::env::set_var(drqos_core::env::THREADS, "4");
    let parallel = sweep_series();
    match prev {
        Some(v) => std::env::set_var(drqos_core::env::THREADS, v),
        None => std::env::remove_var(drqos_core::env::THREADS),
    }
    assert_eq!(
        serial, parallel,
        "sweep series diverged between 1 and 4 worker threads"
    );
    if let Err(e) = verify_golden(&golden_dir(), "sweep_series", &serial) {
        panic!("{e}");
    }
}
