//! Chaos-harness integration: the seeded operation fuzzer drives the full
//! network stack against the testkit's reference model and invariant
//! oracles. CI runs a much larger budget through the `fuzz` binary; this
//! suite keeps a fast smoke run plus the mutation check (an injected
//! accounting bug MUST be caught and MUST shrink small) in `cargo test`.

use drqos_testkit::{run_fuzz, run_sequence, FuzzConfig, InjectedFault};

#[test]
fn fuzz_smoke_clean_sequences_hold_all_invariants() {
    let outcome = run_fuzz(&FuzzConfig {
        sequences: 150,
        ops_per_sequence: 60,
        seed: 2001,
        fault: InjectedFault::None,
    });
    assert_eq!(outcome.sequences_run, 150);
    if let Some(failure) = outcome.failure {
        panic!("invariant violation:\n{}", failure.reproducer());
    }
}

#[test]
fn injected_accounting_bug_is_caught_and_shrunk() {
    // Mutation check: lose a release on the reference side and the
    // live-set / min-sum divergence must be detected, then shrunk to a
    // tiny reproducer (the fault needs only establish + release).
    let outcome = run_fuzz(&FuzzConfig {
        sequences: 50,
        ops_per_sequence: 30,
        seed: 2001,
        fault: InjectedFault::LoseRelease,
    });
    let failure = outcome.failure.expect("injected fault must be detected");
    assert!(
        failure.shrunk.len() <= 10,
        "reproducer should be minimal, got {} ops",
        failure.shrunk.len()
    );
    // The shrunk sequence must still reproduce from scratch.
    let replay = run_sequence(&failure.scenario, &failure.shrunk, failure.fault)
        .expect("shrunk sequence still fails");
    assert!(!replay.violations.is_empty());
    // And the printed reproducer is self-contained, copy-pasteable code.
    let repro = failure.reproducer();
    assert!(repro.contains("Scenario {"), "{repro}");
    assert!(repro.contains("run_sequence"), "{repro}");
}

#[test]
fn fuzz_runs_are_reproducible_from_the_seed() {
    let config = FuzzConfig {
        sequences: 20,
        ops_per_sequence: 40,
        seed: 77,
        fault: InjectedFault::LoseRelease,
    };
    let a = run_fuzz(&config);
    let b = run_fuzz(&config);
    let (fa, fb) = (
        a.failure.expect("fault detected"),
        b.failure.expect("fault detected"),
    );
    assert_eq!(fa.case_seed, fb.case_seed);
    assert_eq!(fa.shrunk, fb.shrunk);
    assert_eq!(fa.reproducer(), fb.reproducer());
}
