//! Shared fixtures for the drqos cross-crate integration tests.

use drqos_core::experiment::ExperimentConfig;
use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_core::workload::Workload;
use drqos_sim::rng::Rng;
use drqos_topology::graph::Graph;
use drqos_topology::waxman;

/// A paper-style Waxman graph scaled down for test speed.
pub fn small_paper_graph(nodes: usize, seed: u64) -> Graph {
    waxman::paper_waxman(nodes)
        .generate(&mut Rng::seed_from_u64(seed))
        .expect("calibrated parameters are valid")
}

/// A default-configured network over a small paper graph.
pub fn small_network(nodes: usize, seed: u64) -> Network {
    Network::new(small_paper_graph(nodes, seed), NetworkConfig::default())
}

/// Loads `n` connections (retrying rejected requests) and returns the
/// network together with the RNG used, for continued churn.
pub fn loaded_network(nodes: usize, n: usize, seed: u64) -> (Network, Rng) {
    let mut net = small_network(nodes, seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
    let workload = Workload::new(ElasticQos::paper_video(50));
    let mut established = 0;
    let mut attempts = 0;
    while established < n && attempts < n * 20 {
        attempts += 1;
        let req = workload.request(&mut rng, net.graph().node_count());
        if net.establish(req.src, req.dst, req.qos).is_ok() {
            established += 1;
        }
    }
    assert!(established > 0, "fixture failed to load any connections");
    (net, rng)
}

/// A quick experiment configuration for integration tests.
pub fn quick_experiment(target: usize, churn: usize, seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(target, 50);
    config.churn_events = churn;
    config.seed = seed;
    config
}

/// A tight-capacity config useful for forcing contention.
pub fn tight_network_config(kbps: u64) -> NetworkConfig {
    NetworkConfig {
        capacity: Bandwidth::kbps(kbps),
        ..NetworkConfig::default()
    }
}
