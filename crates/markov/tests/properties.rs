//! Property tests for the steady-state solvers.
//!
//! Two families of seeded random inputs (no external property-testing
//! crate; a local split-mix generator keeps the cases deterministic):
//!
//! 1. **Stationarity laws** — for random irreducible CTMCs, every solver
//!    (`gth`, `linear`, `power`, `gauss_seidel`, `solve`) must return a
//!    distribution that is non-negative, sums to 1, and satisfies the
//!    global balance equation `πQ = 0`.
//! 2. **Closed-form differential** — for random birth–death rate
//!    ladders, the product-form `birth_death_stationary` must agree with
//!    the generic GTH solution of the same chain.

use drqos_markov::birth_death::{birth_death_ctmc, birth_death_stationary};
use drqos_markov::ctmc::{Ctmc, CtmcBuilder};
use drqos_markov::linalg::max_abs_diff;
use drqos_markov::steady_state::{gauss_seidel, gth, linear, power, solve};

/// Minimal split-mix-64 (the markov crate deliberately has no dependency
/// on `drqos-sim`, so the tests carry their own generator).
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0.1, 2.1)` — strictly positive rates keep every
    /// generated chain irreducible.
    fn rate(&mut self) -> f64 {
        0.1 + 2.0 * (self.next_u64() as f64 / u64::MAX as f64)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// A random irreducible CTMC: a strictly positive cycle `i → i+1 (mod n)`
/// guarantees irreducibility; extra random transitions vary the shape.
fn random_irreducible(rng: &mut SplitMix) -> Ctmc {
    let n = rng.range(2, 8);
    let mut b = CtmcBuilder::new(n);
    for i in 0..n {
        b = b.rate(i, (i + 1) % n, rng.rate()).unwrap();
    }
    for _ in 0..rng.range(0, 2 * n) {
        let from = rng.range(0, n - 1);
        let to = rng.range(0, n - 1);
        if from != to {
            b = b.rate(from, to, rng.rate()).unwrap();
        }
    }
    b.build().unwrap()
}

/// Asserts the three stationarity laws for one solution of `ctmc`.
fn assert_stationary(ctmc: &Ctmc, probs: &[f64], solver: &str, seed: u64) {
    assert_eq!(probs.len(), ctmc.n_states());
    for (i, &p) in probs.iter().enumerate() {
        assert!(
            p >= 0.0,
            "{solver} (seed {seed}): negative probability {p} at state {i}"
        );
    }
    let sum: f64 = probs.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "{solver} (seed {seed}): probabilities sum to {sum}"
    );
    let balance = ctmc.generator().vec_mul(probs).unwrap();
    let worst = balance.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    assert!(
        worst < 1e-8,
        "{solver} (seed {seed}): global balance residual {worst}"
    );
}

#[test]
fn every_solver_satisfies_the_stationarity_laws() {
    for seed in 0..25 {
        let mut rng = SplitMix(seed);
        let ctmc = random_irreducible(&mut rng);
        assert!(ctmc.is_irreducible());
        let solutions = [
            ("gth", gth(&ctmc)),
            ("linear", linear(&ctmc)),
            ("power", power(&ctmc, 1e-13, 200_000)),
            ("gauss_seidel", gauss_seidel(&ctmc, 1e-13, 200_000)),
            ("solve", solve(&ctmc)),
        ];
        for (solver, result) in solutions {
            let pi = result.unwrap_or_else(|e| panic!("{solver} failed on seed {seed}: {e}"));
            assert_stationary(&ctmc, pi.probs(), solver, seed);
        }
    }
}

#[test]
fn solvers_agree_with_gth_pairwise() {
    for seed in 100..115 {
        let mut rng = SplitMix(seed);
        let ctmc = random_irreducible(&mut rng);
        let reference = gth(&ctmc).unwrap();
        for (solver, result) in [
            ("linear", linear(&ctmc)),
            ("power", power(&ctmc, 1e-13, 200_000)),
            ("gauss_seidel", gauss_seidel(&ctmc, 1e-13, 200_000)),
        ] {
            let pi = result.unwrap_or_else(|e| panic!("{solver} failed on seed {seed}: {e}"));
            let diff = max_abs_diff(reference.probs(), pi.probs());
            assert!(
                diff < 1e-7,
                "{solver} (seed {seed}) deviates from gth by {diff}"
            );
        }
    }
}

#[test]
fn birth_death_closed_form_matches_generic_solver() {
    for seed in 0..40 {
        let mut rng = SplitMix(0xB1D ^ seed);
        let len = rng.range(1, 6); // ladders with 2..=7 states
        let birth: Vec<f64> = (0..len).map(|_| rng.rate()).collect();
        let death: Vec<f64> = (0..len).map(|_| rng.rate()).collect();
        let closed = birth_death_stationary(&birth, &death).unwrap();
        let ctmc = birth_death_ctmc(&birth, &death).unwrap();
        let generic = gth(&ctmc).unwrap();
        let diff = max_abs_diff(&closed, generic.probs());
        assert!(
            diff < 1e-10,
            "seed {seed}: closed form deviates from GTH by {diff} \
             (birth {birth:?}, death {death:?})"
        );
        assert_stationary(&ctmc, &closed, "closed-form", seed);
    }
}
