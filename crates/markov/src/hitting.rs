//! Mean first-passage (hitting) times for CTMCs.
//!
//! For the elastic-QoS chain this answers planning questions the
//! steady-state view cannot: *how long, on average, until a channel that
//! just retreated to its minimum climbs back to full quality?*
//!
//! For a target set `T`, the expected hitting times `h_i` solve
//!
//! ```text
//! h_i = 0                          for i ∈ T
//! Σ_j q_ij (h_j − h_i) = −1        for i ∉ T
//! ```
//!
//! States that cannot reach `T` get `h_i = ∞`.

use crate::ctmc::Ctmc;
use crate::error::MarkovError;
use crate::linalg::Matrix;

/// Computes the expected time to first reach any state in `targets`,
/// from every state.
///
/// Returns a vector indexed by state: `0.0` for targets, `f64::INFINITY`
/// for states that cannot reach the target set.
///
/// # Errors
///
/// * [`MarkovError::Empty`] if `targets` is empty.
/// * [`MarkovError::InvalidState`] if a target index is out of range.
/// * [`MarkovError::Singular`] if the restricted system is numerically
///   singular (should not occur for valid chains).
pub fn mean_hitting_times(ctmc: &Ctmc, targets: &[usize]) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if targets.is_empty() {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(MarkovError::InvalidState(t));
        }
        is_target[t] = true;
    }
    // Which states can reach the target set? Reverse reachability.
    let mut can_reach = is_target.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if can_reach[i] {
                continue;
            }
            if (0..n).any(|j| ctmc.rate(i, j) > 0.0 && can_reach[j]) {
                can_reach[i] = true;
                changed = true;
            }
        }
    }
    let mut result = vec![f64::INFINITY; n];
    for &t in targets {
        result[t] = 0.0;
    }
    // A non-target state has a *finite* mean only if every positive-rate
    // path from it stays within states that themselves reach the targets
    // with probability one: any positive-rate escape towards a state with
    // infinite mean makes the expectation infinite. Compute the largest
    // self-consistent finite set by iterating to a fixed point.
    let mut finite: Vec<usize> = (0..n).filter(|&i| !is_target[i] && can_reach[i]).collect();
    loop {
        let mut allowed = is_target.clone();
        for &i in &finite {
            allowed[i] = true;
        }
        let before = finite.len();
        finite.retain(|&i| (0..n).all(|j| ctmc.rate(i, j) == 0.0 || allowed[j]));
        if finite.len() == before {
            break;
        }
    }
    if finite.is_empty() {
        return Ok(result);
    }
    // Solve A·h = −1 over the finite set, where A is the generator
    // restricted to those states (rates into targets contribute h = 0).
    let m = finite.len();
    let mut index = vec![usize::MAX; n];
    for (k, &i) in finite.iter().enumerate() {
        index[i] = k;
    }
    let mut a = Matrix::zeros(m, m);
    let b = vec![-1.0; m];
    for (k, &i) in finite.iter().enumerate() {
        a[(k, k)] = -ctmc.total_rate(i);
        for j in 0..n {
            if j != i && ctmc.rate(i, j) > 0.0 && !is_target[j] {
                let l = index[j];
                debug_assert_ne!(l, usize::MAX, "finite set is closed");
                a[(k, l)] += ctmc.rate(i, j);
            }
        }
    }
    let h = a.solve(&b)?;
    for (k, &i) in finite.iter().enumerate() {
        result[i] = h[k];
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn single_exponential_step() {
        // 0 → 1 at rate 2: mean hitting time of {1} from 0 is 1/2.
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 2.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[1]).unwrap();
        assert!((h[0] - 0.5).abs() < 1e-12);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn birth_chain_sums_stage_means() {
        // 0 → 1 → 2 with rates 1 and 4: h_0 = 1 + 1/4.
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(1, 2, 4.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[2]).unwrap();
        assert!((h[0] - 1.25).abs() < 1e-12);
        assert!((h[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_is_infinite() {
        // 1 has no outgoing rate; target {0} unreachable from 1.
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[0]).unwrap();
        assert_eq!(h[0], 0.0);
        assert!(h[1].is_infinite());
    }

    #[test]
    fn escape_route_makes_mean_infinite() {
        // 0 → 1 (target) at rate 1, but also 0 → 2 (absorbing dead end).
        // With probability 1/2 the chain never reaches 1: mean is ∞.
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(0, 2, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[1]).unwrap();
        assert!(h[0].is_infinite());
        assert!(h[2].is_infinite());
    }

    #[test]
    fn two_state_round_trip() {
        // 0 ↔ 1 with rates a=3 (0→1), b=1 (1→0): h_{0→1} = 1/3.
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 3.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[1]).unwrap();
        assert!((h[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn detour_chain_matches_first_step_analysis() {
        // 0 → 1 at rate 1; 1 → 2 at rate 1; 1 → 0 at rate 1. Target {2}.
        // First-step: h1 = 1/2 + (1/2)h0; h0 = 1 + h1 → h0 = 1 + 1/2 + h0/2
        // → h0 = 3, h1 = 2.
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(1, 2, 1.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[2]).unwrap();
        assert!((h[0] - 3.0).abs() < 1e-12, "{h:?}");
        assert!((h[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn input_validation() {
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(mean_hitting_times(&c, &[]), Err(MarkovError::Empty));
        assert_eq!(
            mean_hitting_times(&c, &[5]),
            Err(MarkovError::InvalidState(5))
        );
    }

    #[test]
    fn multiple_targets_take_nearest() {
        // 0 → 1 → 2, targets {1, 2}: from 0 the chain stops at 1.
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 2.0)
            .unwrap()
            .rate(1, 2, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let h = mean_hitting_times(&c, &[1, 2]).unwrap();
        assert!((h[0] - 0.5).abs() < 1e-12);
        assert_eq!(h[1], 0.0);
        assert_eq!(h[2], 0.0);
    }
}
