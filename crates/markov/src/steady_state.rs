//! Steady-state (stationary) solvers for CTMCs.
//!
//! The paper solves its Markov model with the SHARPE package; this module is
//! the in-repo replacement. Three independent algorithms are provided and
//! cross-checked in the tests:
//!
//! * [`gth`] — Grassmann–Taksar–Heyman elimination. Subtraction-free, hence
//!   numerically robust even for stiff chains; the default.
//! * [`power`] — power iteration on the uniformized chain.
//! * [`linear`] — direct LU solve of `πQ = 0, Σπ = 1`.
//!
//! [`solve`] is the front door: it handles chains with transient states by
//! restricting to the unique closed recurrent class (a situation that
//! arises with *measured* transition probabilities — e.g. at light load a
//! channel is never observed below the top bandwidth level).

use crate::ctmc::Ctmc;
use crate::error::MarkovError;
use crate::linalg::{self, Matrix};

/// A stationary distribution together with convenience accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    probs: Vec<f64>,
}

impl SteadyState {
    /// Wraps a probability vector (internal; produced by the solvers).
    fn new(probs: Vec<f64>) -> Self {
        Self { probs }
    }

    /// The stationary probabilities, indexed by state.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The probability of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn prob(&self, state: usize) -> f64 {
        self.probs[state]
    }

    /// The expectation of a state-indexed quantity:
    /// `Σ_i π_i · value(i)`.
    ///
    /// This is how the paper derives the *average bandwidth reserved* from
    /// the stationary distribution of bandwidth levels.
    pub fn expectation(&self, value: impl Fn(usize) -> f64) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * value(i))
            .sum()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the distribution is over zero states (never true for a
    /// solver-produced value).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// GTH (Grassmann–Taksar–Heyman) elimination.
///
/// # Errors
///
/// Returns [`MarkovError::NotIrreducible`] if the chain is not irreducible
/// (use [`solve`] for chains with transient states).
pub fn gth(ctmc: &Ctmc) -> Result<SteadyState, MarkovError> {
    if !ctmc.is_irreducible() {
        return Err(MarkovError::NotIrreducible);
    }
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(SteadyState::new(vec![1.0]));
    }
    // Work on a dense copy of the off-diagonal rates.
    let mut q = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                q[i * n + j] = ctmc.rate(i, j);
            }
        }
    }
    // Elimination from the last state down to state 1, remembering each
    // eliminated row's outflow sum for the back substitution.
    let mut row_sums = vec![0.0; n];
    for k in (1..n).rev() {
        let s: f64 = (0..k).map(|j| q[k * n + j]).sum();
        debug_assert!(s > 0.0, "irreducible chain keeps positive row sums");
        row_sums[k] = s;
        for j in 0..k {
            q[k * n + j] /= s;
        }
        for i in 0..k {
            let qik = q[i * n + k];
            if qik == 0.0 {
                continue;
            }
            for j in 0..k {
                if i != j {
                    q[i * n + j] += qik * q[k * n + j];
                }
            }
        }
    }
    // Back substitution: π_k = (Σ_{i<k} π_i q_ik) / S_k.
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        pi[k] = (0..k).map(|i| pi[i] * q[i * n + k]).sum::<f64>() / row_sums[k];
    }
    linalg::normalize_l1(&mut pi)?;
    Ok(SteadyState::new(pi))
}

/// Power iteration on the uniformized DTMC.
///
/// # Errors
///
/// * [`MarkovError::NotIrreducible`] if the chain is not irreducible.
/// * [`MarkovError::NoConvergence`] if the residual stays above `tol`
///   after `max_iter` sweeps.
pub fn power(ctmc: &Ctmc, tol: f64, max_iter: usize) -> Result<SteadyState, MarkovError> {
    if !ctmc.is_irreducible() {
        return Err(MarkovError::NotIrreducible);
    }
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(SteadyState::new(vec![1.0]));
    }
    let p = ctmc.uniformized();
    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        let next = p.vec_mul(&pi)?;
        residual = linalg::max_abs_diff(&next, &pi);
        pi = next;
        if residual < tol {
            linalg::normalize_l1(&mut pi)?;
            return Ok(SteadyState::new(pi));
        }
    }
    Err(MarkovError::NoConvergence {
        iterations: max_iter,
        residual,
    })
}

/// Direct solve of the stationary equations `πQ = 0`, `Σ π = 1` by LU.
///
/// # Errors
///
/// * [`MarkovError::NotIrreducible`] if the chain is not irreducible.
/// * [`MarkovError::Singular`] if elimination breaks down numerically.
pub fn linear(ctmc: &Ctmc) -> Result<SteadyState, MarkovError> {
    if !ctmc.is_irreducible() {
        return Err(MarkovError::NotIrreducible);
    }
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(SteadyState::new(vec![1.0]));
    }
    // Solve Qᵀ π = 0 with the last equation replaced by Σ π = 1.
    let q = ctmc.generator();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = q[(j, i)];
        }
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let mut pi = a.solve(&b)?;
    // Numerical noise can leave tiny negatives; clamp and renormalize.
    for x in pi.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    linalg::normalize_l1(&mut pi)?;
    Ok(SteadyState::new(pi))
}

/// Gauss–Seidel iteration for the stationary equations.
///
/// # Errors
///
/// * [`MarkovError::NotIrreducible`] if the chain is not irreducible.
/// * [`MarkovError::NoConvergence`] if `tol` is not reached in `max_iter`
///   sweeps.
pub fn gauss_seidel(ctmc: &Ctmc, tol: f64, max_iter: usize) -> Result<SteadyState, MarkovError> {
    if !ctmc.is_irreducible() {
        return Err(MarkovError::NotIrreducible);
    }
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(SteadyState::new(vec![1.0]));
    }
    // π_j · q_jj = −Σ_{i≠j} π_i q_ij, swept in place.
    let q = ctmc.generator();
    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        residual = 0.0;
        for j in 0..n {
            let denom = q[(j, j)];
            if denom == 0.0 {
                return Err(MarkovError::Singular);
            }
            let num: f64 = (0..n).filter(|&i| i != j).map(|i| pi[i] * q[(i, j)]).sum();
            let new = -num / denom;
            residual = residual.max((new - pi[j]).abs());
            pi[j] = new;
        }
        if residual < tol {
            linalg::normalize_l1(&mut pi)?;
            return Ok(SteadyState::new(pi));
        }
    }
    Err(MarkovError::NoConvergence {
        iterations: max_iter,
        residual,
    })
}

/// The general entry point: solves chains that may contain transient
/// states by restricting to the unique closed recurrent class (GTH on the
/// restriction; transient states get probability zero).
///
/// # Errors
///
/// Returns [`MarkovError::NotIrreducible`] if the chain has multiple closed
/// recurrent classes.
pub fn solve(ctmc: &Ctmc) -> Result<SteadyState, MarkovError> {
    if ctmc.is_irreducible() {
        return gth(ctmc);
    }
    let class = ctmc.recurrent_class()?;
    let restricted = ctmc.restrict(&class)?;
    let sub = gth(&restricted)?;
    let mut pi = vec![0.0; ctmc.n_states()];
    for (sub_idx, &state) in class.iter().enumerate() {
        pi[state] = sub.prob(sub_idx);
    }
    Ok(SteadyState::new(pi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn two_state() -> Ctmc {
        // π = (1/4, 3/4): rate(0→1)=3, rate(1→0)=1 → π0·3 = π1·1.
        CtmcBuilder::new(2)
            .rate(0, 1, 3.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn cyclic3() -> Ctmc {
        // Unidirectional cycle with distinct rates; π_i ∝ 1/rate_i.
        CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(1, 2, 2.0)
            .unwrap()
            .rate(2, 0, 4.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn gth_two_state() {
        let ss = gth(&two_state()).unwrap();
        assert_close(ss.probs(), &[0.25, 0.75], 1e-12);
    }

    #[test]
    fn gth_cyclic() {
        let ss = gth(&cyclic3()).unwrap();
        // π ∝ (1/1, 1/2, 1/4) = (4, 2, 1)/7.
        assert_close(ss.probs(), &[4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0], 1e-12);
    }

    #[test]
    fn all_solvers_agree() {
        for chain in [two_state(), cyclic3()] {
            let g = gth(&chain).unwrap();
            let p = power(&chain, 1e-12, 100_000).unwrap();
            let l = linear(&chain).unwrap();
            let s = gauss_seidel(&chain, 1e-13, 100_000).unwrap();
            assert_close(g.probs(), p.probs(), 1e-8);
            assert_close(g.probs(), l.probs(), 1e-10);
            assert_close(g.probs(), s.probs(), 1e-8);
        }
    }

    #[test]
    fn solvers_agree_on_random_dense_chain() {
        // Pseudo-random (but deterministic) dense 8-state chain.
        let n = 8;
        let mut builder = CtmcBuilder::new(n);
        let mut x = 123456789u64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let r = ((x >> 33) as f64) / (u32::MAX as f64) * 3.0 + 0.01;
                    builder = builder.rate(i, j, r).unwrap();
                }
            }
        }
        let chain = builder.build().unwrap();
        let g = gth(&chain).unwrap();
        let l = linear(&chain).unwrap();
        let p = power(&chain, 1e-13, 1_000_000).unwrap();
        assert_close(g.probs(), l.probs(), 1e-9);
        assert_close(g.probs(), p.probs(), 1e-8);
        assert!((g.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stiff_chain_gth_stays_accurate() {
        // Rates differing by 8 orders of magnitude.
        let chain = CtmcBuilder::new(3)
            .rate(0, 1, 1e-8)
            .unwrap()
            .rate(1, 2, 1.0)
            .unwrap()
            .rate(2, 0, 1e4)
            .unwrap()
            .rate(1, 0, 2.0)
            .unwrap()
            .build()
            .unwrap();
        let g = gth(&chain).unwrap();
        let l = linear(&chain).unwrap();
        for (a, b) in g.probs().iter().zip(l.probs()) {
            let rel = (a - b).abs() / b.max(1e-300);
            assert!(rel < 1e-6, "{:?} vs {:?}", g.probs(), l.probs());
        }
    }

    #[test]
    fn single_state_chain() {
        let c = CtmcBuilder::new(1).build().unwrap();
        for solver in [gth(&c), linear(&c), power(&c, 1e-9, 10), solve(&c)] {
            assert_eq!(solver.unwrap().probs(), &[1.0]);
        }
    }

    #[test]
    fn reducible_chain_rejected_by_strict_solvers() {
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(gth(&c), Err(MarkovError::NotIrreducible));
        assert_eq!(linear(&c), Err(MarkovError::NotIrreducible));
        assert_eq!(power(&c, 1e-9, 10), Err(MarkovError::NotIrreducible));
        assert_eq!(gauss_seidel(&c, 1e-9, 10), Err(MarkovError::NotIrreducible));
    }

    #[test]
    fn solve_handles_transient_states() {
        // 0 → 1 ↔ 2 (0 transient).
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 5.0)
            .unwrap()
            .rate(1, 2, 1.0)
            .unwrap()
            .rate(2, 1, 3.0)
            .unwrap()
            .build()
            .unwrap();
        let ss = solve(&c).unwrap();
        assert_eq!(ss.prob(0), 0.0);
        assert_close(&[ss.prob(1), ss.prob(2)], &[0.75, 0.25], 1e-12);
    }

    #[test]
    fn solve_rejects_two_absorbing_classes() {
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(0, 2, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(solve(&c), Err(MarkovError::NotIrreducible));
    }

    #[test]
    fn power_no_convergence_reported() {
        let c = two_state();
        assert!(matches!(
            power(&c, 1e-30, 3),
            Err(MarkovError::NoConvergence { iterations: 3, .. })
        ));
    }

    #[test]
    fn expectation_weights_states() {
        let ss = gth(&two_state()).unwrap();
        // E[i] = 0·0.25 + 1·0.75.
        assert!((ss.expectation(|i| i as f64) - 0.75).abs() < 1e-12);
        assert_eq!(ss.len(), 2);
        assert!(!ss.is_empty());
    }

    #[test]
    fn detailed_balance_birth_death() {
        // Birth-death chains satisfy detailed balance; check GTH against it.
        let chain = CtmcBuilder::new(4)
            .rate(0, 1, 2.0)
            .unwrap()
            .rate(1, 2, 2.0)
            .unwrap()
            .rate(2, 3, 2.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .rate(2, 1, 1.0)
            .unwrap()
            .rate(3, 2, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let ss = gth(&chain).unwrap();
        for i in 0..3 {
            let lhs = ss.prob(i) * 2.0;
            let rhs = ss.prob(i + 1) * 1.0;
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }
}
