//! Discrete-time Markov chains (DTMCs).
//!
//! Used for the embedded jump chain of a CTMC and as an independent
//! cross-check of the continuous-time solvers.

use crate::ctmc::Ctmc;
use crate::error::MarkovError;
use crate::linalg::{self, Matrix};

/// A discrete-time Markov chain with a row-stochastic transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: Matrix,
}

impl Dtmc {
    /// Creates a DTMC from a transition matrix.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::DimensionMismatch`] if the matrix is not square.
    /// * [`MarkovError::InvalidRate`] if any entry is negative or
    ///   non-finite.
    /// * [`MarkovError::NotStochastic`] if a row does not sum to 1 (within
    ///   `1e-9`).
    pub fn new(p: Matrix) -> Result<Self, MarkovError> {
        if p.rows() != p.cols() {
            return Err(MarkovError::DimensionMismatch {
                expected: p.rows(),
                actual: p.cols(),
            });
        }
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for j in 0..p.cols() {
                let v = p[(i, j)];
                if !v.is_finite() || v < 0.0 {
                    return Err(MarkovError::InvalidRate {
                        from: i,
                        to: j,
                        value: v,
                    });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(MarkovError::NotStochastic { row: i, sum });
            }
        }
        Ok(Self { p })
    }

    /// The embedded jump chain of a CTMC: `P[i][j] = q(i,j) / Σ_k q(i,k)`.
    /// Absorbing CTMC states (zero total rate) become self-loops.
    pub fn embedded(ctmc: &Ctmc) -> Self {
        let n = ctmc.n_states();
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            let total = ctmc.total_rate(i);
            if total == 0.0 {
                p[(i, i)] = 1.0;
            } else {
                for j in 0..n {
                    if i != j {
                        p[(i, j)] = ctmc.rate(i, j) / total;
                    }
                }
            }
        }
        Self { p }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition probability `i → j`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[(i, j)]
    }

    /// One step of the chain: `π' = π P`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] on a wrong-length vector.
    pub fn step(&self, pi: &[f64]) -> Result<Vec<f64>, MarkovError> {
        self.p.vec_mul(pi)
    }

    /// Stationary distribution by power iteration.
    ///
    /// For periodic chains, iterates on the lazy chain `(P + I)/2`, which
    /// has the same stationary vector and always converges when the chain
    /// is irreducible.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NoConvergence`] if `tol` is not reached in
    /// `max_iter` steps.
    pub fn steady_state(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>, MarkovError> {
        let n = self.n_states();
        let mut pi = vec![1.0 / n as f64; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iter {
            let stepped = self.step(&pi)?;
            let next: Vec<f64> = stepped
                .iter()
                .zip(&pi)
                .map(|(s, p)| 0.5 * (s + p))
                .collect();
            residual = linalg::max_abs_diff(&next, &pi);
            pi = next;
            if residual < tol {
                linalg::normalize_l1(&mut pi)?;
                return Ok(pi);
            }
        }
        Err(MarkovError::NoConvergence {
            iterations: max_iter,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn flip_flop(p01: f64, p10: f64) -> Dtmc {
        Dtmc::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
        .unwrap()
    }

    #[test]
    fn validates_rows() {
        let bad = Matrix::from_rows(&[vec![0.5, 0.4], vec![0.5, 0.5]]);
        assert!(matches!(
            Dtmc::new(bad),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        let neg = Matrix::from_rows(&[vec![1.5, -0.5], vec![0.5, 0.5]]);
        assert!(matches!(
            Dtmc::new(neg),
            Err(MarkovError::InvalidRate { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(Dtmc::new(rect).is_err());
    }

    #[test]
    fn step_moves_mass() {
        let d = flip_flop(1.0, 1.0);
        assert_eq!(d.step(&[1.0, 0.0]).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn steady_state_flip_flop() {
        let d = flip_flop(0.3, 0.1);
        let pi = d.steady_state(1e-13, 1_000_000).unwrap();
        // π0·0.3 = π1·0.1 → π = (0.25, 0.75).
        assert!((pi[0] - 0.25).abs() < 1e-8);
        assert!((pi[1] - 0.75).abs() < 1e-8);
    }

    #[test]
    fn periodic_chain_converges_via_lazy_iteration() {
        let d = flip_flop(1.0, 1.0); // period 2
        let pi = d.steady_state(1e-12, 100_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn embedded_chain_of_ctmc() {
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(0, 2, 3.0)
            .unwrap()
            .rate(1, 0, 5.0)
            .unwrap()
            .rate(2, 0, 5.0)
            .unwrap()
            .build()
            .unwrap();
        let d = Dtmc::embedded(&c);
        assert!((d.prob(0, 1) - 0.25).abs() < 1e-12);
        assert!((d.prob(0, 2) - 0.75).abs() < 1e-12);
        assert_eq!(d.prob(1, 0), 1.0);
    }

    #[test]
    fn embedded_absorbing_state_self_loops() {
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let d = Dtmc::embedded(&c);
        assert_eq!(d.prob(1, 1), 1.0);
    }

    #[test]
    fn no_convergence_error() {
        // Start (uniform) is far from the stationary vector (0.25, 0.75),
        // so two lazy iterations cannot reach the impossible tolerance.
        let d = flip_flop(0.3, 0.1);
        assert!(matches!(
            d.steady_state(1e-30, 2),
            Err(MarkovError::NoConvergence { .. })
        ));
    }
}
