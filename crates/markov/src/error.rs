//! Error types for Markov-chain construction and solving.

use std::fmt;

/// Errors produced when building or solving Markov chains.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A rate or probability was negative, NaN, or infinite.
    InvalidRate {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// A state index was out of range.
    InvalidState(usize),
    /// The chain has no states.
    Empty,
    /// The chain is reducible where an irreducible one is required, or has
    /// multiple closed recurrent classes so the stationary distribution is
    /// not unique.
    NotIrreducible,
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the solver gave up.
        residual: f64,
    },
    /// A linear system was (numerically) singular.
    Singular,
    /// Mismatched dimensions between operands.
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A DTMC row did not sum to one.
    NotStochastic {
        /// The offending row.
        row: usize,
        /// The row sum found.
        sum: f64,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidRate { from, to, value } => {
                write!(f, "invalid rate {value} on transition {from} -> {to}")
            }
            MarkovError::InvalidState(s) => write!(f, "state index {s} out of range"),
            MarkovError::Empty => write!(f, "chain has no states"),
            MarkovError::NotIrreducible => {
                write!(f, "chain is not irreducible; stationary distribution is not unique")
            }
            MarkovError::NoConvergence { iterations, residual } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MarkovError::Singular => write!(f, "linear system is singular"),
            MarkovError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MarkovError::NotStochastic { row, sum } => {
                write!(f, "row {row} of transition matrix sums to {sum}, expected 1")
            }
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MarkovError::InvalidRate {
            from: 0,
            to: 1,
            value: -1.0
        }
        .to_string()
        .contains("0 -> 1"));
        assert!(MarkovError::InvalidState(9).to_string().contains('9'));
        assert_eq!(MarkovError::Empty.to_string(), "chain has no states");
        assert!(MarkovError::NotIrreducible
            .to_string()
            .contains("irreducible"));
        assert!(MarkovError::NoConvergence {
            iterations: 5,
            residual: 0.1
        }
        .to_string()
        .contains("5 iterations"));
        assert!(MarkovError::Singular.to_string().contains("singular"));
        assert!(MarkovError::DimensionMismatch {
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("expected 3"));
        assert!(MarkovError::NotStochastic { row: 2, sum: 0.5 }
            .to_string()
            .contains("row 2"));
    }
}
