//! Transient CTMC solution by uniformization (Jensen's method).
//!
//! Not required for the paper's steady-state results, but listed in its
//! "can be expanded" conclusion and useful in the examples: it predicts the
//! bandwidth-level distribution of a channel a finite time after a
//! disturbance (e.g. a failure burst).

use crate::ctmc::Ctmc;
use crate::error::MarkovError;
use crate::linalg;

/// Computes the state distribution at time `t`, starting from `initial`.
///
/// Uses uniformization: `π(t) = Σ_k e^{-Λt} (Λt)^k / k! · π₀ Pᵏ`, truncated
/// once the accumulated Poisson mass exceeds `1 − tol`. Long horizons
/// (`Λt > 200`) are split recursively to avoid floating-point underflow of
/// the leading Poisson term.
///
/// # Errors
///
/// * [`MarkovError::DimensionMismatch`] if `initial` has the wrong length.
/// * [`MarkovError::InvalidRate`] if `t` is negative or non-finite, or
///   `tol` is not in `(0, 1)`.
/// * [`MarkovError::Singular`] if `initial` does not sum to a positive
///   value.
pub fn transient(ctmc: &Ctmc, initial: &[f64], t: f64, tol: f64) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if initial.len() != n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            actual: initial.len(),
        });
    }
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidRate {
            from: 0,
            to: 0,
            value: t,
        });
    }
    if !(tol > 0.0 && tol < 1.0) {
        return Err(MarkovError::InvalidRate {
            from: 0,
            to: 0,
            value: tol,
        });
    }
    let mut pi: Vec<f64> = initial.to_vec();
    linalg::normalize_l1(&mut pi)?;
    if t == 0.0 {
        return Ok(pi);
    }
    let lambda = ctmc.uniformization_rate();
    // Split long horizons so e^{-Λt} stays representable.
    let chunks = (lambda * t / 200.0).ceil().max(1.0) as usize;
    let dt = t / chunks as f64;
    let p = ctmc.uniformized();
    for _ in 0..chunks {
        pi = transient_step(&p, &pi, lambda * dt, tol / chunks as f64)?;
    }
    Ok(pi)
}

/// One uniformization step for Poisson parameter `a = Λ·dt ≤ ~200`.
fn transient_step(
    p: &linalg::Matrix,
    initial: &[f64],
    a: f64,
    tol: f64,
) -> Result<Vec<f64>, MarkovError> {
    let mut weight = (-a).exp(); // Poisson(a, 0)
    let mut cumulative = weight;
    let mut power_vec: Vec<f64> = initial.to_vec(); // π₀ Pᵏ
    let mut result: Vec<f64> = power_vec.iter().map(|x| x * weight).collect();
    let mut k = 0usize;
    // Hard cap well beyond the Poisson tail for a ≤ 200.
    let max_terms = (a as usize + 1) * 4 + 200;
    while cumulative < 1.0 - tol && k < max_terms {
        k += 1;
        power_vec = p.vec_mul(&power_vec)?;
        weight *= a / k as f64;
        cumulative += weight;
        for (r, x) in result.iter_mut().zip(&power_vec) {
            *r += weight * x;
        }
    }
    let mut out = result;
    for x in out.iter_mut() {
        *x = x.max(0.0);
    }
    linalg::normalize_l1(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;
    use crate::steady_state;

    fn two_state() -> Ctmc {
        CtmcBuilder::new(2)
            .rate(0, 1, 3.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn t_zero_returns_initial() {
        let c = two_state();
        let pi = transient(&c, &[1.0, 0.0], 0.0, 1e-10).unwrap();
        assert_eq!(pi, vec![1.0, 0.0]);
    }

    #[test]
    fn initial_is_normalized() {
        let c = two_state();
        let pi = transient(&c, &[2.0, 2.0], 0.0, 1e-10).unwrap();
        assert_eq!(pi, vec![0.5, 0.5]);
    }

    #[test]
    fn converges_to_steady_state() {
        let c = two_state();
        let pi = transient(&c, &[1.0, 0.0], 100.0, 1e-12).unwrap();
        let ss = steady_state::gth(&c).unwrap();
        for (a, b) in pi.iter().zip(ss.probs()) {
            assert!((a - b).abs() < 1e-9, "{pi:?} vs {:?}", ss.probs());
        }
    }

    #[test]
    fn matches_closed_form_two_state() {
        // For a two-state chain with rates a (0→1) and b (1→0), starting in
        // state 0: π₀(t) = b/(a+b) + a/(a+b)·e^{−(a+b)t}.
        let (a, b) = (3.0, 1.0);
        let c = two_state();
        for t in [0.1, 0.5, 1.0, 2.0] {
            let pi = transient(&c, &[1.0, 0.0], t, 1e-13).unwrap();
            let expect0 = b / (a + b) + a / (a + b) * (-(a + b) * t).exp();
            assert!(
                (pi[0] - expect0).abs() < 1e-9,
                "t={t}: got {} expected {expect0}",
                pi[0]
            );
        }
    }

    #[test]
    fn long_horizon_is_stable() {
        // Λt ≈ 3·10⁴: must split internally without under/overflow.
        let c = two_state();
        let pi = transient(&c, &[1.0, 0.0], 1e4, 1e-9).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((pi[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn distribution_stays_normalized_along_the_way() {
        let c = two_state();
        for t in [0.01, 0.3, 2.5, 40.0] {
            let pi = transient(&c, &[0.0, 1.0], t, 1e-12).unwrap();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(pi.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        let c = two_state();
        assert!(transient(&c, &[1.0], 1.0, 1e-9).is_err());
        assert!(transient(&c, &[1.0, 0.0], -1.0, 1e-9).is_err());
        assert!(transient(&c, &[1.0, 0.0], f64::NAN, 1e-9).is_err());
        assert!(transient(&c, &[1.0, 0.0], 1.0, 0.0).is_err());
        assert!(transient(&c, &[1.0, 0.0], 1.0, 1.5).is_err());
        assert!(transient(&c, &[0.0, 0.0], 1.0, 1e-9).is_err());
    }

    #[test]
    fn absorbing_chain_accumulates_in_absorbing_state() {
        // 0 → 1 absorbing.
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let pi = transient(&c, &[1.0, 0.0], 5.0, 1e-12).unwrap();
        // π₁(t) = 1 − e^{−t}.
        assert!((pi[1] - (1.0 - (-5.0f64).exp())).abs() < 1e-9);
    }
}
