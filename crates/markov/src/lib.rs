//! # drqos-markov
//!
//! Markov-chain modelling and solving for the `drqos` workspace — the
//! in-repo replacement for the SHARPE package the paper uses to solve its
//! elastic-QoS bandwidth model.
//!
//! * [`ctmc`] — continuous-time chains ([`ctmc::Ctmc`],
//!   [`ctmc::CtmcBuilder`]), irreducibility and recurrent-class analysis.
//! * [`steady_state`] — GTH elimination (default), power iteration, direct
//!   LU, Gauss–Seidel; [`steady_state::solve`] handles transient states.
//! * [`transient`] — uniformization for finite-horizon distributions.
//! * [`hitting`] — mean first-passage times (expected recovery times).
//! * [`dtmc`] — discrete-time chains and embedded jump chains.
//! * [`birth_death`] — closed-form product solutions used for
//!   cross-validation (including Erlang-B).
//! * [`linalg`] — the dense LU kernel underpinning the direct solver.
//!
//! # Example: the paper's 5-state chain shape
//!
//! ```
//! use drqos_markov::ctmc::CtmcBuilder;
//! use drqos_markov::steady_state;
//!
//! // Downward retreats to state 0, upward single-increment climbs.
//! let mut b = CtmcBuilder::new(5);
//! for i in 1..5 {
//!     b = b.rate(i, 0, 0.4)?; // arrivals reclaim extras
//! }
//! for i in 0..4 {
//!     b = b.rate(i, i + 1, 1.0)?; // terminations free extras
//! }
//! let chain = b.build()?;
//! let ss = steady_state::solve(&chain)?;
//! let avg_level = ss.expectation(|i| i as f64);
//! assert!(avg_level > 0.0 && avg_level < 4.0);
//! # Ok::<(), drqos_markov::error::MarkovError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Dense matrix kernels read more clearly with explicit index loops.
#![allow(clippy::needless_range_loop)]

pub mod birth_death;
pub mod ctmc;
pub mod dtmc;
pub mod error;
pub mod hitting;
pub mod linalg;
pub mod steady_state;
pub mod transient;

pub use ctmc::{Ctmc, CtmcBuilder};
pub use dtmc::Dtmc;
pub use error::MarkovError;
pub use steady_state::{solve, SteadyState};
