//! Continuous-time Markov chains (CTMCs).
//!
//! A CTMC over states `0..n` is described by non-negative transition rates
//! `q(i, j)` for `i ≠ j`; the generator matrix `Q` has these off-diagonal
//! entries and `Q[i][i] = -Σ_j q(i, j)`.
//!
//! The paper's elastic-QoS bandwidth model (Section 3.2) is exactly such a
//! chain, with one state per bandwidth level of a primary channel.

use crate::error::MarkovError;
use crate::linalg::Matrix;

/// Builder for a [`Ctmc`]; accumulates rates (multiple calls for the same
/// pair add up, mirroring how the paper's model sums the contributions of
/// arrivals, terminations, and failures on the same transition).
///
/// # Examples
///
/// ```
/// use drqos_markov::ctmc::CtmcBuilder;
///
/// let chain = CtmcBuilder::new(2)
///     .rate(0, 1, 1.0)?
///     .rate(1, 0, 2.0)?
///     .build()?;
/// assert_eq!(chain.n_states(), 2);
/// assert_eq!(chain.rate(0, 1), 1.0);
/// # Ok::<(), drqos_markov::error::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CtmcBuilder {
    n: usize,
    rates: Vec<f64>, // dense n×n, diagonal unused (kept zero)
}

impl CtmcBuilder {
    /// Starts a builder for a chain with `n` states.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Adds `rate` to the transition `from → to`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidState`] if either state is out of range or
    ///   `from == to` (self-rates are meaningless in a CTMC).
    /// * [`MarkovError::InvalidRate`] if `rate` is negative or non-finite.
    pub fn rate(mut self, from: usize, to: usize, rate: f64) -> Result<Self, MarkovError> {
        if from >= self.n {
            return Err(MarkovError::InvalidState(from));
        }
        if to >= self.n || from == to {
            return Err(MarkovError::InvalidState(to));
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(MarkovError::InvalidRate {
                from,
                to,
                value: rate,
            });
        }
        self.rates[from * self.n + to] += rate;
        Ok(self)
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if the chain has no states.
    pub fn build(self) -> Result<Ctmc, MarkovError> {
        if self.n == 0 {
            return Err(MarkovError::Empty);
        }
        Ok(Ctmc {
            n: self.n,
            rates: self.rates,
        })
    }
}

/// A continuous-time Markov chain with dense rate storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    n: usize,
    rates: Vec<f64>,
}

impl Ctmc {
    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// The rate of `from → to` (zero if no transition; zero on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "state index out of range");
        self.rates[from * self.n + to]
    }

    /// Total outgoing rate of `state` (the exponential holding-time rate).
    pub fn total_rate(&self, state: usize) -> f64 {
        assert!(state < self.n, "state index out of range");
        (0..self.n).map(|j| self.rates[state * self.n + j]).sum()
    }

    /// The generator matrix `Q` (off-diagonal rates, diagonal `-Σ`).
    pub fn generator(&self) -> Matrix {
        let mut q = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    q[(i, j)] = self.rate(i, j);
                }
            }
            q[(i, i)] = -self.total_rate(i);
        }
        q
    }

    /// A uniformization constant `Λ ≥ max_i Σ_j q(i,j)`, strictly larger so
    /// the uniformized DTMC has self-loops in every state (hence is
    /// aperiodic and power iteration converges).
    pub fn uniformization_rate(&self) -> f64 {
        let max = (0..self.n).map(|i| self.total_rate(i)).fold(0.0, f64::max);
        if max == 0.0 {
            1.0
        } else {
            max * 1.05
        }
    }

    /// The uniformized transition-probability matrix
    /// `P = I + Q / Λ` for `Λ =` [`Ctmc::uniformization_rate`].
    pub fn uniformized(&self) -> Matrix {
        let lambda = self.uniformization_rate();
        let mut p = Matrix::identity(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let r = self.rate(i, j) / lambda;
                    p[(i, j)] = r;
                    p[(i, i)] -= r;
                }
            }
        }
        p
    }

    /// Whether every state can reach every other state through positive
    /// rates (strong connectivity of the transition graph).
    pub fn is_irreducible(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        self.reachable_from(0, false).iter().all(|&r| r)
            && self.reachable_from(0, true).iter().all(|&r| r)
    }

    /// BFS reachability from `start` (or to it, if `reverse`).
    fn reachable_from(&self, start: usize, reverse: bool) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for v in 0..self.n {
                let r = if reverse {
                    self.rate(v, u)
                } else {
                    self.rate(u, v)
                };
                if r > 0.0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// The unique closed recurrent class of the chain, if there is exactly
    /// one: the set of states from which the long-run behaviour is drawn.
    ///
    /// Transient states (states that can reach the class but not be reached
    /// from it) are permitted; they receive stationary probability zero.
    /// This matters for measured chains: at light load a channel may never
    /// be observed leaving the top bandwidth level, making lower levels
    /// transient.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotIrreducible`] if there are two or more
    /// closed recurrent classes (the stationary distribution would not be
    /// unique).
    pub fn recurrent_class(&self) -> Result<Vec<usize>, MarkovError> {
        // A state's SCC is closed iff no member has a positive rate to a
        // non-member. With n ≤ a few dozen, the O(n²·n) approach below is
        // plenty: compute pairwise reachability, group into SCCs, test
        // closedness.
        let mut reach: Vec<Vec<bool>> =
            (0..self.n).map(|i| self.reachable_from(i, false)).collect();
        for i in 0..self.n {
            reach[i][i] = true;
        }
        let mut assigned = vec![usize::MAX; self.n];
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.n {
            if assigned[i] != usize::MAX {
                continue;
            }
            let mut scc = Vec::new();
            for j in 0..self.n {
                if reach[i][j] && reach[j][i] {
                    scc.push(j);
                }
            }
            let id = sccs.len();
            for &j in &scc {
                assigned[j] = id;
            }
            sccs.push(scc);
        }
        let mut closed: Vec<&Vec<usize>> = Vec::new();
        for scc in &sccs {
            let is_closed = scc.iter().all(|&i| {
                (0..self.n).all(|j| self.rate(i, j) == 0.0 || assigned[j] == assigned[i])
            });
            if is_closed {
                closed.push(scc);
            }
        }
        match closed.as_slice() {
            [only] => Ok((*only).clone()),
            _ => Err(MarkovError::NotIrreducible),
        }
    }

    /// Restricts the chain to `states` (which must be closed under positive
    /// rates), renumbering them `0..states.len()` in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidState`] if `states` is empty, contains
    /// an out-of-range or duplicate index, or has a positive rate leaving
    /// the set.
    pub fn restrict(&self, states: &[usize]) -> Result<Ctmc, MarkovError> {
        if states.is_empty() {
            return Err(MarkovError::Empty);
        }
        let mut index = vec![usize::MAX; self.n];
        for (new, &old) in states.iter().enumerate() {
            if old >= self.n || index[old] != usize::MAX {
                return Err(MarkovError::InvalidState(old));
            }
            index[old] = new;
        }
        let m = states.len();
        let mut rates = vec![0.0; m * m];
        for (new_i, &old_i) in states.iter().enumerate() {
            for old_j in 0..self.n {
                let r = self.rate(old_i, old_j);
                if r > 0.0 {
                    let new_j = index[old_j];
                    if new_j == usize::MAX {
                        return Err(MarkovError::InvalidState(old_j));
                    }
                    rates[new_i * m + new_j] = r;
                }
            }
        }
        Ok(Ctmc { n: m, rates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        CtmcBuilder::new(2)
            .rate(0, 1, 3.0)
            .unwrap()
            .rate(1, 0, 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_accumulates_rates() {
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(0, 1, 2.5)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(c.rate(0, 1), 3.5);
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(CtmcBuilder::new(2).rate(2, 0, 1.0).is_err());
        assert!(CtmcBuilder::new(2).rate(0, 2, 1.0).is_err());
        assert!(CtmcBuilder::new(2).rate(0, 0, 1.0).is_err());
        assert!(CtmcBuilder::new(2).rate(0, 1, -1.0).is_err());
        assert!(CtmcBuilder::new(2).rate(0, 1, f64::NAN).is_err());
        assert!(matches!(
            CtmcBuilder::new(0).build(),
            Err(MarkovError::Empty)
        ));
    }

    #[test]
    fn zero_rate_is_allowed_and_inert() {
        let c = CtmcBuilder::new(2)
            .rate(0, 1, 0.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(c.rate(0, 1), 0.0);
        assert!(!c.is_irreducible());
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let q = two_state().generator();
        for i in 0..2 {
            let sum: f64 = (0..2).map(|j| q[(i, j)]).sum();
            assert!(sum.abs() < 1e-12);
        }
        assert_eq!(q[(0, 0)], -3.0);
        assert_eq!(q[(0, 1)], 3.0);
    }

    #[test]
    fn total_rate_sums_row() {
        let c = two_state();
        assert_eq!(c.total_rate(0), 3.0);
        assert_eq!(c.total_rate(1), 1.0);
    }

    #[test]
    fn uniformization_exceeds_max_rate() {
        let c = two_state();
        assert!(c.uniformization_rate() > 3.0);
    }

    #[test]
    fn uniformization_of_rateless_chain_is_positive() {
        let c = CtmcBuilder::new(2).build().unwrap();
        assert_eq!(c.uniformization_rate(), 1.0);
    }

    #[test]
    fn uniformized_is_stochastic_with_self_loops() {
        let p = two_state().uniformized();
        for i in 0..2 {
            let sum: f64 = (0..2).map(|j| p[(i, j)]).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p[(i, i)] > 0.0, "uniformized chain must be aperiodic");
        }
    }

    #[test]
    fn irreducibility_detection() {
        assert!(two_state().is_irreducible());
        let one_way = CtmcBuilder::new(2)
            .rate(0, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(!one_way.is_irreducible());
        let single = CtmcBuilder::new(1).build().unwrap();
        assert!(single.is_irreducible());
    }

    #[test]
    fn recurrent_class_of_irreducible_is_everything() {
        assert_eq!(two_state().recurrent_class().unwrap(), vec![0, 1]);
    }

    #[test]
    fn recurrent_class_with_transient_states() {
        // 0 → 1 ↔ 2: state 0 is transient, {1, 2} recurrent.
        let c = CtmcBuilder::new(3)
            .rate(0, 1, 1.0)
            .unwrap()
            .rate(1, 2, 1.0)
            .unwrap()
            .rate(2, 1, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(c.recurrent_class().unwrap(), vec![1, 2]);
    }

    #[test]
    fn two_closed_classes_is_an_error() {
        // {0} and {1} both absorbing.
        let c = CtmcBuilder::new(2).build().unwrap();
        assert_eq!(c.recurrent_class(), Err(MarkovError::NotIrreducible));
    }

    #[test]
    fn restrict_renumbers() {
        let c = CtmcBuilder::new(3)
            .rate(1, 2, 4.0)
            .unwrap()
            .rate(2, 1, 5.0)
            .unwrap()
            .build()
            .unwrap();
        let r = c.restrict(&[1, 2]).unwrap();
        assert_eq!(r.n_states(), 2);
        assert_eq!(r.rate(0, 1), 4.0);
        assert_eq!(r.rate(1, 0), 5.0);
    }

    #[test]
    fn restrict_rejects_open_set() {
        let c = CtmcBuilder::new(3)
            .rate(0, 2, 1.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(c.restrict(&[0, 1]).is_err());
        assert!(c.restrict(&[]).is_err());
        assert!(c.restrict(&[0, 0]).is_err());
        assert!(c.restrict(&[5]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rate_bounds_checked() {
        two_state().rate(0, 5);
    }
}
