//! Birth–death chains and their closed-form stationary distributions.
//!
//! The paper's bandwidth-level chain is *not* birth–death (retreats jump
//! straight to the bottom state), but birth–death chains give us exact
//! closed forms to validate the numeric solvers against, and they model the
//! per-link channel-count processes used in tests.

use crate::ctmc::{Ctmc, CtmcBuilder};
use crate::error::MarkovError;
use crate::linalg;

/// Builds the CTMC of a birth–death process with `birth[i]` the rate
/// `i → i+1` and `death[i]` the rate `i+1 → i`.
///
/// The chain has `birth.len() + 1` states.
///
/// # Errors
///
/// * [`MarkovError::DimensionMismatch`] if `death.len() != birth.len()`.
/// * [`MarkovError::Empty`] if `birth` is empty.
/// * [`MarkovError::InvalidRate`] if any rate is negative or non-finite.
pub fn birth_death_ctmc(birth: &[f64], death: &[f64]) -> Result<Ctmc, MarkovError> {
    if birth.is_empty() {
        return Err(MarkovError::Empty);
    }
    if birth.len() != death.len() {
        return Err(MarkovError::DimensionMismatch {
            expected: birth.len(),
            actual: death.len(),
        });
    }
    let n = birth.len() + 1;
    let mut b = CtmcBuilder::new(n);
    for (i, &rate) in birth.iter().enumerate() {
        b = b.rate(i, i + 1, rate)?;
    }
    for (i, &rate) in death.iter().enumerate() {
        b = b.rate(i + 1, i, rate)?;
    }
    b.build()
}

/// Closed-form stationary distribution of a birth–death chain:
/// `π_k ∝ Π_{i<k} birth[i] / death[i]`.
///
/// # Errors
///
/// * Propagates the construction errors of [`birth_death_ctmc`].
/// * [`MarkovError::NotIrreducible`] if any interior rate is zero (the
///   product form requires a strictly positive chain).
pub fn birth_death_stationary(birth: &[f64], death: &[f64]) -> Result<Vec<f64>, MarkovError> {
    if birth.is_empty() {
        return Err(MarkovError::Empty);
    }
    if birth.len() != death.len() {
        return Err(MarkovError::DimensionMismatch {
            expected: birth.len(),
            actual: death.len(),
        });
    }
    if birth
        .iter()
        .chain(death.iter())
        .any(|&r| !r.is_finite() || r <= 0.0)
    {
        return Err(MarkovError::NotIrreducible);
    }
    let mut pi = Vec::with_capacity(birth.len() + 1);
    pi.push(1.0);
    for i in 0..birth.len() {
        let last = *pi.last().expect("non-empty");
        pi.push(last * birth[i] / death[i]);
    }
    linalg::normalize_l1(&mut pi)?;
    Ok(pi)
}

/// The Erlang-B style M/M/c/c loss chain: arrivals `λ`, per-server service
/// rate `μ`, capacity `c` (states = number of busy servers).
///
/// # Errors
///
/// Returns [`MarkovError::InvalidRate`] if `lambda`/`mu` are not positive
/// and finite, or [`MarkovError::Empty`] if `c == 0`.
pub fn mmcc_chain(lambda: f64, mu: f64, c: usize) -> Result<Ctmc, MarkovError> {
    if c == 0 {
        return Err(MarkovError::Empty);
    }
    if !lambda.is_finite() || lambda <= 0.0 {
        return Err(MarkovError::InvalidRate {
            from: 0,
            to: 0,
            value: lambda,
        });
    }
    if !mu.is_finite() || mu <= 0.0 {
        return Err(MarkovError::InvalidRate {
            from: 0,
            to: 0,
            value: mu,
        });
    }
    let birth = vec![lambda; c];
    let death: Vec<f64> = (1..=c).map(|k| k as f64 * mu).collect();
    birth_death_ctmc(&birth, &death)
}

/// The Erlang-B blocking probability `B(c, a)` with offered load
/// `a = λ/μ`, computed by the standard stable recurrence.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidRate`] if `a` is not positive and finite.
pub fn erlang_b(c: usize, a: f64) -> Result<f64, MarkovError> {
    if !a.is_finite() || a <= 0.0 {
        return Err(MarkovError::InvalidRate {
            from: 0,
            to: 0,
            value: a,
        });
    }
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady_state;

    #[test]
    fn ctmc_structure() {
        let c = birth_death_ctmc(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(c.n_states(), 3);
        assert_eq!(c.rate(0, 1), 1.0);
        assert_eq!(c.rate(1, 2), 2.0);
        assert_eq!(c.rate(1, 0), 3.0);
        assert_eq!(c.rate(2, 1), 4.0);
        assert_eq!(c.rate(0, 2), 0.0);
    }

    #[test]
    fn construction_errors() {
        assert!(birth_death_ctmc(&[], &[]).is_err());
        assert!(birth_death_ctmc(&[1.0], &[]).is_err());
        assert!(birth_death_ctmc(&[-1.0], &[1.0]).is_err());
        assert!(birth_death_stationary(&[], &[]).is_err());
        assert!(birth_death_stationary(&[1.0], &[1.0, 2.0]).is_err());
        assert!(birth_death_stationary(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn closed_form_matches_gth() {
        let birth = [2.0, 1.5, 1.0, 0.5];
        let death = [1.0, 1.0, 2.0, 3.0];
        let exact = birth_death_stationary(&birth, &death).unwrap();
        let chain = birth_death_ctmc(&birth, &death).unwrap();
        let gth = steady_state::gth(&chain).unwrap();
        for (a, b) in exact.iter().zip(gth.probs()) {
            assert!((a - b).abs() < 1e-12, "{exact:?} vs {:?}", gth.probs());
        }
    }

    #[test]
    fn mm1k_utilization_half() {
        // λ = 1, μ = 2, K = 3: π_k ∝ (1/2)^k.
        let pi = birth_death_stationary(&[1.0; 3], &[2.0; 3]).unwrap();
        let z: f64 = 1.0 + 0.5 + 0.25 + 0.125;
        for (k, &p) in pi.iter().enumerate() {
            assert!((p - 0.5f64.powi(k as i32) / z).abs() < 1e-12);
        }
    }

    #[test]
    fn mmcc_blocking_matches_erlang_b() {
        let (lambda, mu, c) = (3.0, 1.0, 5);
        let chain = mmcc_chain(lambda, mu, c).unwrap();
        let ss = steady_state::gth(&chain).unwrap();
        let blocking = ss.prob(c);
        let eb = erlang_b(c, lambda / mu).unwrap();
        assert!(
            (blocking - eb).abs() < 1e-12,
            "chain {blocking} vs erlang-b {eb}"
        );
    }

    #[test]
    fn mmcc_rejects_bad_params() {
        assert!(mmcc_chain(0.0, 1.0, 2).is_err());
        assert!(mmcc_chain(1.0, -1.0, 2).is_err());
        assert!(mmcc_chain(1.0, 1.0, 0).is_err());
        assert!(erlang_b(3, 0.0).is_err());
        assert!(erlang_b(3, f64::NAN).is_err());
    }

    #[test]
    fn erlang_b_known_value() {
        // B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2.
        let b = erlang_b(2, 1.0).unwrap();
        assert!((b - 0.2).abs() < 1e-12);
    }

    #[test]
    fn erlang_b_zero_servers_blocks_everything() {
        assert_eq!(erlang_b(0, 2.0).unwrap(), 1.0);
    }
}
