//! Minimal dense linear algebra for small systems.
//!
//! The paper's Markov chains have at most a handful of states (5 or 9), so a
//! simple, dependency-free dense implementation with LU decomposition and
//! partial pivoting is both sufficient and easy to audit. Everything is
//! row-major `f64`.

use crate::error::MarkovError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use drqos_markov::linalg::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = a.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), drqos_markov::error::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if x.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum::<f64>())
            .collect())
    }

    /// Row-vector–matrix product `xᵀ·A` (how stationary equations are
    /// usually written).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if x.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        Ok((0..self.cols)
            .map(|j| (0..self.rows).map(|i| x[i] * self[(i, j)]).sum::<f64>())
            .collect())
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Solves `A·x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::DimensionMismatch`] if the matrix is not square or
    ///   `b` has the wrong length.
    /// * [`MarkovError::Singular`] if a pivot is (numerically) zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        // Scale-aware singularity threshold.
        let scale = a.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
        let eps = scale * 1e-13;
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                .expect("non-empty range");
            if a[pivot_row * n + col].abs() < eps {
                return Err(MarkovError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            x[col] /= a[col * n + col];
            for row in 0..col {
                x[row] -= a[row * n + col] * x[col];
            }
        }
        Ok(x)
    }

    /// The infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Maximum absolute difference between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Normalizes `v` to sum to one in place.
///
/// # Errors
///
/// Returns [`MarkovError::Singular`] if the sum is zero or non-finite.
pub fn normalize_l1(v: &mut [f64]) -> Result<(), MarkovError> {
    let sum: f64 = v.iter().sum();
    if !sum.is_finite() || sum.abs() < f64::MIN_POSITIVE {
        return Err(MarkovError::Singular);
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z[(1, 2)], 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        Matrix::zeros(0, 3);
    }

    #[test]
    fn from_rows_builds() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn vec_mul_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            m.mul_vec(&[1.0]),
            Err(MarkovError::DimensionMismatch {
                expected: 3,
                actual: 1
            })
        ));
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn solve_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 4.0;
        let x = a.solve(&[1.0, 2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn solve_general_3x3() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expected) {
            assert!((got - want).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MarkovError::Singular));
    }

    #[test]
    fn solve_non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_wrong_rhs_len_rejected() {
        let a = Matrix::identity(2);
        assert!(a.solve(&[1.0]).is_err());
    }

    #[test]
    fn residual_is_small() {
        // Verify A·x ≈ b on a moderately conditioned random-ish system.
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0, 0.5],
            vec![-2.0, 5.0, -1.0, 0.0],
            vec![1.0, -1.0, 6.0, -2.0],
            vec![0.5, 0.0, -2.0, 3.0],
        ]);
        let b = [1.0, -2.0, 3.0, -4.0];
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b) < 1e-10);
    }

    #[test]
    fn inf_norm_max_row_sum() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.5]]);
        assert_eq!(m.inf_norm(), 3.5);
    }

    #[test]
    fn normalize_l1_scales() {
        let mut v = vec![1.0, 3.0];
        normalize_l1(&mut v).unwrap();
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_l1_zero_fails() {
        let mut v = vec![0.0, 0.0];
        assert!(normalize_l1(&mut v).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_renders() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert!(s.contains("1.000000"));
    }
}
