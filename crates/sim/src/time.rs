//! Virtual simulation time.
//!
//! Simulation time is a non-negative, finite `f64` wrapped in [`SimTime`],
//! which provides a total order (so it can live in a priority queue) and
//! validated arithmetic.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in virtual simulation time.
///
/// Invariant: the wrapped value is finite and non-negative. This makes
/// `SimTime` totally ordered and `Eq`, unlike a raw `f64`.
///
/// # Examples
///
/// ```
/// use drqos_sim::time::SimTime;
///
/// let t = SimTime::ZERO + 5.0;
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t.as_secs(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite.
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// The wrapped value, in (virtual) seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `self - earlier`, or zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite by construction, so total_cmp agrees with the
        // usual order.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances time by `rhs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or non-finite.
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl Sub for SimTime {
    type Output = f64;

    /// The (possibly negative) elapsed seconds between two instants.
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn add_advances() {
        let t = SimTime::new(1.5) + 2.5;
        assert_eq!(t.as_secs(), 4.0);
    }

    #[test]
    fn sub_gives_elapsed() {
        assert_eq!(SimTime::new(5.0) - SimTime::new(2.0), 3.0);
        assert_eq!(SimTime::new(2.0) - SimTime::new(5.0), -3.0);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime::new(2.0).saturating_since(SimTime::new(5.0)), 0.0);
        assert_eq!(SimTime::new(5.0).saturating_since(SimTime::new(2.0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::new(1.5).to_string(), "t=1.500000");
    }
}
