//! Random-variate distributions used by the workload and fault models.
//!
//! All distributions implement [`Distribution`] and draw from the
//! workspace's deterministic [`crate::rng::Rng`].
//!
//! # Examples
//!
//! ```
//! use drqos_sim::dist::{Distribution, Exponential};
//! use drqos_sim::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(1);
//! let inter_arrival = Exponential::new(0.001).unwrap();
//! let dt = inter_arrival.sample(&mut rng);
//! assert!(dt > 0.0);
//! ```

use crate::rng::Rng;
use std::fmt;

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidParameter {
    what: String,
}

impl InvalidParameter {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for InvalidParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidParameter {}

/// A source of random variates of type `T`.
pub trait Distribution<T> {
    /// Draws one variate.
    fn sample(&self, rng: &mut Rng) -> T;

    /// Draws `n` variates into a `Vec`.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The exponential distribution with rate `λ` (mean `1/λ`).
///
/// Inter-arrival times of DR-connection requests, holding times, and link
/// failure inter-arrival times are all exponential in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Result<Self, InvalidParameter> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(InvalidParameter::new(format!(
                "exponential rate must be finite and positive, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution from its mean (`1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] if `mean` is not finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, InvalidParameter> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(InvalidParameter::new(format!(
                "exponential mean must be finite and positive, got {mean}"
            )));
        }
        Ok(Self { rate: 1.0 / mean })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform on (0, 1]; ln of the open interval avoids -inf.
        -rng.next_f64_open().ln() / self.rate
    }
}

/// The continuous uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, InvalidParameter> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(InvalidParameter::new(format!(
                "uniform bounds must be finite with lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution<f64> for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// A Bernoulli trial with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, InvalidParameter> {
        if !(0.0..=1.0).contains(&p) {
            return Err(InvalidParameter::new(format!(
                "Bernoulli p must be in [0,1], got {p}"
            )));
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut Rng) -> bool {
        rng.chance(self.p)
    }
}

/// A discrete distribution over `0..weights.len()` with the given
/// (unnormalized, non-negative) weights.
///
/// Used e.g. to draw connection QoS classes in mixed workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Creates a weighted discrete distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] if `weights` is empty, any weight is
    /// negative or non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidParameter> {
        if weights.is_empty() {
            return Err(InvalidParameter::new("weights must be non-empty"));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(InvalidParameter::new(format!(
                    "weights must be finite and non-negative, got {w}"
                )));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(InvalidParameter::new("total weight must be positive"));
        }
        Ok(Self { cumulative, total })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample(&self, rng: &mut Rng) -> usize {
        let x = rng.next_f64() * self.total;
        // partition_point returns the first index with cumulative > x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

/// The Pareto (type I) distribution with scale `x_m` and shape `α`.
///
/// Heavy-tailed holding times for the adversarial scenarios: the paper's
/// Markov model assumes exponential holding, so Pareto holding (finite
/// mean only for `α > 1`, infinite variance for `α ≤ 2`) is exactly the
/// regime where its predictions should start to break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with the given scale and shape.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] unless both parameters are finite and
    /// positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, InvalidParameter> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(InvalidParameter::new(format!(
                "Pareto scale must be finite and positive, got {scale}"
            )));
        }
        if !shape.is_finite() || shape <= 0.0 {
            return Err(InvalidParameter::new(format!(
                "Pareto shape must be finite and positive, got {shape}"
            )));
        }
        Ok(Self { scale, shape })
    }

    /// Creates a Pareto distribution with the given mean and shape.
    ///
    /// Solves `mean = α·x_m / (α - 1)` for the scale, so swapping an
    /// exponential holding model for a Pareto one preserves offered load.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] unless `mean` is finite and positive
    /// and `shape > 1` (the mean is infinite otherwise).
    pub fn from_mean(mean: f64, shape: f64) -> Result<Self, InvalidParameter> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(InvalidParameter::new(format!(
                "Pareto mean must be finite and positive, got {mean}"
            )));
        }
        if !shape.is_finite() || shape <= 1.0 {
            return Err(InvalidParameter::new(format!(
                "Pareto shape must exceed 1 for a finite mean, got {shape}"
            )));
        }
        Self::new(mean * (shape - 1.0) / shape, shape)
    }

    /// Scale parameter `x_m` (the distribution's minimum).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter `α` (tail index).
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The analytic mean `α·x_m / (α - 1)`, or `+∞` when `α ≤ 1`.
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse transform: x_m / U^(1/α) on the open unit interval.
        self.scale / rng.next_f64_open().powf(1.0 / self.shape)
    }
}

/// A degenerate (constant) distribution; useful as a deterministic stand-in
/// in tests and ablation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution<f64> for Constant {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(2024)
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::new(0.001).unwrap();
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / n as f64;
        // True mean is 1000; allow 2% sampling error.
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn exponential_from_mean_round_trips() {
        let d = Exponential::from_mean(250.0).unwrap();
        assert!((d.rate() - 0.004).abs() < 1e-12);
        assert!((d.mean() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_samples_positive() {
        let d = Exponential::new(5.0).unwrap();
        let mut r = rng();
        assert!(d.sample_n(&mut r, 10_000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uniform_rejects_inverted_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_samples_in_bounds() {
        let d = Uniform::new(10.0, 20.0).unwrap();
        let mut r = rng();
        for _ in 0..5000 {
            let x = d.sample(&mut r);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_rejects_out_of_range() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng();
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut r)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[1.0, -1.0]).is_err());
        assert!(WeightedIndex::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn weighted_index_proportions() {
        let d = WeightedIndex::new(&[1.0, 3.0]).unwrap();
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn weighted_index_zero_weight_never_drawn() {
        let d = WeightedIndex::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut r = rng();
        assert!((0..10_000).all(|_| d.sample(&mut r) == 1));
    }

    #[test]
    fn constant_returns_value() {
        let mut r = rng();
        assert_eq!(Constant(3.25).sample(&mut r), 3.25);
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(Pareto::new(0.0, 1.5).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
        assert!(Pareto::new(f64::NAN, 2.0).is_err());
        assert!(Pareto::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pareto_from_mean_requires_shape_above_one() {
        assert!(Pareto::from_mean(100.0, 1.0).is_err());
        assert!(Pareto::from_mean(100.0, 0.5).is_err());
        assert!(Pareto::from_mean(-1.0, 2.5).is_err());
        let d = Pareto::from_mean(100.0, 2.5).unwrap();
        assert!((d.mean() - 100.0).abs() < 1e-9, "mean {}", d.mean());
    }

    #[test]
    fn pareto_samples_at_least_scale() {
        let d = Pareto::new(7.0, 1.8).unwrap();
        let mut r = rng();
        assert!(d.sample_n(&mut r, 10_000).iter().all(|&x| x >= 7.0));
    }

    #[test]
    fn pareto_infinite_mean_below_shape_one() {
        let d = Pareto::new(1.0, 0.9).unwrap();
        assert!(d.mean().is_infinite());
    }
}
