//! A minimal, deterministic discrete-event simulation engine.
//!
//! The engine is a priority queue of timestamped events of a user-chosen
//! type `E`, popped in time order. Ties are broken by insertion order, so a
//! run is fully deterministic given the same schedule calls.
//!
//! The engine deliberately does *not* own the model state or the RNG; the
//! caller drives the loop, which keeps borrow-checking simple and makes the
//! control flow of experiments explicit:
//!
//! ```
//! use drqos_sim::engine::Simulator;
//! use drqos_sim::time::SimTime;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Stop }
//!
//! let mut sim = Simulator::new();
//! sim.schedule(SimTime::new(1.0), Ev::Tick);
//! sim.schedule(SimTime::new(2.0), Ev::Stop);
//!
//! let mut ticks = 0;
//! while let Some((t, ev)) = sim.pop() {
//!     match ev {
//!         Ev::Tick => {
//!             ticks += 1;
//!             sim.schedule_in(0.5, Ev::Tick);
//!         }
//!         Ev::Stop => break,
//!     }
//!     assert!(t <= sim.now());
//! }
//! assert_eq!(ticks, 2); // at t = 1.0 and 1.5; Stop pops before the tick rescheduled at 2.0
//! ```

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event pending in the queue (internal representation).
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        // Sequence number breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator over events of type `E`.
#[derive(Debug)]
pub struct Simulator<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
    }

    /// Schedules `event` `delay` seconds after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let next = self.queue.pop()?;
        self.now = next.time;
        self.processed += 1;
        Some((next.time, next.event))
    }

    /// Peeks at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.time)
    }

    /// Discards all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(3.0), "c");
        sim.schedule(SimTime::new(1.0), "a");
        sim.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulator::new();
        let t = SimTime::new(1.0);
        sim.schedule(t, 1);
        sim.schedule(t, 2);
        sim.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(5.0), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.pop();
        assert_eq!(sim.now(), SimTime::new(5.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(10.0), "first");
        sim.pop();
        sim.schedule_in(2.5, "second");
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, SimTime::new(12.5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(10.0), ());
        sim.pop();
        sim.schedule(SimTime::new(5.0), ());
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn negative_delay_panics() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_in(-1.0, ());
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(1.0), ());
        sim.schedule(SimTime::new(2.0), ());
        assert_eq!(sim.pending(), 2);
        assert!(!sim.is_idle());
        sim.pop();
        assert_eq!(sim.processed(), 1);
        assert_eq!(sim.pending(), 1);
        sim.clear();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::new(4.0), ());
        assert_eq!(sim.peek_time(), Some(SimTime::new(4.0)));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn empty_pop_returns_none() {
        let mut sim: Simulator<u8> = Simulator::new();
        assert!(sim.pop().is_none());
        assert!(sim.peek_time().is_none());
    }
}
