//! Online statistics for simulation output analysis.
//!
//! * [`Welford`] — numerically stable running mean/variance of i.i.d.
//!   samples, with a normal-approximation confidence interval.
//! * [`TimeWeighted`] — the time-weighted average of a piecewise-constant
//!   signal (e.g. "bandwidth currently reserved"), the estimator the paper's
//!   simulation uses for average bandwidth.
//! * [`Histogram`] — fixed-width binning for distribution shape checks.
//! * [`Counter`] — a labelled tally of discrete outcomes.

use crate::time::SimTime;

/// Welford's online algorithm for mean and variance.
///
/// # Examples
///
/// ```
/// use drqos_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval for the mean.
    ///
    /// Uses the normal approximation (`1.96 · SE`), which is adequate for the
    /// sample sizes the experiments produce (thousands of events).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Feed it the signal's value whenever the value *changes*; the accumulator
/// integrates value·dt between updates.
///
/// # Examples
///
/// ```
/// use drqos_sim::stats::TimeWeighted;
/// use drqos_sim::time::SimTime;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::new(1.0), 10.0); // signal was 0 on [0,1)
/// tw.update(SimTime::new(3.0), 0.0);  // signal was 10 on [1,3)
/// assert_eq!(tw.mean_until(SimTime::new(3.0)), 20.0 / 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    start: SimTime,
    last_time: SimTime,
    last_value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial signal `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        Self {
            start,
            last_time: start,
            last_value: value,
            integral: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_time,
            "TimeWeighted updates must be in time order"
        );
        self.integral += self.last_value * (now - self.last_time);
        self.last_time = now;
        self.last_value = value;
    }

    /// The integral of the signal from start until `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn integral_until(&self, now: SimTime) -> f64 {
        assert!(now >= self.last_time, "cannot integrate into the past");
        self.integral + self.last_value * (now - self.last_time)
    }

    /// The time-weighted mean over `[start, now]`, or the current value if
    /// no time has elapsed.
    pub fn mean_until(&self, now: SimTime) -> f64 {
        let elapsed = now - self.start;
        if elapsed <= 0.0 {
            self.last_value
        } else {
            self.integral_until(now) / elapsed
        }
    }

    /// The most recently recorded signal value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Resets the integration window to begin at `now` with the current value.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.last_time = now;
        self.integral = 0.0;
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range tails.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram requires lo < hi");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// All bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The fraction of in-range observations in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.count as f64
        }
    }
}

/// A small labelled tally of discrete outcomes (accepted / rejected / ...).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counter {
    entries: Vec<(String, u64)>,
}

impl Counter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `label` by one.
    pub fn bump(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Increments `label` by `n`.
    pub fn add(&mut self, label: &str, n: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(l, _)| l == label) {
            e.1 += n;
        } else {
            self.entries.push((label.to_string(), n));
        }
    }

    /// The current count for `label` (zero if never bumped).
    pub fn get(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, n)| *n)
    }

    /// Iterates over `(label, count)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(l, n)| (l.as_str(), *n))
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.mean(), 5.0);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_single_sample() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    /// Pins the count < 2 behaviour: a naive `m2 / (count - 1)` underflows
    /// the unsigned count (or yields NaN) for 0 or 1 samples. All three
    /// spread statistics must be exactly 0.0 — finite, not NaN — so CSV
    /// exports and assertions downstream never see poisoned values.
    #[test]
    fn welford_spread_is_zero_below_two_samples() {
        let mut w = Welford::new();
        for expected_count in [0u64, 1] {
            assert_eq!(w.count(), expected_count);
            assert_eq!(w.variance(), 0.0, "count {expected_count}");
            assert_eq!(w.std_dev(), 0.0, "count {expected_count}");
            assert_eq!(w.ci95_half_width(), 0.0, "count {expected_count}");
            assert!(w.variance().is_finite() && w.ci95_half_width().is_finite());
            w.push(42.0);
        }
        // Past the guard, spread becomes meaningful: samples are now
        // {42, 42, 44}, whose unbiased variance is 8/3 / 2 = 4/3.
        w.push(44.0);
        assert!((w.variance() - 4.0 / 3.0).abs() < 1e-12);
        assert!(w.ci95_half_width() > 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut w = Welford::new();
        for i in 0..100 {
            w.push((i % 10) as f64);
        }
        let wide = w.ci95_half_width();
        for i in 0..10_000 {
            w.push((i % 10) as f64);
        }
        assert!(w.ci95_half_width() < wide);
    }

    #[test]
    fn time_weighted_constant_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 5.0);
        tw.update(SimTime::new(10.0), 5.0);
        assert_eq!(tw.mean_until(SimTime::new(10.0)), 5.0);
    }

    #[test]
    fn time_weighted_step_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::new(2.0), 6.0);
        // 0 on [0,2), 6 on [2,4) → mean = 12/4 = 3
        assert_eq!(tw.mean_until(SimTime::new(4.0)), 3.0);
    }

    #[test]
    fn time_weighted_zero_elapsed_returns_current() {
        let tw = TimeWeighted::new(SimTime::new(1.0), 9.0);
        assert_eq!(tw.mean_until(SimTime::new(1.0)), 9.0);
    }

    #[test]
    fn time_weighted_reset_starts_fresh() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 100.0);
        tw.update(SimTime::new(5.0), 1.0);
        tw.reset(SimTime::new(5.0));
        assert_eq!(tw.mean_until(SimTime::new(10.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn time_weighted_rejects_backwards_update() {
        let mut tw = TimeWeighted::new(SimTime::new(5.0), 0.0);
        tw.update(SimTime::new(1.0), 1.0);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0] {
            h.push(x);
        }
        assert_eq!(h.bin(0), 2); // 0.5, 1.5
        assert_eq!(h.bin(1), 1); // 2.5
        assert_eq!(h.bin(4), 1); // 9.9
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.25);
        h.push(0.75);
        h.push(0.80);
        assert!((h.fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn counter_tallies() {
        let mut c = Counter::new();
        c.bump("accepted");
        c.bump("accepted");
        c.add("rejected", 3);
        assert_eq!(c.get("accepted"), 2);
        assert_eq!(c.get("rejected"), 3);
        assert_eq!(c.get("never"), 0);
        assert_eq!(c.total(), 5);
        let labels: Vec<&str> = c.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["accepted", "rejected"]);
    }
}
