//! Seeded churn driver for shared-risk link groups (SRLGs).
//!
//! A shared-risk group models links that fail *together* — fibres in one
//! conduit, a transit domain behind one provider. The driver emits a
//! deterministic, seeded stream of correlated fail/repair events over
//! `groups` group indices: each group alternates between up (exponential
//! time-to-failure) and down (exponential time-to-repair), and the merged
//! stream is ordered by event time with ties broken by group index.
//!
//! The driver is deliberately ignorant of what a group *contains* — it
//! deals in indices so `drqos-sim` stays independent of the network
//! layer; `drqos-core`'s scenario engine maps indices onto registered
//! SRLGs.
//!
//! # Examples
//!
//! ```
//! use drqos_sim::srlg::{SrlgChurn, SrlgEvent};
//!
//! let mut churn = SrlgChurn::new(2, 500.0, 100.0, 7).unwrap();
//! let (t, ev) = churn.next_event().unwrap();
//! assert!(t > 0.0);
//! assert!(matches!(ev, SrlgEvent::Fail(_)));
//! ```

use crate::dist::{Distribution, Exponential, InvalidParameter};
use crate::rng::Rng;

/// One correlated-failure event: the indexed group fails or recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrlgEvent {
    /// Every link in the group goes down atomically.
    Fail(usize),
    /// Every link in the group comes back.
    Repair(usize),
}

/// Deterministic alternating fail/repair stream over `groups` SRLGs.
#[derive(Debug, Clone)]
pub struct SrlgChurn {
    rng: Rng,
    up_time: Exponential,
    down_time: Exponential,
    /// Per-group next event, as `(time, event)`; each group always has
    /// exactly one pending event.
    pending: Vec<(f64, SrlgEvent)>,
}

impl SrlgChurn {
    /// Creates a churn driver over `groups` SRLGs with the given mean up
    /// (time-to-failure) and down (time-to-repair) durations, seeded.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameter`] if either mean is not finite and
    /// positive, or `groups` is zero.
    pub fn new(
        groups: usize,
        mean_up: f64,
        mean_down: f64,
        seed: u64,
    ) -> Result<Self, InvalidParameter> {
        if groups == 0 {
            return Err(InvalidParameter::new("SRLG churn needs at least one group"));
        }
        let up_time = Exponential::from_mean(mean_up)?;
        let down_time = Exponential::from_mean(mean_down)?;
        let mut rng = Rng::seed_from_u64(seed);
        let pending = (0..groups)
            .map(|g| (up_time.sample(&mut rng), SrlgEvent::Fail(g)))
            .collect();
        Ok(Self {
            rng,
            up_time,
            down_time,
            pending,
        })
    }

    /// Number of groups being churned.
    pub fn groups(&self) -> usize {
        self.pending.len()
    }

    /// The time of the next event without consuming it.
    pub fn peek_time(&self) -> Option<f64> {
        self.next_index().map(|i| self.pending[i].0)
    }

    /// Pops the next `(time, event)` and schedules the group's opposite
    /// transition after a freshly drawn exponential delay.
    pub fn next_event(&mut self) -> Option<(f64, SrlgEvent)> {
        let i = self.next_index()?;
        let (time, event) = self.pending[i];
        let (delay, next) = match event {
            SrlgEvent::Fail(g) => (self.down_time.sample(&mut self.rng), SrlgEvent::Repair(g)),
            SrlgEvent::Repair(g) => (self.up_time.sample(&mut self.rng), SrlgEvent::Fail(g)),
        };
        self.pending[i] = (time + delay, next);
        Some((time, event))
    }

    /// Index of the earliest pending event; ties resolve to the lowest
    /// group index because the scan runs in group order.
    fn next_index(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (t, _)) in self.pending.iter().enumerate() {
            if best.is_none_or(|b| *t < self.pending[b].0) {
                best = Some(i);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(SrlgChurn::new(0, 100.0, 10.0, 1).is_err());
        assert!(SrlgChurn::new(2, 0.0, 10.0, 1).is_err());
        assert!(SrlgChurn::new(2, 100.0, -1.0, 1).is_err());
    }

    #[test]
    fn events_alternate_per_group() {
        let mut churn = SrlgChurn::new(1, 100.0, 20.0, 3).unwrap();
        let mut expect_fail = true;
        for _ in 0..50 {
            let (_, ev) = churn.next_event().unwrap();
            match ev {
                SrlgEvent::Fail(0) => assert!(expect_fail),
                SrlgEvent::Repair(0) => assert!(!expect_fail),
                other => panic!("unexpected group in {other:?}"),
            }
            expect_fail = !expect_fail;
        }
    }

    #[test]
    fn stream_is_time_ordered_and_deterministic() {
        let drain = |seed: u64| {
            let mut churn = SrlgChurn::new(3, 200.0, 40.0, seed).unwrap();
            (0..100)
                .map(|_| churn.next_event().unwrap())
                .collect::<Vec<_>>()
        };
        let a = drain(11);
        let b = drain(11);
        assert_eq!(a, b, "same seed must replay byte-identically");
        assert!(
            a.windows(2).all(|w| w[0].0 <= w[1].0),
            "non-decreasing time"
        );
        assert_ne!(a, drain(12), "different seeds must differ");
    }

    #[test]
    fn peek_matches_pop() {
        let mut churn = SrlgChurn::new(4, 100.0, 10.0, 9).unwrap();
        for _ in 0..40 {
            let peeked = churn.peek_time().unwrap();
            let (t, _) = churn.next_event().unwrap();
            assert_eq!(peeked, t);
        }
    }

    #[test]
    fn all_groups_eventually_fail() {
        let mut churn = SrlgChurn::new(5, 100.0, 10.0, 21).unwrap();
        let mut seen = [false; 5];
        for _ in 0..200 {
            if let Some((_, SrlgEvent::Fail(g))) = churn.next_event() {
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }
}
