//! Deterministic pseudo-random number generation.
//!
//! The simulation experiments in this workspace must be exactly reproducible
//! across runs and platforms, so we implement a small, well-known generator
//! in-repo instead of depending on an external crate whose stream could
//! change between versions:
//!
//! * [`SplitMix64`] — used to expand a single `u64` seed into the larger
//!   state required by the main generator (this is the construction
//!   recommended by the xoshiro authors).
//! * [`Rng`] — xoshiro256++, a fast all-purpose generator with 256 bits of
//!   state and excellent statistical quality.
//!
//! # Examples
//!
//! ```
//! use drqos_sim::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//!
//! // The stream is deterministic: the same seed yields the same values.
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(rng.clone_state(), {
//!     again.next_f64();
//!     again.clone_state()
//! });
//! ```

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator.
///
/// Primarily used to seed [`Rng`]; it is also a valid (if statistically
/// weaker) generator in its own right, handy for tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++.
///
/// All simulation code takes `&mut Rng` explicitly — there is no global or
/// thread-local generator — so every experiment is reproducible from its
/// seed alone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator by expanding `seed` with [`SplitMix64`].
    ///
    /// Any seed is acceptable, including zero.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator directly from 256 bits of state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros, which is the one invalid xoshiro
    /// state (the generator would emit zeros forever).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }

    /// Returns a copy of the internal state, for checkpointing.
    pub fn clone_state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 bits of
    /// precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for `ln()`-based transforms that cannot accept zero.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(slice.len())])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator from this one.
    ///
    /// Forking advances this generator's stream, so a fork followed by the
    /// parent's continued use never replays outputs.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_open_interval_excludes_zero() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_unbiased_small_bound() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.range_u64(5) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 5;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn range_u64_respects_bound() {
        let mut rng = Rng::seed_from_u64(5);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.range_u64(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_u64_zero_bound_panics() {
        Rng::seed_from_u64(0).range_u64(0);
    }

    #[test]
    fn range_f64_within_bounds() {
        let mut rng = Rng::seed_from_u64(21);
        for _ in 0..1000 {
            let x = rng.range_f64(-3.0, 7.5);
            assert!((-3.0..7.5).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(1);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
    }

    #[test]
    fn choose_singleton() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(13);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..50).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..50).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        Rng::from_state([0; 4]);
    }
}
