//! # drqos-sim
//!
//! A small, deterministic discrete-event simulation toolkit: the substrate
//! for the "detailed simulations" the paper uses to obtain its Markov-model
//! parameters.
//!
//! * [`rng`] — reproducible pseudo-random numbers (xoshiro256++), no global
//!   state, explicit seeding.
//! * [`dist`] — exponential / uniform / Bernoulli / weighted variates.
//! * [`time`] — validated virtual time ([`time::SimTime`]).
//! * [`engine`] — the event queue ([`engine::Simulator`]).
//! * [`srlg`] — seeded correlated-failure (shared-risk link group) churn.
//! * [`stats`] — Welford, time-weighted averages, histograms, counters.
//!
//! # Example: an M/M/∞ arrival process
//!
//! ```
//! use drqos_sim::dist::{Distribution, Exponential};
//! use drqos_sim::engine::Simulator;
//! use drqos_sim::rng::Rng;
//! use drqos_sim::time::SimTime;
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let arrivals = Exponential::new(1.0)?;
//! let holding = Exponential::new(0.5)?;
//!
//! let mut sim = Simulator::new();
//! sim.schedule(SimTime::ZERO + arrivals.sample(&mut rng), Ev::Arrival);
//!
//! let mut active = 0i64;
//! let mut peak = 0i64;
//! while let Some((_, ev)) = sim.pop() {
//!     match ev {
//!         Ev::Arrival => {
//!             active += 1;
//!             peak = peak.max(active);
//!             sim.schedule_in(holding.sample(&mut rng), Ev::Departure);
//!             if sim.processed() < 1000 {
//!                 sim.schedule_in(arrivals.sample(&mut rng), Ev::Arrival);
//!             }
//!         }
//!         Ev::Departure => active -= 1,
//!     }
//! }
//! assert!(peak > 0);
//! # Ok::<(), drqos_sim::dist::InvalidParameter>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod rng;
pub mod srlg;
pub mod stats;
pub mod time;

pub use dist::{Distribution, Exponential};
pub use engine::Simulator;
pub use rng::Rng;
pub use stats::{Counter, Histogram, TimeWeighted, Welford};
pub use time::SimTime;
