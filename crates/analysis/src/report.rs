//! Plain-text table rendering for the experiment binaries.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; this tiny formatter keeps their output aligned and
//! consistent without pulling in a table crate.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimals, rendering NaN as
/// `"n/a"` (used when a model could not be solved for a data point).
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

/// A terminal line chart: multiple y-series over a shared x-axis, each
/// drawn with its own glyph — enough to eyeball the *shape* of a figure
/// (who is above whom, where curves bend) straight from a bench run.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    height: usize,
    series: Vec<(char, Vec<f64>)>,
    y_min: Option<f64>,
    y_max: Option<f64>,
}

impl AsciiChart {
    /// Creates a chart `height` rows tall.
    ///
    /// # Panics
    ///
    /// Panics if `height < 2`.
    pub fn new(height: usize) -> Self {
        assert!(height >= 2, "chart needs at least two rows");
        Self {
            height,
            series: Vec::new(),
            y_min: None,
            y_max: None,
        }
    }

    /// Fixes the y-axis range instead of auto-scaling.
    pub fn y_range(mut self, min: f64, max: f64) -> Self {
        assert!(min < max, "y range requires min < max");
        self.y_min = Some(min);
        self.y_max = Some(max);
        self
    }

    /// Adds a series drawn with `glyph`. NaN points are skipped.
    pub fn series(mut self, glyph: char, values: &[f64]) -> Self {
        self.series.push((glyph, values.to_vec()));
        self
    }

    /// Renders the chart (empty string when no finite data).
    pub fn render(&self) -> String {
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            return String::new();
        }
        let lo = self
            .y_min
            .unwrap_or_else(|| finite.iter().copied().fold(f64::INFINITY, f64::min));
        let hi = self
            .y_max
            .unwrap_or_else(|| finite.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let width = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut grid = vec![vec![' '; width * 2]; self.height];
        for (glyph, values) in &self.series {
            for (x, &v) in values.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let frac = ((v - lo) / span).clamp(0.0, 1.0);
                let row = ((1.0 - frac) * (self.height - 1) as f64).round() as usize;
                grid[row][x * 2] = *glyph;
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{hi:>8.0} |")
            } else if i == self.height - 1 {
                format!("{lo:>8.0} |")
            } else {
                "         |".to_string()
            };
            out.push_str(&label);
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str("         +");
        out.push_str(&"-".repeat(width * 2));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["n", "value"]);
        t.row(["1", "10.0"]);
        t.row(["100", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("n"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("10.0"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn tracks_length() {
        let mut t = TextTable::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn fmt_f64_handles_nan() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "n/a");
        assert_eq!(fmt_f64(0.0, 0), "0");
    }

    #[test]
    fn chart_renders_extremes_on_first_and_last_rows() {
        let chart = AsciiChart::new(5).series('*', &[0.0, 10.0]);
        let s = chart.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6); // 5 rows + axis
        assert!(lines[0].contains('*'), "max on top row: {s}");
        assert!(lines[4].contains('*'), "min on bottom row: {s}");
        assert!(lines[5].starts_with("         +"));
    }

    #[test]
    fn chart_fixed_range_clamps() {
        let chart = AsciiChart::new(4)
            .y_range(0.0, 100.0)
            .series('x', &[500.0, -3.0]);
        let s = chart.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('x'));
        assert!(lines[3].contains('x'));
        assert!(lines[0].contains("100"));
        assert!(lines[3].contains('0'));
    }

    #[test]
    fn chart_skips_nan_and_handles_empty() {
        let chart = AsciiChart::new(3).series('o', &[f64::NAN]);
        assert_eq!(chart.render(), "");
        let chart = AsciiChart::new(3).series('o', &[1.0, f64::NAN, 2.0]);
        let s = chart.render();
        assert_eq!(s.matches('o').count(), 2);
    }

    #[test]
    fn chart_multiple_series_share_axes() {
        let s = AsciiChart::new(4)
            .series('a', &[1.0, 2.0])
            .series('b', &[3.0, 4.0])
            .render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn chart_too_short_panics() {
        AsciiChart::new(1);
    }
}
