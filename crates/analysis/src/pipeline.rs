//! One-call experiment pipeline: simulate → measure → model → compare.
//!
//! Every data point of the paper's figures is produced the same way:
//! run a churn simulation at some load, measure the transition parameters,
//! solve the Markov model built from them, and put the simulated average,
//! the analytic average, and the ideal reference side by side. This module
//! packages that sequence for the bench binaries and examples.

use crate::ideal;
use crate::model::{ElasticQosModel, EventRates};
use drqos_core::experiment::{run_churn, ExperimentConfig, ExperimentReport};
use drqos_core::network::Network;
use drqos_core::scenario::{run_scenario_churn, Scenario};
use drqos_topology::graph::Graph;
use drqos_topology::metrics;

/// Simulation, model, and reference outputs for one experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentAnalysis {
    /// The simulation's own report (ground truth).
    pub report: ExperimentReport,
    /// Average bandwidth predicted by the Markov model, in Kbps
    /// (`None` if no parameters were measured or the chain degenerated).
    pub analytic_avg: Option<f64>,
    /// The ideal average bandwidth (clamped to the QoS range), in Kbps.
    pub ideal_avg: f64,
    /// Edges in the topology (the paper's Figure 3 plots this).
    pub edges: usize,
    /// The final network state, for further inspection.
    pub network: Network,
}

impl ExperimentAnalysis {
    /// Absolute analytic − simulated gap in Kbps, if the model solved.
    pub fn model_error(&self) -> Option<f64> {
        self.analytic_avg
            .map(|a| (a - self.report.avg_bandwidth_sim).abs())
    }
}

/// Runs one experiment point on `graph`.
///
/// The graph is consumed (the network takes ownership); topology statistics
/// needed for the ideal reference are computed before the run.
pub fn analyze(graph: Graph, config: &ExperimentConfig) -> ExperimentAnalysis {
    let edges = graph.link_count();
    let (report, network) = run_churn(graph, config);
    assemble(report, network, edges, config)
}

/// Runs one experiment point under an adversarial [`Scenario`]: same
/// measure → model → compare pipeline as [`analyze`], but the simulation
/// leg is [`run_scenario_churn`]. The Markov model still assumes the
/// paper's calibrated regime, so the analytic column quantifies how far
/// each scenario pushes reality away from the model's world — the
/// divergence the scenario sweep reports per scenario.
pub fn analyze_scenario(
    graph: Graph,
    config: &ExperimentConfig,
    scenario: &Scenario,
) -> ExperimentAnalysis {
    let edges = graph.link_count();
    let (report, network) = run_scenario_churn(graph, config, scenario);
    assemble(report, network, edges, config)
}

/// The shared measure → model → compare tail of [`analyze`] and
/// [`analyze_scenario`].
fn assemble(
    report: ExperimentReport,
    network: Network,
    edges: usize,
    config: &ExperimentConfig,
) -> ExperimentAnalysis {
    let rates = EventRates {
        lambda: config.lambda,
        mu: config.lambda,
        gamma: config.gamma,
    };
    let analytic_avg = report.params.as_ref().and_then(|params| {
        ElasticQosModel::new(config.qos, params, rates)
            .and_then(|m| m.average_bandwidth())
            .ok()
    });
    // The ideal line divides all resources among the *active* channels
    // using their measured average route length.
    let avg_hops = if report.avg_path_hops > 0.0 {
        report.avg_path_hops
    } else {
        metrics::average_hop_count(network.graph()).unwrap_or(1.0)
    };
    let ideal_avg = ideal::ideal_clamped(
        config.network.capacity,
        edges,
        report.active_end.max(1),
        avg_hops,
        &config.qos,
    );
    ExperimentAnalysis {
        report,
        analytic_avg,
        ideal_avg,
        edges,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_sim::rng::Rng;
    use drqos_topology::waxman;

    fn graph(seed: u64) -> Graph {
        waxman::paper_waxman(30)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap()
    }

    fn config(target: usize) -> ExperimentConfig {
        ExperimentConfig {
            churn_events: 400,
            ..ExperimentConfig::paper_default(target, 100)
        }
    }

    #[test]
    fn produces_all_three_series() {
        let a = analyze(graph(1), &config(60));
        assert!(a.report.accepted > 0);
        assert!(a.analytic_avg.is_some());
        assert!((100.0..=500.0).contains(&a.ideal_avg));
        assert!(a.edges > 0);
        assert!(a.model_error().is_some());
        a.network.validate();
    }

    #[test]
    fn analytic_tracks_simulation() {
        // The paper's headline claim: the model "accurately represents the
        // behavior of DR-connections". Allow a generous tolerance at this
        // tiny scale — the benches verify the full-size match.
        let a = analyze(graph(2), &config(80));
        let sim = a.report.avg_bandwidth_sim;
        let model = a.analytic_avg.expect("model solved");
        assert!(
            (model - sim).abs() < 150.0,
            "model {model} vs simulation {sim}"
        );
    }

    #[test]
    fn light_load_all_three_agree_high() {
        let a = analyze(graph(3), &config(2));
        assert!(a.report.avg_bandwidth_sim > 450.0);
        assert_eq!(a.ideal_avg, 500.0);
        if let Some(m) = a.analytic_avg {
            assert!(m > 400.0, "analytic {m}");
        }
    }
}
