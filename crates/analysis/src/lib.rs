//! # drqos-analysis
//!
//! The analytic side of the paper: builds the elastic-QoS Markov chain from
//! parameters measured by `drqos-core`'s simulation, solves it with
//! `drqos-markov`, and compares the prediction against the simulated and
//! ideal averages.
//!
//! * [`model`] — [`model::ElasticQosModel`], the paper's Section 3.2 chain.
//! * [`ideal`] — the `BW·E / (N·avg_hops)` reference line of Figure 2.
//! * [`pipeline`] — [`pipeline::analyze`], one experiment point end to end.
//! * [`report`] — plain-text table rendering for the experiment binaries.
//!
//! # Example
//!
//! ```
//! use drqos_analysis::pipeline::analyze;
//! use drqos_core::experiment::ExperimentConfig;
//! use drqos_sim::rng::Rng;
//! use drqos_topology::waxman;
//!
//! let graph = waxman::paper_waxman(30)
//!     .generate(&mut Rng::seed_from_u64(7))
//!     .unwrap();
//! let mut config = ExperimentConfig::paper_default(40, 100);
//! config.churn_events = 200;
//! let point = analyze(graph, &config);
//! // Simulated, analytic, and ideal averages all live in the QoS range.
//! assert!(point.report.avg_bandwidth_sim >= 100.0);
//! assert!(point.ideal_avg <= 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ideal;
pub mod model;
pub mod pipeline;
pub mod report;

pub use model::{ElasticQosModel, EventRates, ModelError};
pub use pipeline::{analyze, ExperimentAnalysis};
