//! The paper's analytic model (Section 3.2): a CTMC over the bandwidth
//! levels of a single primary channel.
//!
//! Transition rates between level `i` and level `j ≠ i`:
//!
//! * downward mass from `A` (directly-chained channels hit by an arrival):
//!   `P_f · A_ij · λ`;
//! * downward mass from `F` (channels retreating for a backup activation):
//!   `P_f^fault · F_ij · γ`;
//! * upward mass from `B` (indirectly-chained channels on an arrival):
//!   `P_s · B_ij · λ`;
//! * upward mass from `T` (directly-chained channels on a termination):
//!   `P_f · T_ij · μ`.
//!
//! With γ = 0 this is exactly the paper's chain. For γ > 0 the paper reuses
//! the *arrival* incidence `P_f` for the failure term (`P_f·A_ij·(λ+γ)`);
//! we use the measured failure-specific incidence instead, which keeps the
//! model in agreement with the simulation over the whole γ range of
//! Figure 4 (see `ParameterEstimator::record_failure`).
//!
//! The paper draws `A` strictly below the diagonal and `B`/`T` strictly
//! above; we place each measured matrix's full off-diagonal mass into the
//! generator, which reduces to the paper's chain when the measurements have
//! the paper's structure and remains well-defined when rare counter-flow
//! transitions are observed (e.g. a retreated channel re-climbing past its
//! old level within the same re-distribution).

use drqos_core::measure::MeasuredParams;
use drqos_core::qos::ElasticQos;
use drqos_markov::ctmc::{Ctmc, CtmcBuilder};
use drqos_markov::error::MarkovError;
use drqos_markov::steady_state::{self, SteadyState};
use std::fmt;

/// Rates of the three event processes driving the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRates {
    /// DR-connection request arrival rate λ.
    pub lambda: f64,
    /// DR-connection termination rate μ (steady state assumes μ = λ).
    pub mu: f64,
    /// Link failure rate γ.
    pub gamma: f64,
}

impl EventRates {
    /// The paper's evaluation rates: λ = μ = 0.001 and the given γ.
    pub fn paper_default(gamma: f64) -> Self {
        Self {
            lambda: 0.001,
            mu: 0.001,
            gamma,
        }
    }
}

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The measured parameters failed their consistency check.
    InconsistentParams,
    /// The QoS level count does not match the measured matrices.
    StateMismatch {
        /// Levels in the QoS range.
        qos: usize,
        /// States in the measurement.
        measured: usize,
    },
    /// A rate was negative or non-finite.
    InvalidRate(f64),
    /// The underlying chain could not be solved.
    Solve(MarkovError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InconsistentParams => {
                write!(f, "measured parameters are inconsistent")
            }
            ModelError::StateMismatch { qos, measured } => write!(
                f,
                "QoS has {qos} levels but measurements cover {measured} states"
            ),
            ModelError::InvalidRate(r) => {
                write!(f, "event rates must be finite and non-negative, got {r}")
            }
            ModelError::Solve(e) => write!(f, "failed to solve the model chain: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for ModelError {
    fn from(e: MarkovError) -> Self {
        ModelError::Solve(e)
    }
}

/// The assembled elastic-QoS model: chain + QoS grid.
#[derive(Debug, Clone)]
pub struct ElasticQosModel {
    qos: ElasticQos,
    chain: Ctmc,
    /// States with at least one observed in- or out-transition. States
    /// outside this set never moved during measurement; they are excluded
    /// from the chain (they would otherwise be spurious absorbing states).
    active: Vec<usize>,
    /// Degenerate fallback when *no* transitions were observed at all: the
    /// occupancy-weighted mean bandwidth (the system simply sat still).
    occupancy_avg: Option<f64>,
    /// Observed level occupancy (all zeros when not recorded) — used to
    /// validate that the solved chain's recurrent class covers where the
    /// system actually lives.
    occupancy: Vec<f64>,
}

impl ElasticQosModel {
    /// Builds the model chain from measured parameters and event rates.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InconsistentParams`] if `params` fails its
    ///   consistency check.
    /// * [`ModelError::StateMismatch`] if `qos.num_levels()` differs from
    ///   `params.n_states`.
    /// * [`ModelError::InvalidRate`] if any event rate is negative or
    ///   non-finite.
    pub fn new(
        qos: ElasticQos,
        params: &MeasuredParams,
        rates: EventRates,
    ) -> Result<Self, ModelError> {
        if !params.is_consistent() {
            return Err(ModelError::InconsistentParams);
        }
        if qos.num_levels() != params.n_states {
            return Err(ModelError::StateMismatch {
                qos: qos.num_levels(),
                measured: params.n_states,
            });
        }
        for r in [rates.lambda, rates.mu, rates.gamma] {
            if !r.is_finite() || r < 0.0 {
                return Err(ModelError::InvalidRate(r));
            }
        }
        let n = params.n_states;
        let mut rate_matrix = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                rate_matrix[i * n + j] = params.pf * params.a[i][j] * rates.lambda
                    + params.pf_fault * params.f[i][j] * rates.gamma
                    + params.ps * params.b[i][j] * rates.lambda
                    + params.pf * params.t[i][j] * rates.mu;
            }
        }
        // Keep only states that participate in some transition; untouched
        // states carry no dynamics and would otherwise appear absorbing.
        let active: Vec<usize> = (0..n)
            .filter(|&i| {
                (0..n).any(|j| rate_matrix[i * n + j] > 0.0 || rate_matrix[j * n + i] > 0.0)
            })
            .collect();
        let mut builder = CtmcBuilder::new(active.len().max(1));
        for (ai, &i) in active.iter().enumerate() {
            for (aj, &j) in active.iter().enumerate() {
                let r = rate_matrix[i * n + j];
                if r > 0.0 {
                    builder = builder.rate(ai, aj, r).map_err(ModelError::Solve)?;
                }
            }
        }
        let occupancy_avg = params
            .occupancy_mean_level()
            .map(|mean_level| qos.min().as_kbps_f64() + mean_level * qos.increment().as_kbps_f64());
        Ok(Self {
            qos,
            chain: builder.build()?,
            active,
            occupancy_avg,
            occupancy: params.occupancy.clone(),
        })
    }

    /// The underlying CTMC (over the *active* states only; see
    /// [`ElasticQosModel::active_states`]).
    pub fn chain(&self) -> &Ctmc {
        &self.chain
    }

    /// The original level indices of the chain's states.
    pub fn active_states(&self) -> &[usize] {
        &self.active
    }

    /// The QoS grid the states map onto.
    pub fn qos(&self) -> &ElasticQos {
        &self.qos
    }

    /// Solves for the stationary level distribution over all `N` levels
    /// (GTH on the recurrent class of the active sub-chain; inactive and
    /// transient levels get probability zero).
    ///
    /// # Errors
    ///
    /// * [`ModelError::Solve`] with [`MarkovError::Empty`] if no
    ///   transitions were observed at all (use
    ///   [`ElasticQosModel::average_bandwidth`], which falls back to
    ///   occupancy).
    /// * [`ModelError::Solve`] if the active chain has multiple closed
    ///   recurrent classes (degenerate measurements).
    pub fn steady_state(&self) -> Result<SteadyState, ModelError> {
        if self.active.is_empty() {
            return Err(ModelError::Solve(MarkovError::Empty));
        }
        Ok(steady_state::solve(&self.chain)?)
    }

    /// The model's headline output: the expected bandwidth reserved for a
    /// primary channel, `Σ_i π_i (B_min + i·Δ)`, in Kbps.
    ///
    /// When no transitions were observed (a load so light that nothing ever
    /// moved), the observed occupancy is returned instead — the stationary
    /// distribution of a frozen system is wherever it sits.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Solve`] if the chain degenerated and no
    /// occupancy was recorded either.
    pub fn average_bandwidth(&self) -> Result<f64, ModelError> {
        if self.active.is_empty() {
            return self
                .occupancy_avg
                .ok_or(ModelError::Solve(MarkovError::Empty));
        }
        let solved = self.steady_state();
        let ss = match solved {
            Ok(ss) => ss,
            // Multiple closed classes: sparse-measurement degeneracy. Fall
            // back to occupancy when available.
            Err(e) => {
                return self.occupancy_avg.ok_or(e);
            }
        };
        // Coverage check: the recurrent class must contain the bulk of the
        // observed occupancy, or the sparse measurement led the chain to a
        // corner the real system rarely visits (seen at very light loads,
        // where transitions are rare events). Occupancy is the more direct
        // estimator there.
        let occ_total: f64 = self.occupancy.iter().sum();
        if occ_total > 0.0 {
            let covered: f64 = self
                .active
                .iter()
                .enumerate()
                .filter(|&(ai, _)| ss.prob(ai) > 1e-12)
                .map(|(_, &state)| self.occupancy[state])
                .sum();
            if covered / occ_total < 0.5 {
                if let Some(fallback) = self.occupancy_avg {
                    return Ok(fallback);
                }
            }
        }
        Ok(ss.expectation(|ai| self.qos.level_bandwidth(self.active[ai]).as_kbps_f64()))
    }

    /// Transient solution (uniformization): the distribution over all `N`
    /// levels a virtual time `t` after starting from `initial` (a
    /// distribution over levels — e.g. all mass on level 0 right after a
    /// retreat). Levels outside the active set keep their initial mass
    /// (they have no dynamics).
    ///
    /// This is the "can be expanded" item from the paper's conclusion: it
    /// predicts how quickly a channel recovers its QoS after a disturbance.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateMismatch`] if `initial` has the wrong length.
    /// * [`ModelError::InvalidRate`] if `t` is negative or non-finite.
    /// * [`ModelError::Solve`] if the distribution restricted to active
    ///   states is empty or the solver fails.
    pub fn transient_levels(&self, initial: &[f64], t: f64) -> Result<Vec<f64>, ModelError> {
        let n = self.qos.num_levels();
        if initial.len() != n {
            return Err(ModelError::StateMismatch {
                qos: n,
                measured: initial.len(),
            });
        }
        if self.active.is_empty() {
            // No dynamics at all: the distribution is frozen.
            return Ok(initial.to_vec());
        }
        let sub_initial: Vec<f64> = self.active.iter().map(|&i| initial[i]).collect();
        let sub_mass: f64 = sub_initial.iter().sum();
        if sub_mass <= 0.0 {
            return Err(ModelError::Solve(MarkovError::Singular));
        }
        let evolved = drqos_markov::transient::transient(&self.chain, &sub_initial, t, 1e-10)?;
        let mut out = initial.to_vec();
        for (&state, _) in self.active.iter().zip(&evolved) {
            out[state] = 0.0;
        }
        for (&state, &p) in self.active.iter().zip(&evolved) {
            out[state] = p * sub_mass;
        }
        Ok(out)
    }

    /// The expected time for a channel at level `from` to first reach
    /// level `to` (e.g. from a post-retreat minimum back to full quality).
    /// Returns `f64::INFINITY` when the chain cannot make the trip.
    ///
    /// # Errors
    ///
    /// * [`ModelError::StateMismatch`] if either level is out of range.
    /// * [`ModelError::Solve`] if either level had no observed dynamics
    ///   (not represented in the chain) or the solve fails.
    pub fn mean_passage_time(&self, from: usize, to: usize) -> Result<f64, ModelError> {
        let n = self.qos.num_levels();
        if from >= n || to >= n {
            return Err(ModelError::StateMismatch {
                qos: n,
                measured: from.max(to),
            });
        }
        let from_idx = self
            .active
            .iter()
            .position(|&s| s == from)
            .ok_or(ModelError::Solve(MarkovError::InvalidState(from)))?;
        let to_idx = self
            .active
            .iter()
            .position(|&s| s == to)
            .ok_or(ModelError::Solve(MarkovError::InvalidState(to)))?;
        let times = drqos_markov::hitting::mean_hitting_times(&self.chain, &[to_idx])?;
        Ok(times[from_idx])
    }

    /// The expected bandwidth a time `t` after starting from `initial`.
    ///
    /// # Errors
    ///
    /// See [`ElasticQosModel::transient_levels`].
    pub fn transient_average_bandwidth(&self, initial: &[f64], t: f64) -> Result<f64, ModelError> {
        let dist = self.transient_levels(initial, t)?;
        Ok(dist
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.qos.level_bandwidth(i).as_kbps_f64())
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::qos::Bandwidth;

    /// Hand-built parameters with the paper's structure: retreats to the
    /// bottom on arrival, single-increment climbs on termination.
    fn synthetic_params(n: usize, pf: f64, ps: f64) -> MeasuredParams {
        let mut a = vec![vec![0.0; n]; n];
        let mut b = vec![vec![0.0; n]; n];
        let mut t = vec![vec![0.0; n]; n];
        for i in 0..n {
            // Arrival: full retreat to level 0.
            a[i][0] = 1.0;
            // Indirect arrival: one step up (if possible).
            if i + 1 < n {
                b[i][i + 1] = 1.0;
                t[i][i + 1] = 1.0;
            } else {
                b[i][i] = 1.0;
                t[i][i] = 1.0;
            }
        }
        let f = a.clone();
        MeasuredParams {
            n_states: n,
            pf,
            ps,
            pf_fault: pf,
            a,
            b,
            t,
            f,
            occupancy: vec![1.0 / n as f64; n],
        }
    }

    fn qos5() -> ElasticQos {
        ElasticQos::paper_video(100)
    }

    #[test]
    fn builds_and_solves() {
        let params = synthetic_params(5, 0.3, 0.1);
        let model = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap();
        let avg = model.average_bandwidth().unwrap();
        assert!(
            (100.0..=500.0).contains(&avg),
            "average bandwidth {avg} out of the QoS range"
        );
    }

    #[test]
    fn stronger_contention_lowers_average() {
        let rates = EventRates::paper_default(0.0);
        let light = ElasticQosModel::new(qos5(), &synthetic_params(5, 0.05, 0.2), rates)
            .unwrap()
            .average_bandwidth()
            .unwrap();
        let heavy = ElasticQosModel::new(qos5(), &synthetic_params(5, 0.9, 0.02), rates)
            .unwrap()
            .average_bandwidth()
            .unwrap();
        assert!(
            heavy < light,
            "more direct chaining should depress bandwidth: {heavy} vs {light}"
        );
    }

    #[test]
    fn failure_rate_adds_downward_pressure() {
        let params = synthetic_params(5, 0.3, 0.1);
        let calm = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0))
            .unwrap()
            .average_bandwidth()
            .unwrap();
        let stormy = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.01))
            .unwrap()
            .average_bandwidth()
            .unwrap();
        assert!(
            stormy < calm,
            "γ should depress bandwidth: {stormy} vs {calm}"
        );
    }

    #[test]
    fn tiny_gamma_is_invisible() {
        // The paper's Figure 4: γ ≪ λ has no visible effect.
        let params = synthetic_params(9, 0.3, 0.1);
        let qos = ElasticQos::paper_video(50);
        let base = ElasticQosModel::new(qos, &params, EventRates::paper_default(0.0))
            .unwrap()
            .average_bandwidth()
            .unwrap();
        let tiny = ElasticQosModel::new(qos, &params, EventRates::paper_default(1e-7))
            .unwrap()
            .average_bandwidth()
            .unwrap();
        assert!((base - tiny).abs() < 0.01, "{base} vs {tiny}");
    }

    #[test]
    fn state_mismatch_detected() {
        let params = synthetic_params(5, 0.3, 0.1);
        let qos9 = ElasticQos::paper_video(50);
        assert!(matches!(
            ElasticQosModel::new(qos9, &params, EventRates::paper_default(0.0)),
            Err(ModelError::StateMismatch {
                qos: 9,
                measured: 5
            })
        ));
    }

    #[test]
    fn inconsistent_params_detected() {
        let mut params = synthetic_params(5, 0.3, 0.1);
        params.pf = 2.0;
        assert_eq!(
            ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap_err(),
            ModelError::InconsistentParams
        );
    }

    #[test]
    fn invalid_rates_detected() {
        let params = synthetic_params(5, 0.3, 0.1);
        let bad = EventRates {
            lambda: -1.0,
            mu: 0.001,
            gamma: 0.0,
        };
        assert!(matches!(
            ElasticQosModel::new(qos5(), &params, bad),
            Err(ModelError::InvalidRate(_))
        ));
    }

    #[test]
    fn rigid_qos_single_state() {
        let qos = ElasticQos::rigid(Bandwidth::kbps(100)).unwrap();
        let params = synthetic_params(1, 0.3, 0.1);
        let model = ElasticQosModel::new(qos, &params, EventRates::paper_default(0.0)).unwrap();
        assert_eq!(model.average_bandwidth().unwrap(), 100.0);
    }

    #[test]
    fn two_state_closed_form() {
        // n = 2: down rate d = pf·λ (a[1][0] = 1), up rate u = ps·λ + pf·μ.
        // π₁ = u/(u+d); average = min + π₁·Δ.
        let params = synthetic_params(2, 0.4, 0.2);
        let qos = ElasticQos::new(
            Bandwidth::kbps(100),
            Bandwidth::kbps(200),
            Bandwidth::kbps(100),
            1.0,
        )
        .unwrap();
        let rates = EventRates {
            lambda: 0.001,
            mu: 0.001,
            gamma: 0.0,
        };
        let model = ElasticQosModel::new(qos, &params, rates).unwrap();
        let d = 0.4 * 0.001;
        let u = 0.2 * 0.001 + 0.4 * 0.001;
        let pi1 = u / (u + d);
        let expected = 100.0 + pi1 * 100.0;
        assert!((model.average_bandwidth().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn transient_recovers_toward_steady_state() {
        let params = synthetic_params(5, 0.3, 0.2);
        let model = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap();
        // All mass on level 0 (just retreated).
        let mut initial = vec![0.0; 5];
        initial[0] = 1.0;
        let bw0 = model.transient_average_bandwidth(&initial, 0.0).unwrap();
        assert!((bw0 - 100.0).abs() < 1e-9);
        // Recovery is monotone towards the stationary average.
        let stationary = model.average_bandwidth().unwrap();
        let mut last = bw0;
        for t in [100.0, 1_000.0, 10_000.0, 100_000.0] {
            let bw = model.transient_average_bandwidth(&initial, t).unwrap();
            assert!(bw >= last - 1e-9, "recovery regressed at t={t}");
            last = bw;
        }
        assert!(
            (last - stationary).abs() < 0.5,
            "t=100000 should have converged: {last} vs {stationary}"
        );
    }

    #[test]
    fn mean_passage_time_is_positive_and_monotone() {
        let params = synthetic_params(5, 0.3, 0.2);
        let model = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap();
        let t1 = model.mean_passage_time(0, 1).unwrap();
        let t4 = model.mean_passage_time(0, 4).unwrap();
        assert!(t1 > 0.0);
        assert!(t4 > t1, "farther targets take longer: {t1} vs {t4}");
        assert_eq!(model.mean_passage_time(4, 4).unwrap(), 0.0);
    }

    #[test]
    fn mean_passage_time_validates_levels() {
        let params = synthetic_params(5, 0.3, 0.2);
        let model = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap();
        assert!(model.mean_passage_time(9, 0).is_err());
        assert!(model.mean_passage_time(0, 9).is_err());
    }

    #[test]
    fn transient_validates_inputs() {
        let params = synthetic_params(5, 0.3, 0.2);
        let model = ElasticQosModel::new(qos5(), &params, EventRates::paper_default(0.0)).unwrap();
        assert!(model.transient_levels(&[1.0; 3], 1.0).is_err());
        assert!(model.transient_levels(&[0.2; 5], -1.0).is_err());
    }

    #[test]
    fn transient_mass_is_conserved() {
        let params = synthetic_params(4, 0.5, 0.1);
        let qos = ElasticQos::new(
            Bandwidth::kbps(100),
            Bandwidth::kbps(400),
            Bandwidth::kbps(100),
            1.0,
        )
        .unwrap();
        let model = ElasticQosModel::new(qos, &params, EventRates::paper_default(0.0)).unwrap();
        let initial = vec![0.25; 4];
        let dist = model.transient_levels(&initial, 500.0).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-8, "{dist:?}");
        assert!(dist.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn error_display() {
        assert!(ModelError::InconsistentParams
            .to_string()
            .contains("inconsistent"));
        assert!(ModelError::StateMismatch {
            qos: 2,
            measured: 3
        }
        .to_string()
        .contains("2 levels"));
        assert!(ModelError::InvalidRate(-1.0).to_string().contains("-1"));
        assert!(ModelError::Solve(MarkovError::Empty)
            .to_string()
            .contains("solve"));
    }
}
