//! The paper's "ideal average bandwidth" reference line (Section 4):
//!
//! ```text
//!               BW × Edge
//! ideal = ──────────────────────
//!           NChan × avg_hops
//! ```
//!
//! — the bandwidth each channel would get if *all* network resources were
//! utilized and divided equally. Figure 2 plots it (clamped to the elastic
//! range) as the upper dotted line.

use drqos_core::qos::{Bandwidth, ElasticQos};

/// The raw ideal average bandwidth in Kbps (unclamped).
///
/// Returns `f64::INFINITY` when `channels == 0` or `avg_hops == 0` (no
/// load — every channel could have everything).
///
/// # Panics
///
/// Panics if `avg_hops` is negative or not finite.
pub fn ideal_average_bandwidth(
    link_bandwidth: Bandwidth,
    edges: usize,
    channels: usize,
    avg_hops: f64,
) -> f64 {
    assert!(
        avg_hops.is_finite() && avg_hops >= 0.0,
        "avg_hops must be finite and non-negative"
    );
    let denom = channels as f64 * avg_hops;
    if denom == 0.0 {
        return f64::INFINITY;
    }
    link_bandwidth.as_kbps_f64() * edges as f64 / denom
}

/// The ideal line clamped to the elastic QoS range `[B_min, B_max]`, as
/// plotted in the paper's Figure 2 (a channel can never reserve more than
/// `B_max` nor less than it needs to exist).
pub fn ideal_clamped(
    link_bandwidth: Bandwidth,
    edges: usize,
    channels: usize,
    avg_hops: f64,
    qos: &ElasticQos,
) -> f64 {
    ideal_average_bandwidth(link_bandwidth, edges, channels, avg_hops)
        .clamp(qos.min().as_kbps_f64(), qos.max().as_kbps_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula() {
        // 10 Mbps, 354 edges, 5000 channels, 4 hops → 10000·354/20000 = 177.
        let v = ideal_average_bandwidth(Bandwidth::mbps(10), 354, 5_000, 4.0);
        assert!((v - 177.0).abs() < 1e-9);
    }

    #[test]
    fn no_load_is_infinite() {
        assert!(ideal_average_bandwidth(Bandwidth::mbps(10), 354, 0, 4.0).is_infinite());
        assert!(ideal_average_bandwidth(Bandwidth::mbps(10), 354, 10, 0.0).is_infinite());
    }

    #[test]
    fn clamped_to_qos_range() {
        let qos = ElasticQos::paper_video(50);
        // Light load → clamps at max.
        assert_eq!(
            ideal_clamped(Bandwidth::mbps(10), 354, 10, 4.0, &qos),
            500.0
        );
        // Crushing load → clamps at min.
        assert_eq!(
            ideal_clamped(Bandwidth::mbps(10), 354, 1_000_000, 4.0, &qos),
            100.0
        );
        // In between → the raw value.
        let mid = ideal_clamped(Bandwidth::mbps(10), 354, 5_000, 4.0, &qos);
        assert!((mid - 177.0).abs() < 1e-9);
    }

    #[test]
    fn decreasing_in_load() {
        let qos = ElasticQos::paper_video(50);
        let mut last = f64::INFINITY;
        for n in [100, 500, 1_000, 2_000, 5_000] {
            let v = ideal_clamped(Bandwidth::mbps(10), 354, n, 4.0, &qos);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_hops_panics() {
        ideal_average_bandwidth(Bandwidth::mbps(10), 354, 100, -1.0);
    }
}
