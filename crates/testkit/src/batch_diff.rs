//! Differential fuzzing of batched admission.
//!
//! [`Network::establish_batch`] claims *exact* equivalence to sequential
//! establishment: same admission outcomes, same connection ids, same
//! final network state, for any request group in any order. This module
//! is the enforcement arm of that claim — the fuzzer's operation
//! sequences are replayed against a batched network and a sequential
//! oracle in lockstep. Maximal runs of consecutive `Establish` ops
//! (capped at [`BATCH_CAP`]) go through `establish_batch` on one side
//! and one-at-a-time `establish` on the other; every other operation is
//! applied to both sides identically. After each batch flush and each
//! singleton operation the two networks are compared on:
//!
//! * every request's own result (admission `Ok`/`Err`, ids included),
//! * a full [`NetworkSnapshot`] (per-link accounting, per-connection QoS
//!   state),
//! * the cumulative drop counter and the topology epoch.
//!
//! Any divergence is shrunk with the fuzzer's delta-debugging engine
//! ([`crate::fuzz::shrink_by`]) to a minimal operation sequence and
//! printed as a copy-pasteable reproducer.
//!
//! [`BatchFault::ReverseBatch`] is the detector's own mutation check: it
//! feeds each batch to `establish_batch` in reversed order without
//! un-permuting the results — the batch-ordering bug a caller would
//! write by sorting requests and forgetting to map replies back. The
//! harness must catch it and shrink the witness to two operations.
//!
//! [`Network::establish_batch`]: drqos_core::network::Network::establish_batch

use crate::fuzz::{case_seed, generate_ops, shrink_by, Op, Scenario};
use drqos_core::channel::ConnectionId;
use drqos_core::error::AdmissionError;
use drqos_core::network::{EstablishRequest, Network};
use drqos_core::qos::ElasticQos;
use drqos_core::snapshot::NetworkSnapshot;
use drqos_sim::rng::Rng;
use drqos_topology::{LinkId, NodeId};

/// Largest establish run handed to `establish_batch` in one call (the
/// daemon's own grouping is bounded by `DRQOS_BATCH` the same way).
pub const BATCH_CAP: usize = 16;

/// Deliberate faults injected into the batched side, for testing the
/// detector itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchFault {
    /// Faithful batching: maximal establish runs, order preserved.
    #[default]
    None,
    /// The batch-ordering bug: requests reach `establish_batch` reversed
    /// and the results are *not* mapped back to request order.
    ReverseBatch,
}

/// How the batched network first disagreed with its sequential oracle.
#[derive(Debug, Clone)]
pub struct BatchDiffDivergence {
    /// Index of the diverging operation.
    pub step: usize,
    /// The diverging operation.
    pub op: Op,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl std::fmt::Display for BatchDiffDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} ({:?}): {}", self.step, self.op, self.detail)
    }
}

/// One pending establish run: requests plus the fuzz-stream steps they
/// came from (for divergence attribution).
struct PendingBatch {
    reqs: Vec<EstablishRequest>,
    steps: Vec<(usize, Op)>,
}

impl PendingBatch {
    fn new() -> Self {
        PendingBatch {
            reqs: Vec::new(),
            steps: Vec::new(),
        }
    }
}

/// Flushes a pending establish run: the whole group through
/// `establish_batch` on the batched side, one `establish` per request on
/// the oracle, then a full state comparison.
fn flush_batch(
    batched: &mut Network,
    oracle: &mut Network,
    pending: &mut PendingBatch,
    fault: BatchFault,
) -> Option<BatchDiffDivergence> {
    if pending.reqs.is_empty() {
        return None;
    }
    let reqs = std::mem::take(&mut pending.reqs);
    let steps = std::mem::take(&mut pending.steps);
    let batch_results: Vec<Result<ConnectionId, AdmissionError>> = match fault {
        BatchFault::None => batched.establish_batch(&reqs),
        BatchFault::ReverseBatch => {
            let reversed: Vec<EstablishRequest> = reqs.iter().rev().copied().collect();
            // The injected bug: results come back in batch order, not
            // request order.
            batched.establish_batch(&reversed)
        }
    };
    for (i, req) in reqs.iter().enumerate() {
        let got_oracle = oracle.establish(req.src, req.dst, req.qos);
        if batch_results[i] != got_oracle {
            let (step, op) = steps[i];
            return Some(BatchDiffDivergence {
                step,
                op,
                detail: format!(
                    "establish({},{}) diverged: batched {:?}, sequential {got_oracle:?}",
                    req.src.index(),
                    req.dst.index(),
                    batch_results[i]
                ),
            });
        }
    }
    let &(last_step, last_op) = steps.last().expect("non-empty batch has steps");
    compare_state(batched, oracle).map(|detail| BatchDiffDivergence {
        step: last_step,
        op: last_op,
        detail,
    })
}

/// Compares drop counter, topology epoch, and full snapshots.
fn compare_state(batched: &Network, oracle: &Network) -> Option<String> {
    if batched.dropped_total() != oracle.dropped_total() {
        return Some(format!(
            "drop counter diverged: batched {}, sequential {}",
            batched.dropped_total(),
            oracle.dropped_total()
        ));
    }
    if batched.topology_epoch() != oracle.topology_epoch() {
        return Some(format!(
            "topology epoch diverged: batched {}, sequential {}",
            batched.topology_epoch(),
            oracle.topology_epoch()
        ));
    }
    let snap_batched = NetworkSnapshot::capture(batched);
    let snap_oracle = NetworkSnapshot::capture(oracle);
    if snap_batched != snap_oracle {
        return Some(first_snapshot_mismatch(&snap_batched, &snap_oracle));
    }
    None
}

/// Pinpoints the first differing row of two snapshots.
fn first_snapshot_mismatch(batched: &NetworkSnapshot, oracle: &NetworkSnapshot) -> String {
    for (a, b) in batched.links.iter().zip(&oracle.links) {
        if a != b {
            return format!("link row diverged: batched {a:?}, sequential {b:?}");
        }
    }
    for (a, b) in batched.connections.iter().zip(&oracle.connections) {
        if a != b {
            return format!("connection row diverged: batched {a:?}, sequential {b:?}");
        }
    }
    format!(
        "snapshot shape diverged: batched {} links / {} connections, sequential {} / {}",
        batched.links.len(),
        batched.connections.len(),
        oracle.links.len(),
        oracle.connections.len()
    )
}

/// Applies one non-establish operation to both networks and reports the
/// first mismatch, if any. Operand resolution mirrors `Harness::apply`,
/// using the oracle as the candidate-list side (identical on both until
/// the first divergence, so the choice cannot mask a bug).
fn apply_singleton(batched: &mut Network, oracle: &mut Network, op: Op) -> Option<String> {
    match op {
        Op::Establish { .. } => unreachable!("establishes are batched, not singletons"),
        Op::Release { pick } => {
            let live: Vec<ConnectionId> = oracle.connections().map(|c| c.id()).collect();
            if let Some(&id) = resolve(&live, pick) {
                let got_batched = batched.release(id);
                let got_oracle = oracle.release(id);
                if got_batched != got_oracle {
                    return Some(format!(
                        "release({id}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailLink { pick } => {
            let up: Vec<LinkId> = oracle.up_links().collect();
            if let Some(&link) = resolve(&up, pick) {
                let got_batched = batched.fail_link(link);
                let got_oracle = oracle.fail_link(link);
                if got_batched != got_oracle {
                    return Some(format!(
                        "fail_link({link:?}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailNode { pick } => {
            let candidates: Vec<NodeId> = oracle
                .graph()
                .nodes()
                .filter(|&n| {
                    oracle
                        .graph()
                        .neighbors(n)
                        .iter()
                        .any(|&(_, l)| oracle.link_usage(l).is_up())
                })
                .collect();
            if let Some(&node) = resolve(&candidates, pick) {
                let got_batched = batched.fail_node(node);
                let got_oracle = oracle.fail_node(node);
                if got_batched != got_oracle {
                    return Some(format!(
                        "fail_node({node:?}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
        Op::RepairLink { pick } => {
            let down: Vec<LinkId> = oracle
                .graph()
                .links()
                .map(|l| l.id())
                .filter(|&l| !oracle.link_usage(l).is_up())
                .collect();
            if let Some(&link) = resolve(&down, pick) {
                let got_batched = batched.repair_link(link);
                let got_oracle = oracle.repair_link(link);
                if got_batched != got_oracle {
                    return Some(format!(
                        "repair_link({link:?}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| oracle.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_batched = batched.fail_srlg(group);
                let got_oracle = oracle.fail_srlg(group);
                if got_batched != got_oracle {
                    return Some(format!(
                        "fail_srlg({group}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
        Op::RepairSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| !oracle.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_batched = batched.repair_srlg(group);
                let got_oracle = oracle.repair_srlg(group);
                if got_batched != got_oracle {
                    return Some(format!(
                        "repair_srlg({group}) diverged: batched {got_batched:?}, sequential {got_oracle:?}"
                    ));
                }
            }
        }
    }
    compare_state(batched, oracle)
}

/// Replays `ops` against two freshly built identical networks — one
/// establishing in batches, one sequentially — and returns the first
/// divergence, or `None` when the sequence is byte-identical throughout.
pub fn run_batch_diff_sequence(scenario: &Scenario, ops: &[Op]) -> Option<BatchDiffDivergence> {
    let mut batched = scenario.network();
    let mut oracle = scenario.network();
    diff_batch_networks(
        &mut batched,
        &mut oracle,
        scenario.qos(),
        ops,
        BatchFault::None,
    )
}

/// The inner lockstep loop of [`run_batch_diff_sequence`], exposed with
/// the fault injector so tests can prove the detector detects.
pub fn diff_batch_networks(
    batched: &mut Network,
    oracle: &mut Network,
    qos: ElasticQos,
    ops: &[Op],
    fault: BatchFault,
) -> Option<BatchDiffDivergence> {
    let n = oracle.graph().node_count() as u64;
    let mut pending = PendingBatch::new();
    for (step, &op) in ops.iter().enumerate() {
        if let Op::Establish { src, dst } = op {
            // Same operand resolution as `Harness::apply` (the node count
            // never changes, so resolving at collection time is exact).
            let s = (src % n) as usize;
            let mut d = (dst % (n - 1)) as usize;
            if d >= s {
                d += 1;
            }
            pending.reqs.push(EstablishRequest {
                src: NodeId(s),
                dst: NodeId(d),
                qos,
            });
            pending.steps.push((step, op));
            if pending.reqs.len() >= BATCH_CAP {
                if let Some(d) = flush_batch(batched, oracle, &mut pending, fault) {
                    return Some(d);
                }
            }
            continue;
        }
        if let Some(d) = flush_batch(batched, oracle, &mut pending, fault) {
            return Some(d);
        }
        if let Some(detail) = apply_singleton(batched, oracle, op) {
            return Some(BatchDiffDivergence { step, op, detail });
        }
    }
    flush_batch(batched, oracle, &mut pending, fault)
}

/// Resolves a raw operand against a candidate list (None when empty).
fn resolve<T>(candidates: &[T], pick: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(pick % candidates.len() as u64) as usize])
    }
}

/// Budget and seed of a differential run (mirrors
/// [`crate::fuzz::FuzzConfig`]; the same case seeds generate the same
/// scenarios and operation streams as the invariant fuzzer).
#[derive(Debug, Clone)]
pub struct BatchDiffConfig {
    /// Number of independent operation sequences.
    pub sequences: usize,
    /// Operations per sequence.
    pub ops_per_sequence: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for BatchDiffConfig {
    fn default() -> Self {
        BatchDiffConfig {
            sequences: 100,
            ops_per_sequence: 60,
            seed: 2001,
        }
    }
}

/// A diverging case, shrunk and ready to report.
#[derive(Debug, Clone)]
pub struct BatchDiffFailure {
    /// The derived case seed.
    pub case_seed: u64,
    /// The scenario the case ran under.
    pub scenario: Scenario,
    /// The original diverging sequence.
    pub ops: Vec<Op>,
    /// The shrunk reproducer.
    pub shrunk: Vec<Op>,
    /// The divergence at the shrunk sequence's failing step.
    pub divergence: BatchDiffDivergence,
}

impl BatchDiffFailure {
    /// Renders the shrunk case as a copy-pasteable Rust snippet.
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// drqos-testkit batch-diff reproducer (case seed {:#x}, {} op(s) after shrinking)\n",
            self.case_seed,
            self.shrunk.len()
        ));
        out.push_str(&format!(
            "let scenario = Scenario {{ nodes: {}, capacity_kbps: {}, backup_count: {}, \
             increment_kbps: {}, graph_seed: {:#x} }};\n",
            self.scenario.nodes,
            self.scenario.capacity_kbps,
            self.scenario.backup_count,
            self.scenario.increment_kbps,
            self.scenario.graph_seed
        ));
        out.push_str("let ops = vec![\n");
        for op in &self.shrunk {
            out.push_str(&format!("    Op::{op:?},\n"));
        }
        out.push_str("];\n");
        out.push_str(
            "let divergence = run_batch_diff_sequence(&scenario, &ops)\n    \
             .expect(\"reproduces the divergence\");\n",
        );
        out.push_str(&format!("// {}\n", self.divergence));
        out
    }
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct BatchDiffOutcome {
    /// Sequences that replayed byte-identically.
    pub sequences_run: usize,
    /// The first diverging case, if any, already shrunk.
    pub failure: Option<BatchDiffFailure>,
}

/// Runs the differential fuzzer: independent seeded sequences, stopping
/// at (and shrinking) the first divergence.
pub fn run_batch_diff(config: &BatchDiffConfig) -> BatchDiffOutcome {
    for case in 0..config.sequences {
        let seed = case_seed(config.seed, case as u64);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A); // same stream as run_fuzz
        let ops = generate_ops(&mut rng, config.ops_per_sequence);
        if run_batch_diff_sequence(&scenario, &ops).is_some() {
            let shrunk = shrink_by(&ops, |candidate| {
                run_batch_diff_sequence(&scenario, candidate).map(|d| d.step)
            });
            let divergence = run_batch_diff_sequence(&scenario, &shrunk)
                .expect("shrink preserves the divergence");
            return BatchDiffOutcome {
                sequences_run: case,
                failure: Some(BatchDiffFailure {
                    case_seed: seed,
                    scenario,
                    ops,
                    shrunk,
                    divergence,
                }),
            };
        }
    }
    BatchDiffOutcome {
        sequences_run: config.sequences,
        failure: None,
    }
}

/// The batch-diff mutation check: injects the [`BatchFault::ReverseBatch`]
/// ordering bug and returns the first caught-and-shrunk witness, or
/// `None` if the detector failed to catch it — in which case the
/// detector itself has regressed. Used by `fuzz --self-test`.
pub fn batch_mutation_witness(seed: u64, sequences: usize) -> Option<Vec<Op>> {
    for case in 0..sequences {
        let case_seed = case_seed(seed, case as u64);
        let scenario = Scenario::from_seed(case_seed);
        let mut rng = Rng::seed_from_u64(case_seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 30);
        let fails_at = |candidate: &[Op]| {
            let mut batched = scenario.network();
            let mut oracle = scenario.network();
            diff_batch_networks(
                &mut batched,
                &mut oracle,
                scenario.qos(),
                candidate,
                BatchFault::ReverseBatch,
            )
            .map(|d| d.step)
        };
        if fails_at(&ops).is_some() {
            return Some(shrink_by(&ops, fails_at));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::InjectedFault;

    #[test]
    fn fuzzed_sequences_replay_identically() {
        let outcome = run_batch_diff(&BatchDiffConfig {
            sequences: 25,
            ops_per_sequence: 50,
            seed: 17,
        });
        assert!(
            outcome.failure.is_none(),
            "batched admission diverged:\n{}",
            outcome.failure.unwrap().reproducer()
        );
        assert_eq!(outcome.sequences_run, 25);
    }

    #[test]
    fn deep_contended_batches_replay_identically() {
        // All-establish streams force full BATCH_CAP groups on a starved
        // network — the worst case for the deferred-fill bookkeeping.
        let scenario = Scenario {
            nodes: 8,
            capacity_kbps: 800,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 11,
        };
        let mut rng = Rng::seed_from_u64(23);
        let ops: Vec<Op> = (0..48)
            .map(|_| Op::Establish {
                src: rng.next_u64(),
                dst: rng.next_u64(),
            })
            .collect();
        assert!(
            run_batch_diff_sequence(&scenario, &ops).is_none(),
            "dense batches must match sequential establishment"
        );
    }

    #[test]
    fn mismatched_pair_is_detected() {
        // Mutation check for the detector itself: pit two *different*
        // scenarios against each other — the smaller-capacity side must
        // reject sooner, and the lockstep comparison must say where.
        let scenario = Scenario {
            nodes: 10,
            capacity_kbps: 3_000,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 5,
        };
        let starved = Scenario {
            capacity_kbps: 100,
            ..scenario.clone()
        };
        let mut batched = scenario.network();
        let mut oracle = starved.network();
        let mut rng = Rng::seed_from_u64(99);
        let ops = generate_ops(&mut rng, 40);
        let divergence = diff_batch_networks(
            &mut batched,
            &mut oracle,
            scenario.qos(),
            &ops,
            BatchFault::None,
        )
        .expect("capacity mismatch must surface as a divergence");
        assert!(!divergence.detail.is_empty());
    }

    #[test]
    fn reversed_batch_fault_is_caught_and_shrinks_small() {
        // The satellite's mutation self-check: the injected batch-ordering
        // bug must be caught and shrunk to a handful of operations. The
        // witness needs at least two consecutive establishes (a batch of
        // one cannot misorder); sometimes a follow-up op is also required
        // because swapped admissions can yield numerically equal ids.
        let shrunk = batch_mutation_witness(2001, 20)
            .expect("ordering fault must be detected within the budget");
        assert!(
            (2..=4).contains(&shrunk.len()),
            "ordering witness should be tiny: {shrunk:?}"
        );
        assert!(
            shrunk
                .iter()
                .filter(|op| matches!(op, Op::Establish { .. }))
                .count()
                >= 2,
            "witness needs a consecutive establish pair: {shrunk:?}"
        );
    }

    #[test]
    fn reproducer_renders_scenario_and_ops() {
        let scenario = Scenario::from_seed(4);
        let failure = BatchDiffFailure {
            case_seed: 4,
            scenario,
            ops: vec![Op::Establish { src: 1, dst: 2 }],
            shrunk: vec![Op::Establish { src: 1, dst: 2 }],
            divergence: BatchDiffDivergence {
                step: 0,
                op: Op::Establish { src: 1, dst: 2 },
                detail: "example".into(),
            },
        };
        let repro = failure.reproducer();
        assert!(repro.contains("Scenario {"));
        assert!(repro.contains("Op::Establish"));
        assert!(repro.contains("run_batch_diff_sequence"));
    }

    #[test]
    fn diff_streams_match_the_invariant_fuzzer() {
        // The differential runner deliberately replays the exact case
        // seeds and op streams the invariant fuzzer uses, so a sequence
        // number from one report addresses the same workload in both.
        let seed = case_seed(2001, 3);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 20);
        assert!(crate::fuzz::run_sequence(&scenario, &ops, InjectedFault::None).is_none());
        assert!(run_batch_diff_sequence(&scenario, &ops).is_none());
    }
}
