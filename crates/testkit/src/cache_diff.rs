//! Differential fuzzing of the admission route cache.
//!
//! The route cache ([`drqos_core::route_cache`]) claims *exact*
//! equivalence: with the cache on, every admission decision, failure
//! report, drop counter, and byte of observable network state must be
//! identical to the cache-off network. This module is the enforcement
//! arm of that claim — the fuzzer's operation sequences are replayed
//! against a cache-on and a cache-off [`Network`] in lockstep, and after
//! **every** operation the two are compared on:
//!
//! * the operation's own result (admission `Ok`/`Err`, failure reports,
//!   release results),
//! * a full [`NetworkSnapshot`] (per-link accounting, per-connection QoS
//!   state),
//! * the cumulative drop counter and the topology epoch.
//!
//! Any divergence is shrunk with the fuzzer's delta-debugging engine
//! ([`crate::fuzz::shrink_by`]) to a minimal operation sequence and
//! printed as a copy-pasteable reproducer.
//!
//! Operands are resolved against the *cache-off* network's candidate
//! lists (exactly as [`crate::fuzz::Harness::apply`] resolves them
//! against its single network). Until the first divergence both networks
//! have identical candidate lists, so the choice of resolution side
//! cannot mask a bug: the first divergent operation is always detected
//! at the step where it happens.

use crate::fuzz::{case_seed, generate_ops, shrink_by, Op, Scenario};
use drqos_core::channel::ConnectionId;
use drqos_core::network::Network;
use drqos_core::qos::ElasticQos;
use drqos_core::snapshot::NetworkSnapshot;
use drqos_sim::rng::Rng;
use drqos_topology::{LinkId, NodeId};

/// How a cache-on network first disagreed with its cache-off oracle.
#[derive(Debug, Clone)]
pub struct CacheDiffDivergence {
    /// Index of the diverging operation.
    pub step: usize,
    /// The diverging operation.
    pub op: Op,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl std::fmt::Display for CacheDiffDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} ({:?}): {}", self.step, self.op, self.detail)
    }
}

/// Applies one operation to both networks and reports the first
/// mismatch, if any. Operand resolution mirrors `Harness::apply`, using
/// `off` as the candidate-list oracle.
fn apply_both(on: &mut Network, off: &mut Network, qos: ElasticQos, op: Op) -> Option<String> {
    match op {
        Op::Establish { src, dst } => {
            let n = off.graph().node_count() as u64;
            let s = (src % n) as usize;
            let mut d = (dst % (n - 1)) as usize;
            if d >= s {
                d += 1;
            }
            let got_on = on.establish(NodeId(s), NodeId(d), qos);
            let got_off = off.establish(NodeId(s), NodeId(d), qos);
            if got_on != got_off {
                return Some(format!(
                    "establish({s},{d}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                ));
            }
        }
        Op::Release { pick } => {
            let live: Vec<ConnectionId> = off.connections().map(|c| c.id()).collect();
            if let Some(&id) = resolve(&live, pick) {
                let got_on = on.release(id);
                let got_off = off.release(id);
                if got_on != got_off {
                    return Some(format!(
                        "release({id}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
        Op::FailLink { pick } => {
            let up: Vec<LinkId> = off.up_links().collect();
            if let Some(&link) = resolve(&up, pick) {
                let got_on = on.fail_link(link);
                let got_off = off.fail_link(link);
                if got_on != got_off {
                    return Some(format!(
                        "fail_link({link:?}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
        Op::FailNode { pick } => {
            let candidates: Vec<NodeId> = off
                .graph()
                .nodes()
                .filter(|&n| {
                    off.graph()
                        .neighbors(n)
                        .iter()
                        .any(|&(_, l)| off.link_usage(l).is_up())
                })
                .collect();
            if let Some(&node) = resolve(&candidates, pick) {
                let got_on = on.fail_node(node);
                let got_off = off.fail_node(node);
                if got_on != got_off {
                    return Some(format!(
                        "fail_node({node:?}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
        Op::RepairLink { pick } => {
            let down: Vec<LinkId> = off
                .graph()
                .links()
                .map(|l| l.id())
                .filter(|&l| !off.link_usage(l).is_up())
                .collect();
            if let Some(&link) = resolve(&down, pick) {
                let got_on = on.repair_link(link);
                let got_off = off.repair_link(link);
                if got_on != got_off {
                    return Some(format!(
                        "repair_link({link:?}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
        Op::FailSrlg { pick } => {
            let candidates: Vec<usize> = (0..off.srlg_count())
                .filter(|&g| {
                    off.srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| off.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_on = on.fail_srlg(group);
                let got_off = off.fail_srlg(group);
                if got_on != got_off {
                    return Some(format!(
                        "fail_srlg({group}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
        Op::RepairSrlg { pick } => {
            let candidates: Vec<usize> = (0..off.srlg_count())
                .filter(|&g| {
                    off.srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| !off.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_on = on.repair_srlg(group);
                let got_off = off.repair_srlg(group);
                if got_on != got_off {
                    return Some(format!(
                        "repair_srlg({group}) diverged: cache-on {got_on:?}, cache-off {got_off:?}"
                    ));
                }
            }
        }
    }
    if on.dropped_total() != off.dropped_total() {
        return Some(format!(
            "drop counter diverged: cache-on {}, cache-off {}",
            on.dropped_total(),
            off.dropped_total()
        ));
    }
    if on.topology_epoch() != off.topology_epoch() {
        return Some(format!(
            "topology epoch diverged: cache-on {}, cache-off {}",
            on.topology_epoch(),
            off.topology_epoch()
        ));
    }
    let snap_on = NetworkSnapshot::capture(on);
    let snap_off = NetworkSnapshot::capture(off);
    if snap_on != snap_off {
        return Some(first_snapshot_mismatch(&snap_on, &snap_off));
    }
    None
}

/// Pinpoints the first differing row of two snapshots.
fn first_snapshot_mismatch(on: &NetworkSnapshot, off: &NetworkSnapshot) -> String {
    for (a, b) in on.links.iter().zip(&off.links) {
        if a != b {
            return format!("link row diverged: cache-on {a:?}, cache-off {b:?}");
        }
    }
    for (a, b) in on.connections.iter().zip(&off.connections) {
        if a != b {
            return format!("connection row diverged: cache-on {a:?}, cache-off {b:?}");
        }
    }
    format!(
        "snapshot shape diverged: cache-on {} links / {} connections, cache-off {} / {}",
        on.links.len(),
        on.connections.len(),
        off.links.len(),
        off.connections.len()
    )
}

/// Replays `ops` against two freshly built networks (route cache on vs.
/// off) and returns the first divergence, or `None` when the sequence is
/// byte-identical throughout.
pub fn run_cache_diff_sequence(scenario: &Scenario, ops: &[Op]) -> Option<CacheDiffDivergence> {
    let mut on = scenario.network_with_cache(true);
    let mut off = scenario.network_with_cache(false);
    diff_networks(&mut on, &mut off, scenario.qos(), ops)
}

/// The inner lockstep loop of [`run_cache_diff_sequence`], exposed so
/// tests can inject a deliberately mismatched pair and prove the
/// detector detects.
pub fn diff_networks(
    on: &mut Network,
    off: &mut Network,
    qos: ElasticQos,
    ops: &[Op],
) -> Option<CacheDiffDivergence> {
    for (step, &op) in ops.iter().enumerate() {
        if let Some(detail) = apply_both(on, off, qos, op) {
            return Some(CacheDiffDivergence { step, op, detail });
        }
    }
    None
}

/// Resolves a raw operand against a candidate list (None when empty).
fn resolve<T>(candidates: &[T], pick: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(pick % candidates.len() as u64) as usize])
    }
}

/// Budget and seed of a differential run (mirrors
/// [`crate::fuzz::FuzzConfig`]; the same case seeds generate the same
/// scenarios and operation streams as the invariant fuzzer).
#[derive(Debug, Clone)]
pub struct CacheDiffConfig {
    /// Number of independent operation sequences.
    pub sequences: usize,
    /// Operations per sequence.
    pub ops_per_sequence: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for CacheDiffConfig {
    fn default() -> Self {
        CacheDiffConfig {
            sequences: 100,
            ops_per_sequence: 60,
            seed: 2001,
        }
    }
}

/// A diverging case, shrunk and ready to report.
#[derive(Debug, Clone)]
pub struct CacheDiffFailure {
    /// The derived case seed.
    pub case_seed: u64,
    /// The scenario the case ran under.
    pub scenario: Scenario,
    /// The original diverging sequence.
    pub ops: Vec<Op>,
    /// The shrunk reproducer.
    pub shrunk: Vec<Op>,
    /// The divergence at the shrunk sequence's failing step.
    pub divergence: CacheDiffDivergence,
}

impl CacheDiffFailure {
    /// Renders the shrunk case as a copy-pasteable Rust snippet.
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// drqos-testkit cache-diff reproducer (case seed {:#x}, {} op(s) after shrinking)\n",
            self.case_seed,
            self.shrunk.len()
        ));
        out.push_str(&format!(
            "let scenario = Scenario {{ nodes: {}, capacity_kbps: {}, backup_count: {}, \
             increment_kbps: {}, graph_seed: {:#x} }};\n",
            self.scenario.nodes,
            self.scenario.capacity_kbps,
            self.scenario.backup_count,
            self.scenario.increment_kbps,
            self.scenario.graph_seed
        ));
        out.push_str("let ops = vec![\n");
        for op in &self.shrunk {
            out.push_str(&format!("    Op::{op:?},\n"));
        }
        out.push_str("];\n");
        out.push_str(
            "let divergence = run_cache_diff_sequence(&scenario, &ops)\n    \
             .expect(\"reproduces the divergence\");\n",
        );
        out.push_str(&format!("// {}\n", self.divergence));
        out
    }
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct CacheDiffOutcome {
    /// Sequences that replayed byte-identically.
    pub sequences_run: usize,
    /// The first diverging case, if any, already shrunk.
    pub failure: Option<CacheDiffFailure>,
}

/// Runs the differential fuzzer: independent seeded sequences, stopping
/// at (and shrinking) the first divergence.
pub fn run_cache_diff(config: &CacheDiffConfig) -> CacheDiffOutcome {
    for case in 0..config.sequences {
        let seed = case_seed(config.seed, case as u64);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A); // same stream as run_fuzz
        let ops = generate_ops(&mut rng, config.ops_per_sequence);
        if run_cache_diff_sequence(&scenario, &ops).is_some() {
            let shrunk = shrink_by(&ops, |candidate| {
                run_cache_diff_sequence(&scenario, candidate).map(|d| d.step)
            });
            let divergence = run_cache_diff_sequence(&scenario, &shrunk)
                .expect("shrink preserves the divergence");
            return CacheDiffOutcome {
                sequences_run: case,
                failure: Some(CacheDiffFailure {
                    case_seed: seed,
                    scenario,
                    ops,
                    shrunk,
                    divergence,
                }),
            };
        }
    }
    CacheDiffOutcome {
        sequences_run: config.sequences,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::InjectedFault;

    #[test]
    fn fuzzed_sequences_replay_identically() {
        let outcome = run_cache_diff(&CacheDiffConfig {
            sequences: 25,
            ops_per_sequence: 50,
            seed: 17,
        });
        assert!(
            outcome.failure.is_none(),
            "cache diverged:\n{}",
            outcome.failure.unwrap().reproducer()
        );
        assert_eq!(outcome.sequences_run, 25);
    }

    #[test]
    fn mismatched_pair_is_detected() {
        // Mutation check for the detector itself: pit two *different*
        // scenarios against each other — the smaller-capacity side must
        // reject sooner, and the lockstep comparison must say where.
        let scenario = Scenario {
            nodes: 10,
            capacity_kbps: 3_000,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 5,
        };
        let starved = Scenario {
            capacity_kbps: 100,
            ..scenario.clone()
        };
        let mut on = scenario.network_with_cache(true);
        let mut off = starved.network_with_cache(false);
        let mut rng = Rng::seed_from_u64(99);
        let ops = generate_ops(&mut rng, 40);
        let divergence = diff_networks(&mut on, &mut off, scenario.qos(), &ops)
            .expect("capacity mismatch must surface as a divergence");
        assert!(!divergence.detail.is_empty());
    }

    #[test]
    fn injected_divergence_shrinks_to_one_op() {
        // shrink_by over a capacity-mismatched pair: the minimal witness
        // for "one side admits, the other rejects" is a single establish.
        let scenario = Scenario {
            nodes: 10,
            capacity_kbps: 3_000,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 5,
        };
        let starved = Scenario {
            capacity_kbps: 100,
            ..scenario.clone()
        };
        let fails_at = |ops: &[Op]| {
            let mut on = scenario.network_with_cache(true);
            let mut off = starved.network_with_cache(false);
            diff_networks(&mut on, &mut off, scenario.qos(), ops).map(|d| d.step)
        };
        let mut rng = Rng::seed_from_u64(99);
        let ops = generate_ops(&mut rng, 40);
        assert!(fails_at(&ops).is_some());
        let shrunk = shrink_by(&ops, fails_at);
        assert_eq!(shrunk.len(), 1, "minimal witness is one op: {shrunk:?}");
        assert!(matches!(shrunk[0], Op::Establish { .. }));
    }

    #[test]
    fn reproducer_renders_scenario_and_ops() {
        let scenario = Scenario::from_seed(4);
        let failure = CacheDiffFailure {
            case_seed: 4,
            scenario,
            ops: vec![Op::Establish { src: 1, dst: 2 }],
            shrunk: vec![Op::Establish { src: 1, dst: 2 }],
            divergence: CacheDiffDivergence {
                step: 0,
                op: Op::Establish { src: 1, dst: 2 },
                detail: "example".into(),
            },
        };
        let repro = failure.reproducer();
        assert!(repro.contains("Scenario {"));
        assert!(repro.contains("Op::Establish"));
        assert!(repro.contains("run_cache_diff_sequence"));
    }

    #[test]
    fn diff_streams_match_the_invariant_fuzzer() {
        // The differential runner deliberately replays the exact case
        // seeds and op streams the invariant fuzzer uses, so a sequence
        // number from one report addresses the same workload in both.
        let seed = case_seed(2001, 3);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 20);
        assert!(crate::fuzz::run_sequence(&scenario, &ops, InjectedFault::None).is_none());
        assert!(run_cache_diff_sequence(&scenario, &ops).is_none());
    }
}
