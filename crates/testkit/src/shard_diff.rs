//! Differential fuzzing of sharded admission — the `fuzz --diff-shard`
//! harness.
//!
//! [`ShardedNetwork`] claims *exact* equivalence to the monolith: same
//! admission outcomes, same connection ids, same final network state, for
//! any wave of requests at any shard count. This module is the
//! enforcement arm of that claim. The fuzzer's operation sequences are
//! replayed against a sharded network and a sequential monolithic oracle
//! in lockstep: maximal runs of consecutive `Establish` ops (capped at
//! [`WAVE_CAP`]) go through [`ShardedNetwork::establish_wave`] — real
//! per-shard planning threads plus the two-phase cross-shard commit — on
//! one side and one-at-a-time `establish` on the other; every other
//! operation is applied to both sides identically. After each wave flush
//! and each singleton operation the two networks are compared on:
//!
//! * every request's own result (admission `Ok`/`Err`, ids included),
//! * a full [`NetworkSnapshot`] (per-link accounting, per-connection QoS
//!   state),
//! * the cumulative drop counter and the topology epoch,
//! * and — sharding-specific — that **no two-phase reservation leaked**:
//!   the per-shard pending ledgers must be empty between waves.
//!
//! Any divergence is shrunk with the fuzzer's delta-debugging engine
//! ([`crate::fuzz::shrink_by`]) and printed as a copy-pasteable
//! reproducer.
//!
//! [`ShardFault::LoseReservationRelease`] is the detector's own mutation
//! check: the sharded engine "forgets" to release one two-phase
//! reservation, and the harness must catch the leak — proof the
//! comparison has teeth. Used by `fuzz --self-test`.
//!
//! [`ShardedNetwork`]: drqos_core::shard::ShardedNetwork
//! [`ShardedNetwork::establish_wave`]: drqos_core::shard::ShardedNetwork::establish_wave

use crate::fuzz::{case_seed, generate_ops, shrink_by, Op, Scenario};
use drqos_core::channel::ConnectionId;
use drqos_core::error::AdmissionError;
use drqos_core::network::{EstablishRequest, Network};
use drqos_core::qos::ElasticQos;
use drqos_core::shard::{ShardFault, ShardedNetwork};
use drqos_core::snapshot::NetworkSnapshot;
use drqos_sim::rng::Rng;
use drqos_topology::{LinkId, NodeId};

/// Largest establish run admitted as one wave (the daemon's own grouping
/// is bounded by `DRQOS_BATCH` the same way).
pub const WAVE_CAP: usize = 16;

/// How the sharded network first disagreed with its monolithic oracle.
#[derive(Debug, Clone)]
pub struct ShardDiffDivergence {
    /// Index of the diverging operation.
    pub step: usize,
    /// The diverging operation.
    pub op: Op,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl std::fmt::Display for ShardDiffDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} ({:?}): {}", self.step, self.op, self.detail)
    }
}

/// One pending wave: requests plus the fuzz-stream steps they came from
/// (for divergence attribution).
struct PendingWave {
    reqs: Vec<EstablishRequest>,
    steps: Vec<(usize, Op)>,
}

impl PendingWave {
    fn new() -> Self {
        PendingWave {
            reqs: Vec::new(),
            steps: Vec::new(),
        }
    }
}

/// Flushes a pending wave: the whole group through `establish_wave` on
/// the sharded side, one `establish` per request on the oracle, then a
/// full state comparison including the reservation-leak check.
fn flush_wave(
    sharded: &mut ShardedNetwork,
    oracle: &mut Network,
    pending: &mut PendingWave,
) -> Option<ShardDiffDivergence> {
    if pending.reqs.is_empty() {
        return None;
    }
    let reqs = std::mem::take(&mut pending.reqs);
    let steps = std::mem::take(&mut pending.steps);
    let wave_results: Vec<Result<ConnectionId, AdmissionError>> = sharded.establish_wave(&reqs);
    for (i, req) in reqs.iter().enumerate() {
        let got_oracle = oracle.establish(req.src, req.dst, req.qos);
        if wave_results[i] != got_oracle {
            let (step, op) = steps[i];
            return Some(ShardDiffDivergence {
                step,
                op,
                detail: format!(
                    "establish({},{}) diverged: sharded {:?}, monolith {got_oracle:?}",
                    req.src.index(),
                    req.dst.index(),
                    wave_results[i]
                ),
            });
        }
    }
    let &(last_step, last_op) = steps.last().expect("non-empty wave has steps");
    compare_state(sharded, oracle).map(|detail| ShardDiffDivergence {
        step: last_step,
        op: last_op,
        detail,
    })
}

/// Compares drop counter, topology epoch, full snapshots, and the
/// sharding-specific invariant: every two-phase reservation released.
fn compare_state(sharded: &ShardedNetwork, oracle: &Network) -> Option<String> {
    if sharded.pending_reservations() != 0 {
        return Some(format!(
            "reservation leak: {} two-phase reservation(s) still pending between waves",
            sharded.pending_reservations()
        ));
    }
    let net = sharded.inner();
    if net.dropped_total() != oracle.dropped_total() {
        return Some(format!(
            "drop counter diverged: sharded {}, monolith {}",
            net.dropped_total(),
            oracle.dropped_total()
        ));
    }
    if net.topology_epoch() != oracle.topology_epoch() {
        return Some(format!(
            "topology epoch diverged: sharded {}, monolith {}",
            net.topology_epoch(),
            oracle.topology_epoch()
        ));
    }
    let snap_sharded = NetworkSnapshot::capture(net);
    let snap_oracle = NetworkSnapshot::capture(oracle);
    if snap_sharded != snap_oracle {
        return Some(first_snapshot_mismatch(&snap_sharded, &snap_oracle));
    }
    None
}

/// Pinpoints the first differing row of two snapshots.
fn first_snapshot_mismatch(sharded: &NetworkSnapshot, oracle: &NetworkSnapshot) -> String {
    for (a, b) in sharded.links.iter().zip(&oracle.links) {
        if a != b {
            return format!("link row diverged: sharded {a:?}, monolith {b:?}");
        }
    }
    for (a, b) in sharded.connections.iter().zip(&oracle.connections) {
        if a != b {
            return format!("connection row diverged: sharded {a:?}, monolith {b:?}");
        }
    }
    format!(
        "snapshot shape diverged: sharded {} links / {} connections, monolith {} / {}",
        sharded.links.len(),
        sharded.connections.len(),
        oracle.links.len(),
        oracle.connections.len()
    )
}

/// Applies one non-establish operation to both networks (straight through
/// the sharded engine's inner monolith — sharding only fronts admission)
/// and reports the first mismatch, if any. Operand resolution mirrors
/// `Harness::apply`, using the oracle as the candidate-list side.
fn apply_singleton(sharded: &mut ShardedNetwork, oracle: &mut Network, op: Op) -> Option<String> {
    match op {
        Op::Establish { .. } => unreachable!("establishes are waved, not singletons"),
        Op::Release { pick } => {
            let live: Vec<ConnectionId> = oracle.connections().map(|c| c.id()).collect();
            if let Some(&id) = resolve(&live, pick) {
                let got_sharded = sharded.inner_mut().release(id);
                let got_oracle = oracle.release(id);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "release({id}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailLink { pick } => {
            let up: Vec<LinkId> = oracle.up_links().collect();
            if let Some(&link) = resolve(&up, pick) {
                let got_sharded = sharded.inner_mut().fail_link(link);
                let got_oracle = oracle.fail_link(link);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "fail_link({link:?}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailNode { pick } => {
            let candidates: Vec<NodeId> = oracle
                .graph()
                .nodes()
                .filter(|&n| {
                    oracle
                        .graph()
                        .neighbors(n)
                        .iter()
                        .any(|&(_, l)| oracle.link_usage(l).is_up())
                })
                .collect();
            if let Some(&node) = resolve(&candidates, pick) {
                let got_sharded = sharded.inner_mut().fail_node(node);
                let got_oracle = oracle.fail_node(node);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "fail_node({node:?}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
        Op::RepairLink { pick } => {
            let down: Vec<LinkId> = oracle
                .graph()
                .links()
                .map(|l| l.id())
                .filter(|&l| !oracle.link_usage(l).is_up())
                .collect();
            if let Some(&link) = resolve(&down, pick) {
                let got_sharded = sharded.inner_mut().repair_link(link);
                let got_oracle = oracle.repair_link(link);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "repair_link({link:?}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
        Op::FailSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| oracle.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_sharded = sharded.inner_mut().fail_srlg(group);
                let got_oracle = oracle.fail_srlg(group);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "fail_srlg({group}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
        Op::RepairSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| !oracle.link_usage(l).is_up()))
                })
                .collect();
            if let Some(&group) = resolve(&candidates, pick) {
                let got_sharded = sharded.inner_mut().repair_srlg(group);
                let got_oracle = oracle.repair_srlg(group);
                if got_sharded != got_oracle {
                    return Some(format!(
                        "repair_srlg({group}) diverged: sharded {got_sharded:?}, monolith {got_oracle:?}"
                    ));
                }
            }
        }
    }
    compare_state(sharded, oracle)
}

/// Replays `ops` against two freshly built identical networks — one
/// establishing in sharded waves, one sequentially — and returns the
/// first divergence, or `None` when the sequence is byte-identical
/// throughout.
pub fn run_shard_diff_sequence(
    scenario: &Scenario,
    ops: &[Op],
    shards: usize,
) -> Option<ShardDiffDivergence> {
    let mut sharded = ShardedNetwork::new(scenario.network(), shards);
    let mut oracle = scenario.network();
    diff_shard_networks(&mut sharded, &mut oracle, scenario.qos(), ops)
}

/// The inner lockstep loop of [`run_shard_diff_sequence`], exposed so
/// tests can inject [`ShardFault`]s and prove the detector detects.
pub fn diff_shard_networks(
    sharded: &mut ShardedNetwork,
    oracle: &mut Network,
    qos: ElasticQos,
    ops: &[Op],
) -> Option<ShardDiffDivergence> {
    let n = oracle.graph().node_count() as u64;
    let mut pending = PendingWave::new();
    for (step, &op) in ops.iter().enumerate() {
        if let Op::Establish { src, dst } = op {
            // Same operand resolution as `Harness::apply` (the node count
            // never changes, so resolving at collection time is exact).
            let s = (src % n) as usize;
            let mut d = (dst % (n - 1)) as usize;
            if d >= s {
                d += 1;
            }
            pending.reqs.push(EstablishRequest {
                src: NodeId(s),
                dst: NodeId(d),
                qos,
            });
            pending.steps.push((step, op));
            if pending.reqs.len() >= WAVE_CAP {
                if let Some(d) = flush_wave(sharded, oracle, &mut pending) {
                    return Some(d);
                }
            }
            continue;
        }
        if let Some(d) = flush_wave(sharded, oracle, &mut pending) {
            return Some(d);
        }
        if let Some(detail) = apply_singleton(sharded, oracle, op) {
            return Some(ShardDiffDivergence { step, op, detail });
        }
    }
    flush_wave(sharded, oracle, &mut pending)
}

/// Resolves a raw operand against a candidate list (None when empty).
fn resolve<T>(candidates: &[T], pick: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(pick % candidates.len() as u64) as usize])
    }
}

/// Budget and seed of a differential run (mirrors
/// [`crate::batch_diff::BatchDiffConfig`]; the same case seeds generate
/// the same scenarios and operation streams as the invariant fuzzer).
#[derive(Debug, Clone)]
pub struct ShardDiffConfig {
    /// Number of independent operation sequences.
    pub sequences: usize,
    /// Operations per sequence.
    pub ops_per_sequence: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for ShardDiffConfig {
    fn default() -> Self {
        ShardDiffConfig {
            sequences: 100,
            ops_per_sequence: 60,
            seed: 2001,
        }
    }
}

/// A diverging case, shrunk and ready to report.
#[derive(Debug, Clone)]
pub struct ShardDiffFailure {
    /// The derived case seed.
    pub case_seed: u64,
    /// The shard count the case ran at.
    pub shards: usize,
    /// The scenario the case ran under.
    pub scenario: Scenario,
    /// The original diverging sequence.
    pub ops: Vec<Op>,
    /// The shrunk reproducer.
    pub shrunk: Vec<Op>,
    /// The divergence at the shrunk sequence's failing step.
    pub divergence: ShardDiffDivergence,
}

impl ShardDiffFailure {
    /// Renders the shrunk case as a copy-pasteable Rust snippet.
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// drqos-testkit shard-diff reproducer (case seed {:#x}, {} shard(s), {} op(s) after shrinking)\n",
            self.case_seed,
            self.shards,
            self.shrunk.len()
        ));
        out.push_str(&format!(
            "let scenario = Scenario {{ nodes: {}, capacity_kbps: {}, backup_count: {}, \
             increment_kbps: {}, graph_seed: {:#x} }};\n",
            self.scenario.nodes,
            self.scenario.capacity_kbps,
            self.scenario.backup_count,
            self.scenario.increment_kbps,
            self.scenario.graph_seed
        ));
        out.push_str("let ops = vec![\n");
        for op in &self.shrunk {
            out.push_str(&format!("    Op::{op:?},\n"));
        }
        out.push_str("];\n");
        out.push_str(&format!(
            "let divergence = run_shard_diff_sequence(&scenario, &ops, {})\n    \
             .expect(\"reproduces the divergence\");\n",
            self.shards
        ));
        out.push_str(&format!("// {}\n", self.divergence));
        out
    }
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct ShardDiffOutcome {
    /// Sequences that replayed byte-identically (summed over shard counts).
    pub sequences_run: usize,
    /// The first diverging case, if any, already shrunk.
    pub failure: Option<ShardDiffFailure>,
}

/// Runs the differential fuzzer at one shard count: independent seeded
/// sequences, stopping at (and shrinking) the first divergence.
pub fn run_shard_diff(config: &ShardDiffConfig, shards: usize) -> ShardDiffOutcome {
    for case in 0..config.sequences {
        let seed = case_seed(config.seed, case as u64);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A); // same stream as run_fuzz
        let ops = generate_ops(&mut rng, config.ops_per_sequence);
        if run_shard_diff_sequence(&scenario, &ops, shards).is_some() {
            let shrunk = shrink_by(&ops, |candidate| {
                run_shard_diff_sequence(&scenario, candidate, shards).map(|d| d.step)
            });
            let divergence = run_shard_diff_sequence(&scenario, &shrunk, shards)
                .expect("shrink preserves the divergence");
            return ShardDiffOutcome {
                sequences_run: case,
                failure: Some(ShardDiffFailure {
                    case_seed: seed,
                    shards,
                    scenario,
                    ops,
                    shrunk,
                    divergence,
                }),
            };
        }
    }
    ShardDiffOutcome {
        sequences_run: config.sequences,
        failure: None,
    }
}

/// The shard-diff mutation check: arms
/// [`ShardFault::LoseReservationRelease`] on the sharded side and returns
/// the first caught-and-shrunk witness, or `None` if the detector failed
/// to catch the leak — in which case the detector itself has regressed.
/// Used by `fuzz --self-test`.
pub fn shard_mutation_witness(seed: u64, sequences: usize, shards: usize) -> Option<Vec<Op>> {
    for case in 0..sequences {
        let case_seed = case_seed(seed, case as u64);
        let scenario = Scenario::from_seed(case_seed);
        let mut rng = Rng::seed_from_u64(case_seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 30);
        let fails_at = |candidate: &[Op]| {
            let mut sharded = ShardedNetwork::new(scenario.network(), shards);
            sharded.set_fault(ShardFault::LoseReservationRelease);
            let mut oracle = scenario.network();
            diff_shard_networks(&mut sharded, &mut oracle, scenario.qos(), candidate)
                .map(|d| d.step)
        };
        if fails_at(&ops).is_some() {
            return Some(shrink_by(&ops, fails_at));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::InjectedFault;

    #[test]
    fn fuzzed_sequences_replay_identically_at_2_and_4_shards() {
        for shards in [2usize, 4] {
            let outcome = run_shard_diff(
                &ShardDiffConfig {
                    sequences: 25,
                    ops_per_sequence: 50,
                    seed: 17,
                },
                shards,
            );
            assert!(
                outcome.failure.is_none(),
                "sharded admission diverged at {shards} shard(s):\n{}",
                outcome.failure.unwrap().reproducer()
            );
            assert_eq!(outcome.sequences_run, 25);
        }
    }

    #[test]
    fn dense_contended_waves_replay_identically() {
        // All-establish streams force full WAVE_CAP groups on a starved
        // network — maximum cross-shard contention, so the two-phase
        // stale-abort path gets exercised hard.
        let scenario = Scenario {
            nodes: 8,
            capacity_kbps: 800,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 11,
        };
        let mut rng = Rng::seed_from_u64(23);
        let ops: Vec<Op> = (0..48)
            .map(|_| Op::Establish {
                src: rng.next_u64(),
                dst: rng.next_u64(),
            })
            .collect();
        for shards in [2usize, 3, 4] {
            assert!(
                run_shard_diff_sequence(&scenario, &ops, shards).is_none(),
                "dense waves must match the monolith at {shards} shard(s)"
            );
        }
    }

    #[test]
    fn mismatched_pair_is_detected() {
        // Mutation check for the detector itself: pit two *different*
        // scenarios against each other — the smaller-capacity side must
        // reject sooner, and the lockstep comparison must say where.
        let scenario = Scenario {
            nodes: 10,
            capacity_kbps: 3_000,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 5,
        };
        let starved = Scenario {
            capacity_kbps: 100,
            ..scenario.clone()
        };
        let mut sharded = ShardedNetwork::new(scenario.network(), 2);
        let mut oracle = starved.network();
        let mut rng = Rng::seed_from_u64(99);
        let ops = generate_ops(&mut rng, 40);
        let divergence = diff_shard_networks(&mut sharded, &mut oracle, scenario.qos(), &ops)
            .expect("capacity mismatch must surface as a divergence");
        assert!(!divergence.detail.is_empty());
    }

    #[test]
    fn lost_reservation_release_is_caught_and_shrinks_small() {
        // The headline mutation self-test: a sharded engine that forgets
        // one two-phase release must be caught via the pending-ledger
        // leak check, and the witness must shrink to a handful of ops
        // (one wave is enough to leak).
        let shrunk = shard_mutation_witness(2001, 20, 4)
            .expect("lost-release fault must be detected within the budget");
        assert!(
            (1..=3).contains(&shrunk.len()),
            "leak witness should be tiny: {shrunk:?}"
        );
        assert!(
            shrunk.iter().any(|op| matches!(op, Op::Establish { .. })),
            "witness needs an establish to open a reservation: {shrunk:?}"
        );
    }

    #[test]
    fn reproducer_renders_scenario_shards_and_ops() {
        let scenario = Scenario::from_seed(4);
        let failure = ShardDiffFailure {
            case_seed: 4,
            shards: 4,
            scenario,
            ops: vec![Op::Establish { src: 1, dst: 2 }],
            shrunk: vec![Op::Establish { src: 1, dst: 2 }],
            divergence: ShardDiffDivergence {
                step: 0,
                op: Op::Establish { src: 1, dst: 2 },
                detail: "example".into(),
            },
        };
        let repro = failure.reproducer();
        assert!(repro.contains("Scenario {"));
        assert!(repro.contains("4 shard(s)"));
        assert!(repro.contains("run_shard_diff_sequence"));
    }

    #[test]
    fn diff_streams_match_the_invariant_fuzzer() {
        // The differential runner deliberately replays the exact case
        // seeds and op streams the invariant fuzzer uses, so a sequence
        // number from one report addresses the same workload in both.
        let seed = case_seed(2001, 3);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 20);
        assert!(crate::fuzz::run_sequence(&scenario, &ops, InjectedFault::None).is_none());
        assert!(run_shard_diff_sequence(&scenario, &ops, 3).is_none());
    }
}
