//! Differential fuzzing of the multi-daemon federation — the
//! `fuzz --diff-cluster` harness.
//!
//! [`ClusterSim`] claims *exact* equivalence to the monolith: same
//! admission outcomes, same connection ids, same final network state —
//! for any member count, through arbitrary daemon churn. This module
//! enforces the claim the same way `--diff-shard` polices the sharded
//! engine: fuzzed operation sequences replay against an in-process
//! N-member cluster and a sequential monolithic oracle in lockstep.
//! Maximal runs of consecutive `Establish` ops (capped at [`WAVE_CAP`])
//! go through [`ClusterSim::establish_wave`] — member-replica planning
//! plus the coordinator's two-phase ledger commit — while the oracle
//! establishes one at a time; every other operation is forwarded through
//! a member ([`ClusterSim::apply`]) and mirrored on the oracle via the
//! shared replay function. Between waves a **deterministic churn
//! stream** (seeded separately from the op stream) crashes, retires, and
//! rejoins members, so rebalancing and genesis-replay catch-up are
//! exercised on every sequence. After each wave and each singleton the
//! harness compares:
//!
//! * every request's own result (admission `Ok`/`Err`, ids included),
//! * the cluster-specific invariant that **no two-phase reservation
//!   leaked** (the coordinator's partition ledgers must be empty),
//! * the cumulative drop counter and the topology epoch,
//! * a full [`NetworkSnapshot`] of the authoritative network,
//! * and a full snapshot of **every live member replica** (the merged
//!   view each daemon would serve its clients).
//!
//! Divergences shrink with the fuzzer's delta-debugging engine
//! ([`crate::fuzz::shrink_by`]) into a copy-pasteable reproducer.
//!
//! [`ClusterFault::LosePrepare`] is the detector's own mutation check: a
//! coordinator that forgets to release one reservation must be caught
//! via the ledger-leak comparison — proof the harness has teeth. Used by
//! `fuzz --self-test`.

use crate::fuzz::{case_seed, generate_ops, shrink_by, Op, Scenario};
use drqos_cluster::{apply_committed, ApplyOutcome, ClusterFault, ClusterSim, MemberOp};
use drqos_core::channel::ConnectionId;
use drqos_core::error::AdmissionError;
use drqos_core::network::{EstablishRequest, Network};
use drqos_core::qos::ElasticQos;
use drqos_core::snapshot::NetworkSnapshot;
use drqos_sim::rng::Rng;
use drqos_topology::{LinkId, NodeId};

/// Largest establish run admitted as one wave (same cap as the shard
/// harness, and the daemon's `DRQOS_BATCH` bound).
pub const WAVE_CAP: usize = 16;

/// Seed-stream tweak for the churn schedule, so membership churn is
/// independent of the operation stream (changing one does not reshuffle
/// the other).
const CHURN_STREAM: u64 = 0xC1C1_C1C1;

/// Dead member ids a churn stream may resurrect beyond the initial
/// roster (JOIN of a brand-new daemon).
const EXTRA_MEMBERS: usize = 2;

/// How the cluster first disagreed with its monolithic oracle.
#[derive(Debug, Clone)]
pub struct ClusterDiffDivergence {
    /// Index of the diverging operation.
    pub step: usize,
    /// The diverging operation.
    pub op: Op,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl std::fmt::Display for ClusterDiffDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} ({:?}): {}", self.step, self.op, self.detail)
    }
}

/// One pending wave: requests plus the fuzz-stream steps they came from.
struct PendingWave {
    reqs: Vec<EstablishRequest>,
    steps: Vec<(usize, Op)>,
}

impl PendingWave {
    fn new() -> Self {
        PendingWave {
            reqs: Vec::new(),
            steps: Vec::new(),
        }
    }
}

/// Flushes a pending wave through [`ClusterSim::establish_wave`] on one
/// side and sequential `establish` on the oracle, then compares.
fn flush_wave(
    cluster: &mut ClusterSim,
    oracle: &mut Network,
    pending: &mut PendingWave,
) -> Option<ClusterDiffDivergence> {
    if pending.reqs.is_empty() {
        return None;
    }
    let reqs = std::mem::take(&mut pending.reqs);
    let steps = std::mem::take(&mut pending.steps);
    let wave_results: Vec<Result<ConnectionId, AdmissionError>> = cluster.establish_wave(&reqs);
    for (i, req) in reqs.iter().enumerate() {
        let got_oracle = oracle.establish(req.src, req.dst, req.qos);
        if wave_results[i] != got_oracle {
            let (step, op) = steps[i];
            return Some(ClusterDiffDivergence {
                step,
                op,
                detail: format!(
                    "establish({},{}) diverged: cluster {:?}, monolith {got_oracle:?}",
                    req.src.index(),
                    req.dst.index(),
                    wave_results[i]
                ),
            });
        }
    }
    let &(last_step, last_op) = steps.last().expect("non-empty wave has steps");
    compare_state(cluster, oracle).map(|detail| ClusterDiffDivergence {
        step: last_step,
        op: last_op,
        detail,
    })
}

/// Compares reservation ledgers, drop counter, topology epoch, the
/// authoritative snapshot, and every live replica's snapshot.
fn compare_state(cluster: &ClusterSim, oracle: &Network) -> Option<String> {
    if cluster.pending_prepares() != 0 {
        return Some(format!(
            "reservation leak: {} two-phase prepare(s) still pending between waves",
            cluster.pending_prepares()
        ));
    }
    let net = cluster.authoritative();
    if net.dropped_total() != oracle.dropped_total() {
        return Some(format!(
            "drop counter diverged: cluster {}, monolith {}",
            net.dropped_total(),
            oracle.dropped_total()
        ));
    }
    if net.topology_epoch() != oracle.topology_epoch() {
        return Some(format!(
            "topology epoch diverged: cluster {}, monolith {}",
            net.topology_epoch(),
            oracle.topology_epoch()
        ));
    }
    let snap_oracle = NetworkSnapshot::capture(oracle);
    let snap_cluster = NetworkSnapshot::capture(net);
    if snap_cluster != snap_oracle {
        return Some(format!(
            "authoritative {}",
            first_snapshot_mismatch(&snap_cluster, &snap_oracle)
        ));
    }
    for member in cluster.replicas() {
        let snap_member = NetworkSnapshot::capture(member.net());
        if snap_member != snap_oracle {
            return Some(format!(
                "replica m{} {}",
                member.id(),
                first_snapshot_mismatch(&snap_member, &snap_oracle)
            ));
        }
    }
    None
}

/// Pinpoints the first differing row of two snapshots.
fn first_snapshot_mismatch(cluster: &NetworkSnapshot, oracle: &NetworkSnapshot) -> String {
    for (a, b) in cluster.links.iter().zip(&oracle.links) {
        if a != b {
            return format!("link row diverged: cluster {a:?}, monolith {b:?}");
        }
    }
    for (a, b) in cluster.connections.iter().zip(&oracle.connections) {
        if a != b {
            return format!("connection row diverged: cluster {a:?}, monolith {b:?}");
        }
    }
    format!(
        "snapshot shape diverged: cluster {} links / {} connections, monolith {} / {}",
        cluster.links.len(),
        cluster.connections.len(),
        oracle.links.len(),
        oracle.connections.len()
    )
}

/// Applies one non-establish operation to both sides — forwarded through
/// a member on the cluster, replayed directly on the oracle via the
/// shared [`apply_committed`] — and reports the first mismatch. Operand
/// resolution mirrors `Harness::apply`, using the oracle as the
/// candidate-list side.
fn apply_singleton(cluster: &mut ClusterSim, oracle: &mut Network, op: Op) -> Option<String> {
    let member_op = match op {
        Op::Establish { .. } => unreachable!("establishes are waved, not singletons"),
        Op::Release { pick } => {
            let live: Vec<ConnectionId> = oracle.connections().map(|c| c.id()).collect();
            resolve(&live, pick).map(|&id| MemberOp::Release { id })
        }
        Op::FailLink { pick } => {
            let up: Vec<LinkId> = oracle.up_links().collect();
            resolve(&up, pick).map(|&link| MemberOp::FailLink { link })
        }
        Op::FailNode { pick } => {
            let candidates: Vec<NodeId> = oracle
                .graph()
                .nodes()
                .filter(|&n| {
                    oracle
                        .graph()
                        .neighbors(n)
                        .iter()
                        .any(|&(_, l)| oracle.link_usage(l).is_up())
                })
                .collect();
            resolve(&candidates, pick).map(|&node| MemberOp::FailNode { node })
        }
        Op::RepairLink { pick } => {
            let down: Vec<LinkId> = oracle
                .graph()
                .links()
                .map(|l| l.id())
                .filter(|&l| !oracle.link_usage(l).is_up())
                .collect();
            resolve(&down, pick).map(|&link| MemberOp::RepairLink { link })
        }
        Op::FailSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| oracle.link_usage(l).is_up()))
                })
                .collect();
            resolve(&candidates, pick).map(|&group| MemberOp::FailSrlg { group })
        }
        Op::RepairSrlg { pick } => {
            let candidates: Vec<usize> = (0..oracle.srlg_count())
                .filter(|&g| {
                    oracle
                        .srlg_links(g)
                        .is_some_and(|ls| ls.iter().any(|&l| !oracle.link_usage(l).is_up()))
                })
                .collect();
            resolve(&candidates, pick).map(|&group| MemberOp::RepairSrlg { group })
        }
    };
    if let Some(member_op) = member_op {
        let want: ApplyOutcome = apply_committed(oracle, &member_op.to_committed());
        match cluster.apply(member_op) {
            Ok(got) => {
                if got != want {
                    return Some(format!(
                        "{member_op:?} diverged: cluster {got:?}, monolith {want:?}"
                    ));
                }
            }
            Err(e) => return Some(format!("{member_op:?} failed to forward: {e}")),
        }
    }
    compare_state(cluster, oracle)
}

/// One deterministic churn step between waves: maybe crash, retire, or
/// (re)join a member. Ownership-only — the oracle is untouched — so the
/// state comparison afterwards proves churn never disturbs the network.
fn maybe_churn(cluster: &mut ClusterSim, roster_cap: usize, rng: &mut Rng) {
    if !rng.chance(0.3) {
        return;
    }
    let alive = cluster.alive_members();
    match rng.range_usize(3) {
        0 | 1 if alive.len() > 1 => {
            let victim = alive[rng.range_usize(alive.len())];
            let _ = if rng.chance(0.5) {
                cluster.crash(victim)
            } else {
                cluster.leave(victim)
            };
        }
        _ => {
            let dead = (0..roster_cap as u64).find(|m| !alive.contains(m));
            if let Some(m) = dead {
                let _ = cluster.join(m);
            }
        }
    }
}

/// Replays `ops` against a fresh N-member cluster and a fresh monolithic
/// oracle, with deterministic churn between waves, returning the first
/// divergence (or `None` when the whole sequence is byte-identical).
pub fn run_cluster_diff_sequence(
    scenario: &Scenario,
    ops: &[Op],
    members: usize,
    churn_seed: u64,
) -> Option<ClusterDiffDivergence> {
    let mut cluster = ClusterSim::new(scenario.network(), members, churn_seed);
    let mut oracle = scenario.network();
    let mut churn = Rng::seed_from_u64(churn_seed ^ CHURN_STREAM);
    diff_cluster_networks(&mut cluster, &mut oracle, scenario.qos(), ops, &mut churn)
}

/// The inner lockstep loop of [`run_cluster_diff_sequence`], exposed so
/// tests can arm [`ClusterFault`]s and prove the detector detects.
pub fn diff_cluster_networks(
    cluster: &mut ClusterSim,
    oracle: &mut Network,
    qos: ElasticQos,
    ops: &[Op],
    churn: &mut Rng,
) -> Option<ClusterDiffDivergence> {
    let n = oracle.graph().node_count() as u64;
    let roster_cap = cluster.alive_members().len() + EXTRA_MEMBERS;
    let mut pending = PendingWave::new();
    for (step, &op) in ops.iter().enumerate() {
        if let Op::Establish { src, dst } = op {
            let s = (src % n) as usize;
            let mut d = (dst % (n - 1)) as usize;
            if d >= s {
                d += 1;
            }
            pending.reqs.push(EstablishRequest {
                src: NodeId(s),
                dst: NodeId(d),
                qos,
            });
            pending.steps.push((step, op));
            if pending.reqs.len() >= WAVE_CAP {
                if let Some(div) = flush_wave(cluster, oracle, &mut pending) {
                    return Some(div);
                }
                maybe_churn(cluster, roster_cap, churn);
            }
            continue;
        }
        if let Some(div) = flush_wave(cluster, oracle, &mut pending) {
            return Some(div);
        }
        maybe_churn(cluster, roster_cap, churn);
        if let Some(detail) = apply_singleton(cluster, oracle, op) {
            return Some(ClusterDiffDivergence { step, op, detail });
        }
    }
    flush_wave(cluster, oracle, &mut pending)
}

/// Resolves a raw operand against a candidate list (None when empty).
fn resolve<T>(candidates: &[T], pick: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(pick % candidates.len() as u64) as usize])
    }
}

/// Budget and seed of a cluster differential run (same case seeds and op
/// streams as the invariant fuzzer and the other diff harnesses).
#[derive(Debug, Clone)]
pub struct ClusterDiffConfig {
    /// Number of independent operation sequences.
    pub sequences: usize,
    /// Operations per sequence.
    pub ops_per_sequence: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for ClusterDiffConfig {
    fn default() -> Self {
        ClusterDiffConfig {
            sequences: 100,
            ops_per_sequence: 60,
            seed: 2001,
        }
    }
}

/// A diverging case, shrunk and ready to report.
#[derive(Debug, Clone)]
pub struct ClusterDiffFailure {
    /// The derived case seed.
    pub case_seed: u64,
    /// The member count the case ran at.
    pub members: usize,
    /// The scenario the case ran under.
    pub scenario: Scenario,
    /// The original diverging sequence.
    pub ops: Vec<Op>,
    /// The shrunk reproducer.
    pub shrunk: Vec<Op>,
    /// The divergence at the shrunk sequence's failing step.
    pub divergence: ClusterDiffDivergence,
}

impl ClusterDiffFailure {
    /// Renders the shrunk case as a copy-pasteable Rust snippet.
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// drqos-testkit cluster-diff reproducer (case seed {:#x}, {} member(s), {} op(s) after shrinking)\n",
            self.case_seed,
            self.members,
            self.shrunk.len()
        ));
        out.push_str(&format!(
            "let scenario = Scenario {{ nodes: {}, capacity_kbps: {}, backup_count: {}, \
             increment_kbps: {}, graph_seed: {:#x} }};\n",
            self.scenario.nodes,
            self.scenario.capacity_kbps,
            self.scenario.backup_count,
            self.scenario.increment_kbps,
            self.scenario.graph_seed
        ));
        out.push_str("let ops = vec![\n");
        for op in &self.shrunk {
            out.push_str(&format!("    Op::{op:?},\n"));
        }
        out.push_str("];\n");
        out.push_str(&format!(
            "let divergence = run_cluster_diff_sequence(&scenario, &ops, {}, {:#x})\n    \
             .expect(\"reproduces the divergence\");\n",
            self.members, self.case_seed
        ));
        out.push_str(&format!("// {}\n", self.divergence));
        out
    }
}

/// Outcome of a cluster differential run.
#[derive(Debug, Clone)]
pub struct ClusterDiffOutcome {
    /// Sequences that replayed byte-identically.
    pub sequences_run: usize,
    /// The first diverging case, if any, already shrunk.
    pub failure: Option<ClusterDiffFailure>,
}

/// Runs the differential fuzzer at one member count: independent seeded
/// sequences (same streams as the invariant fuzzer), stopping at — and
/// shrinking — the first divergence.
pub fn run_cluster_diff(config: &ClusterDiffConfig, members: usize) -> ClusterDiffOutcome {
    for case in 0..config.sequences {
        let seed = case_seed(config.seed, case as u64);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A); // same stream as run_fuzz
        let ops = generate_ops(&mut rng, config.ops_per_sequence);
        if run_cluster_diff_sequence(&scenario, &ops, members, seed).is_some() {
            let shrunk = shrink_by(&ops, |candidate| {
                run_cluster_diff_sequence(&scenario, candidate, members, seed).map(|d| d.step)
            });
            let divergence = run_cluster_diff_sequence(&scenario, &shrunk, members, seed)
                .expect("shrink preserves the divergence");
            return ClusterDiffOutcome {
                sequences_run: case,
                failure: Some(ClusterDiffFailure {
                    case_seed: seed,
                    members,
                    scenario,
                    ops,
                    shrunk,
                    divergence,
                }),
            };
        }
    }
    ClusterDiffOutcome {
        sequences_run: config.sequences,
        failure: None,
    }
}

/// The cluster mutation check: arms [`ClusterFault::LosePrepare`] on the
/// coordinator and returns the first caught-and-shrunk witness, or
/// `None` if the detector failed to catch the leak — in which case the
/// detector itself has regressed. Used by `fuzz --self-test`.
pub fn cluster_mutation_witness(seed: u64, sequences: usize, members: usize) -> Option<Vec<Op>> {
    for case in 0..sequences {
        let case_seed = case_seed(seed, case as u64);
        let scenario = Scenario::from_seed(case_seed);
        let mut rng = Rng::seed_from_u64(case_seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 30);
        let fails_at = |candidate: &[Op]| {
            let mut cluster = ClusterSim::new(scenario.network(), members, case_seed);
            cluster.set_fault(ClusterFault::LosePrepare);
            let mut oracle = scenario.network();
            let mut churn = Rng::seed_from_u64(case_seed ^ CHURN_STREAM);
            diff_cluster_networks(
                &mut cluster,
                &mut oracle,
                scenario.qos(),
                candidate,
                &mut churn,
            )
            .map(|d| d.step)
        };
        if fails_at(&ops).is_some() {
            return Some(shrink_by(&ops, fails_at));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::InjectedFault;

    #[test]
    fn fuzzed_sequences_replay_identically_at_2_and_3_members() {
        for members in [2usize, 3] {
            let outcome = run_cluster_diff(
                &ClusterDiffConfig {
                    sequences: 20,
                    ops_per_sequence: 50,
                    seed: 17,
                },
                members,
            );
            assert!(
                outcome.failure.is_none(),
                "cluster diverged at {members} member(s):\n{}",
                outcome.failure.unwrap().reproducer()
            );
            assert_eq!(outcome.sequences_run, 20);
        }
    }

    #[test]
    fn dense_contended_waves_with_churn_replay_identically() {
        // All-establish streams force full WAVE_CAP waves on a starved
        // network while churn reassigns ownership between them: maximum
        // pressure on stale-footprint replans and orphan re-establishes.
        let scenario = Scenario {
            nodes: 8,
            capacity_kbps: 800,
            backup_count: 1,
            increment_kbps: 100,
            graph_seed: 11,
        };
        let mut rng = Rng::seed_from_u64(23);
        let ops: Vec<Op> = (0..48)
            .map(|_| Op::Establish {
                src: rng.next_u64(),
                dst: rng.next_u64(),
            })
            .collect();
        for members in [2usize, 3, 5] {
            assert!(
                run_cluster_diff_sequence(&scenario, &ops, members, 7).is_none(),
                "dense churned waves must match the monolith at {members} member(s)"
            );
        }
    }

    #[test]
    fn a_mid_wave_crash_still_matches_the_oracle() {
        // The orphan path: the crashed member's planned requests fall
        // back to serial re-establishment on the coordinator, which must
        // be invisible in the results and the final state.
        let scenario = Scenario::from_seed(3);
        let mut rng = Rng::seed_from_u64(31);
        let ops = generate_ops(&mut rng, 40);
        let mut cluster = ClusterSim::new(scenario.network(), 3, 3);
        cluster.set_fault(ClusterFault::CrashDuringWave(1));
        let mut oracle = scenario.network();
        let mut churn = Rng::seed_from_u64(3 ^ CHURN_STREAM);
        assert!(
            diff_cluster_networks(&mut cluster, &mut oracle, scenario.qos(), &ops, &mut churn)
                .is_none(),
            "a mid-wave member crash must not change any outcome"
        );
    }

    #[test]
    fn lost_prepare_is_caught_and_shrinks_small() {
        // The headline mutation self-test: a coordinator that forgets to
        // release one reservation must be caught via the ledger-leak
        // check, with a tiny shrunk witness (one wave leaks).
        let shrunk = cluster_mutation_witness(2001, 20, 3)
            .expect("lost-prepare fault must be detected within the budget");
        assert!(
            (1..=3).contains(&shrunk.len()),
            "leak witness should be tiny: {shrunk:?}"
        );
        assert!(
            shrunk.iter().any(|op| matches!(op, Op::Establish { .. })),
            "witness needs an establish to open a reservation: {shrunk:?}"
        );
    }

    #[test]
    fn reproducer_renders_scenario_members_and_ops() {
        let scenario = Scenario::from_seed(4);
        let failure = ClusterDiffFailure {
            case_seed: 4,
            members: 3,
            scenario,
            ops: vec![Op::Establish { src: 1, dst: 2 }],
            shrunk: vec![Op::Establish { src: 1, dst: 2 }],
            divergence: ClusterDiffDivergence {
                step: 0,
                op: Op::Establish { src: 1, dst: 2 },
                detail: "example".into(),
            },
        };
        let repro = failure.reproducer();
        assert!(repro.contains("Scenario {"));
        assert!(repro.contains("3 member(s)"));
        assert!(repro.contains("run_cluster_diff_sequence"));
    }

    #[test]
    fn diff_streams_match_the_invariant_fuzzer() {
        // Same case seeds and op streams as the invariant fuzzer and the
        // other differential harnesses: one sequence number addresses the
        // same workload everywhere.
        let seed = case_seed(2001, 3);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A);
        let ops = generate_ops(&mut rng, 20);
        assert!(crate::fuzz::run_sequence(&scenario, &ops, InjectedFault::None).is_none());
        assert!(run_cluster_diff_sequence(&scenario, &ops, 3, seed).is_none());
    }
}
