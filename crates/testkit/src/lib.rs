//! # drqos-testkit
//!
//! Deterministic chaos harness for the DR-connection stack. Three layers:
//!
//! * [`fuzz`] — a seeded **operation-sequence fuzzer** that drives
//!   [`drqos_core::network::Network`] through random interleavings of
//!   establish/release/fail/repair operations against the [`reference`]
//!   model, with automatic shrinking of failing sequences down to the
//!   shortest reproducer (printed as a copy-pasteable scenario).
//! * [`oracle`] — pluggable **invariant checks** run after every
//!   operation: the core accounting recomputation plus Δ-grid membership,
//!   liveness of committed paths, epoch monotonicity, and drop-counter
//!   conservation.
//! * [`golden`] — a **golden-trace harness**: canonical scenarios are
//!   serialized to a hand-rolled text format and compared byte-exact
//!   against files blessed into `tests/golden/` (update with
//!   `DRQOS_BLESS=1`).
//! * [`session`] — a **protocol-session replay** helper rendering
//!   command/response transcripts (`> cmd` / `< resp`) for golden
//!   comparison of line protocols; the handler is injected as a closure,
//!   so the testkit stays agnostic of `drqos-service`.
//!
//! A fourth, cross-crate layer lives in [`diff`]: fuzzer-generated churn
//! workloads whose simulated steady-state average bandwidth is compared
//! against the `drqos-analysis` Markov prediction within a stated
//! tolerance band.
//!
//! A fifth layer, [`cache_diff`], is differential: every fuzzed
//! operation sequence is replayed against route-cache-on and
//! route-cache-off networks in lockstep, demanding byte-identical
//! admission decisions, failure reports, drop counters, and snapshots
//! after every operation — with delta-debugging shrinking of any
//! divergence (`fuzz --diff-cache N` in CI).
//!
//! A sixth layer, [`batch_diff`], proves [`drqos_core::network::Network::establish_batch`]
//! exactly equivalent to sequential establishment: fuzzed sequences are
//! replayed with consecutive establish runs batched on one side and
//! applied one at a time on an oracle, compared on results and full
//! snapshots after every step, shrunk on divergence
//! (`fuzz --diff-batch N` in CI). An injectable batch-ordering fault
//! keeps the detector itself honest (`fuzz --self-test`).
//!
//! A seventh layer, [`cluster_diff`], federates the differential idea
//! across daemons: fuzzed sequences replay against an in-process
//! N-member [`drqos_cluster::ClusterSim`] — member-replica planning, the
//! coordinator's two-phase ledger, deterministic membership churn
//! between waves — and a monolithic oracle, comparing per-op results,
//! reservation ledgers, and full snapshots of the authoritative network
//! *and every live replica* (`fuzz --diff-cluster N` in CI). The
//! lost-prepare coordinator fault keeps this detector honest too.
//!
//! Everything is deterministic given the seeds; there are no external
//! dependencies and no wall-clock or thread-count influence on any
//! generated artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch_diff;
pub mod cache_diff;
pub mod cluster_diff;
pub mod diff;
pub mod fuzz;
pub mod golden;
pub mod oracle;
pub mod reference;
pub mod session;
pub mod shard_diff;

pub use batch_diff::{
    batch_mutation_witness, run_batch_diff, run_batch_diff_sequence, BatchDiffConfig,
    BatchDiffDivergence, BatchDiffFailure, BatchDiffOutcome, BatchFault,
};
pub use cache_diff::{
    run_cache_diff, run_cache_diff_sequence, CacheDiffConfig, CacheDiffDivergence,
    CacheDiffFailure, CacheDiffOutcome,
};
pub use cluster_diff::{
    cluster_mutation_witness, run_cluster_diff, run_cluster_diff_sequence, ClusterDiffConfig,
    ClusterDiffDivergence, ClusterDiffFailure, ClusterDiffOutcome,
};
pub use diff::{run_diff, DiffCase, DiffResult};
pub use fuzz::{
    generate_ops, run_fuzz, run_sequence, shrink, shrink_by, FuzzConfig, FuzzFailure, FuzzOutcome,
    Harness, InjectedFault, Op, Scenario, SequenceFailure,
};
pub use golden::{verify_golden, TraceRecorder};
pub use oracle::{InvariantCheck, Oracle, Violation};
pub use reference::ReferenceModel;
pub use shard_diff::{
    run_shard_diff, run_shard_diff_sequence, shard_mutation_witness, ShardDiffConfig,
    ShardDiffOutcome,
};
