//! Pluggable invariant oracles.
//!
//! An [`Oracle`] owns a set of [`InvariantCheck`]s and runs all of them
//! against a network state, collecting every [`Violation`] instead of
//! stopping at the first. Checks may keep state across calls (epoch and
//! drop-counter monotonicity need the previous observation), which is why
//! `check` takes `&mut self`.
//!
//! [`Oracle::standard`] bundles the full property set: the core
//! accounting recomputation (`Network::check_invariants`), capacity
//! bounds, `[B_min, B_max]`/Δ-grid membership, committed paths staying on
//! live links, `topology_epoch` monotonicity, and conservation of
//! `dropped_total`.

use drqos_core::network::Network;

/// One violated property, tagged with the check that found it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the check that fired.
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)
    }
}

/// A checked property over a network state.
pub trait InvariantCheck {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;
    /// Returns one message per violation found in `net` (empty = holds).
    fn check(&mut self, net: &Network) -> Vec<String>;
}

/// A pluggable set of invariant checks.
#[derive(Default)]
pub struct Oracle {
    checks: Vec<Box<dyn InvariantCheck>>,
}

impl Oracle {
    /// An oracle with no checks; add them with [`Oracle::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The full standard property set.
    pub fn standard() -> Self {
        let mut oracle = Self::new();
        oracle.push(Box::new(CoreAccounting));
        oracle.push(Box::new(CapacityBound));
        oracle.push(Box::new(QosGrid));
        oracle.push(Box::new(PathsOnLiveLinks));
        oracle.push(Box::new(EpochMonotonic::default()));
        oracle.push(Box::new(DroppedConservation::default()));
        oracle
    }

    /// Adds a check.
    pub fn push(&mut self, check: Box<dyn InvariantCheck>) {
        self.checks.push(check);
    }

    /// Runs every check, collecting all violations.
    pub fn run(&mut self, net: &Network) -> Vec<Violation> {
        let mut violations = Vec::new();
        for check in &mut self.checks {
            let name = check.name();
            violations.extend(check.check(net).into_iter().map(|message| Violation {
                check: name,
                message,
            }));
        }
        violations
    }
}

/// The core accounting recomputation, via `Network::check_invariants`.
pub struct CoreAccounting;

impl InvariantCheck for CoreAccounting {
    fn name(&self) -> &'static str {
        "core-accounting"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        net.check_invariants()
            .into_iter()
            .map(|v| v.to_string())
            .collect()
    }
}

/// Link capacity is never oversubscribed by guaranteed allocations.
pub struct CapacityBound;

impl InvariantCheck for CapacityBound {
    fn name(&self) -> &'static str {
        "capacity-bound"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        net.graph()
            .links()
            .filter_map(|l| {
                let u = net.link_usage(l.id());
                let allocated = u.primary_min_sum() + u.extra_sum();
                (allocated > u.capacity()).then(|| {
                    format!(
                        "{}: allocated {} exceeds capacity {}",
                        l.id(),
                        allocated,
                        u.capacity()
                    )
                })
            })
            .collect()
    }
}

/// Every connection's bandwidth sits within `[B_min, B_max]` on the
/// Δ-grid (i.e. maps back to a valid level).
pub struct QosGrid;

impl InvariantCheck for QosGrid {
    fn name(&self) -> &'static str {
        "qos-grid"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        net.connections()
            .filter_map(|c| {
                let bw = c.bandwidth();
                if bw < c.qos().min() || bw > c.qos().max() {
                    Some(format!(
                        "{}: bandwidth {bw} outside [{}, {}]",
                        c.id(),
                        c.qos().min(),
                        c.qos().max()
                    ))
                } else if c.qos().level_of(bw).is_none() {
                    Some(format!(
                        "{}: bandwidth {bw} off the Δ-grid (Δ = {})",
                        c.id(),
                        c.qos().increment()
                    ))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// No committed path — primary or backup — crosses a down link. (Failures
/// drop or re-route crossing primaries and unregister crossing backups,
/// so a stale path here means the failure handler missed something.)
pub struct PathsOnLiveLinks;

impl InvariantCheck for PathsOnLiveLinks {
    fn name(&self) -> &'static str {
        "paths-on-live-links"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        let mut out = Vec::new();
        for c in net.connections() {
            for &l in c.primary().links() {
                if !net.link_usage(l).is_up() {
                    out.push(format!("{}: primary crosses down link {l}", c.id()));
                }
            }
            for (i, b) in c.backups().iter().enumerate() {
                for &l in b.links() {
                    if !net.link_usage(l).is_up() {
                        out.push(format!("{}: backup #{i} crosses down link {l}", c.id()));
                    }
                }
            }
        }
        out
    }
}

/// `topology_epoch` never moves backwards.
#[derive(Default)]
pub struct EpochMonotonic {
    last: Option<u64>,
}

impl InvariantCheck for EpochMonotonic {
    fn name(&self) -> &'static str {
        "epoch-monotonic"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        let now = net.topology_epoch();
        let out = match self.last {
            Some(last) if now < last => {
                vec![format!("topology_epoch went backwards: {last} -> {now}")]
            }
            _ => Vec::new(),
        };
        self.last = Some(now);
        out
    }
}

/// `dropped_total` never decreases, and only grows while connections
/// actually leave the table (conservation: drops + live ≥ previous live).
#[derive(Default)]
pub struct DroppedConservation {
    last: Option<(u64, usize)>,
}

impl InvariantCheck for DroppedConservation {
    fn name(&self) -> &'static str {
        "dropped-conservation"
    }

    fn check(&mut self, net: &Network) -> Vec<String> {
        let now = (net.dropped_total(), net.len());
        let mut out = Vec::new();
        if let Some((dropped, live)) = self.last {
            if now.0 < dropped {
                out.push(format!(
                    "dropped_total went backwards: {dropped} -> {}",
                    now.0
                ));
            }
            // Each new drop must correspond to a connection that left the
            // table: live can shrink by at most (releases + drops), and
            // drops alone can never exceed the connections that existed.
            let new_drops = now.0.saturating_sub(dropped);
            if new_drops > 0 && live.saturating_sub(now.1) < new_drops as usize {
                out.push(format!(
                    "{new_drops} drops recorded but live count only went {live} -> {}",
                    now.1
                ));
            }
        }
        self.last = Some(now);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::{Network, NetworkConfig};
    use drqos_core::qos::ElasticQos;
    use drqos_topology::{regular, NodeId};

    #[test]
    fn standard_oracle_passes_on_healthy_network() {
        let mut net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let mut oracle = Oracle::standard();
        assert!(oracle.run(&net).is_empty());
        net.establish(NodeId(0), NodeId(3), ElasticQos::paper_video(100))
            .unwrap();
        assert!(oracle.run(&net).is_empty());
        let link = net.up_links().next().unwrap();
        net.fail_link(link).unwrap();
        assert!(oracle.run(&net).is_empty());
    }

    #[test]
    fn stateful_checks_track_history() {
        let mut net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let mut epoch = EpochMonotonic::default();
        assert!(epoch.check(&net).is_empty());
        net.fail_link(drqos_topology::LinkId(0)).unwrap();
        assert!(epoch.check(&net).is_empty());
        // A fresh network looks like the epoch rolled back.
        let fresh = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        assert_eq!(epoch.check(&fresh).len(), 1);
    }

    #[test]
    fn violations_carry_the_check_name() {
        let mut oracle = Oracle::new();
        struct AlwaysFires;
        impl InvariantCheck for AlwaysFires {
            fn name(&self) -> &'static str {
                "always-fires"
            }
            fn check(&mut self, _net: &Network) -> Vec<String> {
                vec!["boom".into()]
            }
        }
        oracle.push(Box::new(AlwaysFires));
        let net = Network::new(regular::ring(4).unwrap(), NetworkConfig::default());
        let vs = oracle.run(&net);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].check, "always-fires");
        assert!(vs[0].to_string().contains("[always-fires] boom"));
    }
}
