//! Differential checking: simulation vs the analytic Markov model.
//!
//! Fuzzer-generated churn workloads are run through the full simulator
//! ([`drqos_core::experiment::run_churn`], via
//! [`drqos_analysis::pipeline::analyze`]) and the resulting steady-state
//! average bandwidth is compared against the paper's Markov-chain
//! prediction. The two are independent computations of the same quantity
//! — the simulator walks events, the model solves a birth–death chain
//! from measured transition parameters — so agreement within a tolerance
//! band is a strong end-to-end check on both.
//!
//! The tolerance is deliberately loose (the paper itself reports model
//! error growing with load, and our CI cases run at reduced scale where
//! stochastic noise is larger): the check catches gross divergence
//! (wrong chain, broken estimator, corrupted accounting), not small
//! biases.

use drqos_analysis::pipeline::analyze;
use drqos_core::experiment::ExperimentConfig;
use drqos_sim::rng::{Rng, SplitMix64};
use drqos_topology::waxman;

/// One generated differential workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffCase {
    /// Nodes in the random topology.
    pub nodes: usize,
    /// Warm-up connection target.
    pub target: usize,
    /// Churn events after warm-up.
    pub churn: usize,
    /// QoS increment Δ in Kbps.
    pub increment: u64,
    /// Link failure rate γ.
    pub gamma: f64,
    /// Seed for both the topology and the experiment.
    pub seed: u64,
}

impl DiffCase {
    /// Derives a case from a seed: moderate sizes so a handful of cases
    /// stays affordable in CI, loads spread from light to congested.
    pub fn from_seed(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        DiffCase {
            nodes: 40 + (mix.next_u64() % 21) as usize, // 40..=60
            target: [50, 150, 400][(mix.next_u64() % 3) as usize],
            churn: 400,
            increment: [50, 100][(mix.next_u64() % 2) as usize],
            gamma: [0.0, 1e-6][(mix.next_u64() % 2) as usize],
            seed: mix.next_u64(),
        }
    }
}

/// The outcome of one differential run.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// The case that ran.
    pub case: DiffCase,
    /// Simulated time-weighted average bandwidth (Kbps).
    pub sim: f64,
    /// The Markov model's prediction (None when the chain degenerated,
    /// e.g. no churn arrivals were recorded).
    pub model: Option<f64>,
    /// `|model − sim| / sim` when both are available and sim > 0.
    pub rel_error: Option<f64>,
}

impl DiffResult {
    /// Whether the model tracked the simulation within `tolerance`
    /// (relative). Cases without a model prediction pass vacuously —
    /// degenerate chains are legal at extreme parameters.
    pub fn within(&self, tolerance: f64) -> bool {
        self.rel_error.is_none_or(|e| e <= tolerance)
    }
}

/// Runs one differential case.
pub fn run_diff(case: &DiffCase) -> DiffResult {
    let graph = waxman::paper_waxman(case.nodes)
        .generate(&mut Rng::seed_from_u64(case.seed))
        .expect("paper Waxman parameters are valid");
    let config = ExperimentConfig {
        churn_events: case.churn,
        gamma: case.gamma,
        seed: case.seed,
        ..ExperimentConfig::paper_default(case.target, case.increment)
    };
    let analysis = analyze(graph, &config);
    let sim = analysis.report.avg_bandwidth_sim;
    let model = analysis.analytic_avg;
    let rel_error = match model {
        Some(m) if sim > 0.0 => Some((m - sim).abs() / sim),
        _ => None,
    };
    DiffResult {
        case: case.clone(),
        sim,
        model,
        rel_error,
    }
}

/// Runs `count` seeded differential cases; returns one message per case
/// that fell outside the tolerance band.
pub fn check_diff(base_seed: u64, count: usize, tolerance: f64) -> Vec<String> {
    (0..count)
        .map(|i| {
            let case = DiffCase::from_seed(crate::fuzz::case_seed(base_seed, i as u64));
            run_diff(&case)
        })
        .filter(|r| !r.within(tolerance))
        .map(|r| {
            format!(
                "case {:?}: sim {:.1} vs model {:.1} (relative error {:.2} > {tolerance})",
                r.case,
                r.sim,
                r.model.unwrap_or(f64::NAN),
                r.rel_error.unwrap_or(f64::NAN)
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        assert_eq!(DiffCase::from_seed(5), DiffCase::from_seed(5));
        let a = DiffCase::from_seed(1);
        assert!((40..=60).contains(&a.nodes));
        assert!([50u64, 100].contains(&a.increment));
    }

    #[test]
    fn model_tracks_simulation_on_one_case() {
        // One mid-load case end to end; the full band runs in CI via the
        // fuzz binary's --diff flag.
        let case = DiffCase {
            nodes: 50,
            target: 150,
            churn: 300,
            increment: 100,
            gamma: 0.0,
            seed: 2001,
        };
        let result = run_diff(&case);
        assert!(result.sim >= 100.0 && result.sim <= 500.0);
        assert!(
            result.within(0.45),
            "sim {:.1} vs model {:?}",
            result.sim,
            result.model
        );
    }
}
