//! Golden-trace recording and byte-exact verification.
//!
//! A [`TraceRecorder`] wraps a [`Network`] and logs every operation plus
//! periodic state snapshots into a hand-rolled line-oriented text format
//! (no external crates — the build is offline). Canonical scenarios live
//! in [`scenarios`]; their traces are blessed into `tests/golden/` and
//! compared byte-exact on every run, so behavioural drift introduced by a
//! refactor fails CI with a first-differing-line diff.
//!
//! Workflow:
//!
//! * normal run — [`verify_golden`] reads `<dir>/<name>.txt` and compares.
//! * `DRQOS_BLESS=1` — the trace is (re)written instead; commit the file.
//!
//! Traces contain only simulation-determined values (no wall clock, no
//! thread count, no floats), so they are stable across machines, worker
//! counts, and debug/release builds.

use drqos_core::channel::ConnectionId;
use drqos_core::network::{FailureReport, Network};
use drqos_core::qos::ElasticQos;
use drqos_topology::paths::Path;
use drqos_topology::{LinkId, NodeId};
use std::fmt::Write as _;
use std::path::Path as FsPath;

/// Records a line-oriented operation trace while driving a network.
pub struct TraceRecorder {
    net: Network,
    qos: ElasticQos,
    lines: Vec<String>,
}

fn fmt_path(path: &Path) -> String {
    path.nodes()
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

fn fmt_ids(ids: &[ConnectionId]) -> String {
    let inner = ids
        .iter()
        .map(|id| id.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("[{inner}]")
}

impl TraceRecorder {
    /// Starts a trace over `net`, using `qos` for every establish.
    pub fn new(name: &str, net: Network, qos: ElasticQos) -> Self {
        let mut rec = TraceRecorder {
            net,
            qos,
            lines: Vec::new(),
        };
        rec.lines.push(format!(
            "# drqos golden trace: {name} (nodes={} links={})",
            rec.net.graph().node_count(),
            rec.net.graph().link_count()
        ));
        rec
    }

    /// The network under the recorder.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Attempts an establish, recording the outcome.
    pub fn establish(&mut self, src: usize, dst: usize) -> Option<ConnectionId> {
        match self.net.establish(NodeId(src), NodeId(dst), self.qos) {
            Ok(id) => {
                let c = self.net.connection(id).expect("just established");
                let line = format!(
                    "establish {id} n{src}->n{dst} bw={} primary={} backups={}",
                    c.bandwidth().as_kbps(),
                    fmt_path(c.primary()),
                    c.backup_count()
                );
                self.lines.push(line);
                Some(id)
            }
            Err(e) => {
                self.lines.push(format!("reject n{src}->n{dst} ({e})"));
                None
            }
        }
    }

    /// Releases a connection, recording the freed bandwidth.
    pub fn release(&mut self, id: ConnectionId) {
        let conn = self.net.release(id).expect("trace releases live ids");
        self.lines
            .push(format!("release {id} freed={}", conn.bandwidth().as_kbps()));
    }

    fn fail_line(report: &FailureReport) -> String {
        format!(
            "fail {} activated={} dropped={} lost_backup={} retreated={}",
            report.link,
            fmt_ids(&report.activated),
            fmt_ids(&report.dropped),
            fmt_ids(&report.lost_backup),
            fmt_ids(&report.retreated)
        )
    }

    /// Fails a link, recording the full failure report.
    pub fn fail_link(&mut self, link: LinkId) {
        let report = self.net.fail_link(link).expect("trace fails up links");
        self.lines.push(Self::fail_line(&report));
    }

    /// Fails a node, recording one line per downed link.
    pub fn fail_node(&mut self, node: usize) {
        let reports = self
            .net
            .fail_node(NodeId(node))
            .expect("trace fails live nodes");
        self.lines
            .push(format!("fail_node n{node} links={}", reports.len()));
        for report in &reports {
            self.lines.push(Self::fail_line(report));
        }
    }

    /// Repairs a link, recording which connections regained backups.
    pub fn repair_link(&mut self, link: LinkId) {
        let regained = self
            .net
            .repair_link(link)
            .expect("trace repairs down links");
        self.lines
            .push(format!("repair {link} regained={}", fmt_ids(&regained)));
    }

    /// Records a state snapshot line (counts and totals only — no
    /// floats, so the trace is byte-stable).
    pub fn state(&mut self) {
        self.lines.push(format!(
            "state conns={} bw={} dropped={} epoch={}",
            self.net.len(),
            self.net.total_primary_bandwidth().as_kbps(),
            self.net.dropped_total(),
            self.net.topology_epoch()
        ));
    }

    /// Validates the final network and returns the trace text.
    pub fn finish(mut self) -> String {
        self.net.validate();
        self.state();
        let mut out = String::new();
        for line in &self.lines {
            writeln!(out, "{line}").expect("writing to String cannot fail");
        }
        out
    }
}

/// Compares `content` against `<dir>/<name>.txt` byte-exact, or rewrites
/// the file when `DRQOS_BLESS=1` is set.
///
/// # Errors
///
/// Returns a message naming the first differing line (or the missing
/// file, or the I/O failure in bless mode).
pub fn verify_golden(dir: &FsPath, name: &str, content: &str) -> Result<(), String> {
    let path = dir.join(format!("{name}.txt"));
    if drqos_core::env::bless() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        std::fs::write(&path, content).map_err(|e| format!("blessing {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing golden trace {} ({e}); run once with DRQOS_BLESS=1 to create it",
            path.display()
        )
    })?;
    if expected == content {
        return Ok(());
    }
    // Byte inequality: locate the first differing line for the report.
    let mut exp_lines = expected.lines();
    let mut got_lines = content.lines();
    let mut lineno = 1usize;
    loop {
        match (exp_lines.next(), got_lines.next()) {
            (Some(e), Some(g)) if e == g => lineno += 1,
            (e, g) => {
                return Err(format!(
                    "golden trace {} diverged at line {lineno}:\n  expected: {}\n  actual:   {}\n\
                     (re-bless with DRQOS_BLESS=1 if the change is intentional)",
                    path.display(),
                    e.unwrap_or("<end of file>"),
                    g.unwrap_or("<end of file>")
                ));
            }
        }
    }
}

/// The canonical scenarios blessed into `tests/golden/`.
pub mod scenarios {
    use super::TraceRecorder;
    use drqos_core::network::{Network, NetworkConfig};
    use drqos_core::qos::{Bandwidth, ElasticQos};
    use drqos_topology::regular;

    /// `ring_failover`: a 6-ring where a primary-link failure activates
    /// the backup, the link is repaired, and everything is torn down.
    pub fn ring_failover() -> (&'static str, String) {
        let net = Network::new(regular::ring(6).unwrap(), NetworkConfig::default());
        let mut rec = TraceRecorder::new("ring_failover", net, ElasticQos::paper_video(100));
        let a = rec.establish(0, 3).expect("empty ring admits");
        let b = rec.establish(1, 4).expect("10 Mbps ring admits two");
        rec.state();
        let link = rec.network().connection(a).unwrap().primary().links()[0];
        rec.fail_link(link);
        rec.state();
        rec.repair_link(link);
        rec.release(a);
        rec.release(b);
        ("ring_failover", rec.finish())
    }

    /// `contention_retreat`: a capacity-starved ring where arrivals force
    /// retreats and a departure lets survivors grow back.
    pub fn contention_retreat() -> (&'static str, String) {
        let net = Network::new(
            regular::ring(6).unwrap(),
            NetworkConfig {
                capacity: Bandwidth::kbps(800),
                ..NetworkConfig::default()
            },
        );
        let mut rec = TraceRecorder::new("contention_retreat", net, ElasticQos::paper_video(100));
        let a = rec.establish(0, 2).expect("first fits");
        let b = rec.establish(1, 3).expect("second fits after retreats");
        rec.establish(0, 3); // may be rejected: also part of the contract
        rec.state();
        rec.release(b);
        rec.state();
        rec.release(a);
        ("contention_retreat", rec.finish())
    }

    /// `node_outage`: a torus node failure downs four links at once,
    /// then two of them are repaired.
    pub fn node_outage() -> (&'static str, String) {
        let net = Network::new(regular::torus(4, 4).unwrap(), NetworkConfig::default());
        let mut rec = TraceRecorder::new("node_outage", net, ElasticQos::paper_video(50));
        rec.establish(0, 10).expect("empty torus admits");
        rec.establish(3, 12).expect("empty torus admits");
        rec.establish(1, 14).expect("empty torus admits");
        rec.state();
        rec.fail_node(5);
        rec.state();
        // Repair the first two downed links (id order — deterministic).
        let down: Vec<_> = rec
            .network()
            .graph()
            .links()
            .map(|l| l.id())
            .filter(|&l| !rec.network().link_usage(l).is_up())
            .take(2)
            .collect();
        for l in down {
            rec.repair_link(l);
        }
        ("node_outage", rec.finish())
    }

    /// All canonical scenarios, for the test harness and the fuzz binary.
    pub fn all() -> Vec<(&'static str, String)> {
        vec![ring_failover(), contention_retreat(), node_outage()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        for _ in 0..2 {
            let (_, a) = scenarios::ring_failover();
            let (_, b) = scenarios::ring_failover();
            assert_eq!(a, b);
        }
        let (_, t) = scenarios::node_outage();
        assert!(t.contains("fail_node n5 links=4"));
        assert!(t.lines().last().unwrap().starts_with("state "));
    }

    #[test]
    fn verify_reports_first_diverging_line() {
        let dir = std::env::temp_dir().join("drqos-golden-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("case.txt"), "alpha\nbeta\n").unwrap();
        assert!(verify_golden(&dir, "case", "alpha\nbeta\n").is_ok());
        let err = verify_golden(&dir, "case", "alpha\ngamma\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("beta") && err.contains("gamma"), "{err}");
        let missing = verify_golden(&dir, "absent", "x").unwrap_err();
        assert!(missing.contains("DRQOS_BLESS"), "{missing}");
    }
}
