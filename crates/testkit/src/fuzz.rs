//! The operation-sequence fuzzer.
//!
//! A seeded generator drives a [`Network`] through random interleavings
//! of establish / release / fail-link / fail-node / repair-link
//! operations. After every operation the [`Harness`] compares the network
//! against the [`ReferenceModel`] and runs the standard [`Oracle`]; any
//! violation fails the sequence.
//!
//! Operand encoding makes sequences *shrinkable*: every operation carries
//! raw `u64` operands that are resolved **modulo the current candidate
//! list** (live connections, up links, ...) at application time, so
//! deleting earlier operations never invalidates later ones — they just
//! resolve to different (still legal) targets. [`shrink`] exploits this
//! with delta-debugging: it removes ever-smaller chunks while the
//! sequence still fails, converging on a minimal reproducer that
//! [`FuzzFailure::reproducer`] prints as copy-pasteable Rust.
//!
//! [`InjectedFault`] deliberately desynchronizes the books mid-run — the
//! mutation check proving the detector actually detects (and the shrinker
//! actually shrinks; see `testkit_chaos.rs`).

use crate::oracle::{Oracle, Violation};
use crate::reference::ReferenceModel;
use drqos_core::channel::ConnectionId;
use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_sim::rng::{Rng, SplitMix64};
use drqos_topology::graph::Graph;
use drqos_topology::{waxman, LinkId, NodeId};

/// One fuzzer operation. Operands are raw and position-independent: they
/// are resolved against the network's current candidate lists when the
/// operation is applied (see the module docs), so any subsequence of a
/// generated sequence is itself a valid sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Attempt a DR-connection between two nodes (resolved mod node
    /// count, destination skewed off the source). Admission rejections
    /// are legal outcomes, not failures.
    Establish {
        /// Raw source selector.
        src: u64,
        /// Raw destination selector.
        dst: u64,
    },
    /// Release a live connection (resolved mod the live list; no-op when
    /// none are live).
    Release {
        /// Raw selector into the live-connection list.
        pick: u64,
    },
    /// Fail an up link (resolved mod the up-link list; no-op when every
    /// link is already down).
    FailLink {
        /// Raw selector into the up-link list.
        pick: u64,
    },
    /// Fail a node that still has at least one up adjacent link (no-op
    /// when none qualifies).
    FailNode {
        /// Raw selector into the qualifying-node list.
        pick: u64,
    },
    /// Repair a down link (resolved mod the down-link list; no-op when
    /// everything is up).
    RepairLink {
        /// Raw selector into the down-link list.
        pick: u64,
    },
    /// Fire a shared-risk link group: fail every currently-up member
    /// atomically (resolved mod the groups-with-an-up-member list; no-op
    /// when every group is fully down).
    FailSrlg {
        /// Raw selector into the groups-with-an-up-member list.
        pick: u64,
    },
    /// Repair a shared-risk link group: bring every down member back up
    /// (resolved mod the groups-with-a-down-member list; no-op when every
    /// group is fully up).
    RepairSrlg {
        /// Raw selector into the groups-with-a-down-member list.
        pick: u64,
    },
}

/// A deliberately injected accounting bug, used as a mutation check: the
/// fuzzer must catch it and shrink the witness to a handful of
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectedFault {
    /// No fault: the harness mirrors every operation faithfully.
    #[default]
    None,
    /// Releases are applied to the network but *not* to the reference —
    /// the mirrored books keep charging the freed bandwidth, exactly the
    /// drift a forgotten `remove_primary` would cause.
    LoseRelease,
    /// Shared-risk group repairs are applied to the network but *not* to
    /// the reference — its mirrored link states stay down, the drift a
    /// repair path that forgot to fan out over the group would cause.
    LoseSrlgRepair,
}

/// Deterministic parameters of one fuzz case: topology and QoS template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Node count of the random Waxman topology.
    pub nodes: usize,
    /// Uniform link capacity in Kbps.
    pub capacity_kbps: u64,
    /// Backups per connection.
    pub backup_count: usize,
    /// Δ of the elastic 100–500 Kbps QoS template.
    pub increment_kbps: u64,
    /// Seed for the topology generator.
    pub graph_seed: u64,
}

impl Scenario {
    /// Derives scenario parameters from a case seed (split-mix mixed, so
    /// nearby seeds give unrelated scenarios).
    pub fn from_seed(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let nodes = 8 + (mix.next_u64() % 17) as usize; // 8..=24
        let capacity_kbps = [800, 1_500, 3_000][(mix.next_u64() % 3) as usize];
        let backup_count = 1 + (mix.next_u64() % 2) as usize; // 1..=2
        let increment_kbps = [50, 100, 200][(mix.next_u64() % 3) as usize];
        Scenario {
            nodes,
            capacity_kbps,
            backup_count,
            increment_kbps,
            graph_seed: mix.next_u64(),
        }
    }

    /// The QoS template every establish uses.
    pub fn qos(&self) -> ElasticQos {
        ElasticQos::paper_video(self.increment_kbps)
    }

    /// Builds the scenario's topology.
    pub fn graph(&self) -> Graph {
        waxman::WaxmanConfig::new(self.nodes, 0.8, 0.4)
            .expect("static parameters are valid")
            .generate(&mut Rng::seed_from_u64(self.graph_seed))
            .expect("valid config")
    }

    /// Builds the scenario's network. Three seeded shared-risk groups of
    /// two links each are registered (derived from `graph_seed`, so the
    /// five scenario fields stay a complete reproducer); registration is
    /// inert until a [`Op::FailSrlg`] fires.
    pub fn network(&self) -> Network {
        let mut net = Network::new(
            self.graph(),
            NetworkConfig {
                capacity: Bandwidth::kbps(self.capacity_kbps),
                backup_count: self.backup_count,
                ..NetworkConfig::default()
            },
        );
        drqos_core::register_seeded_srlgs(&mut net, SRLG_GROUPS, SRLG_GROUP_SIZE, self.graph_seed);
        net
    }

    /// Builds the scenario's network with the route cache explicitly
    /// forced on or off, ignoring the `DRQOS_ROUTE_CACHE` environment
    /// (differential runs must control both sides themselves). Registers
    /// the same seeded shared-risk groups as [`Scenario::network`].
    pub fn network_with_cache(&self, route_cache: bool) -> Network {
        let mut net = Network::new(
            self.graph(),
            NetworkConfig {
                capacity: Bandwidth::kbps(self.capacity_kbps),
                backup_count: self.backup_count,
                route_cache,
                ..NetworkConfig::default()
            },
        );
        drqos_core::register_seeded_srlgs(&mut net, SRLG_GROUPS, SRLG_GROUP_SIZE, self.graph_seed);
        net
    }
}

/// Shared-risk groups registered on every fuzz network.
const SRLG_GROUPS: usize = 3;
/// Links per fuzz shared-risk group (small, so groups overlap node
/// failures often enough to exercise the skip-already-down path).
const SRLG_GROUP_SIZE: usize = 2;

/// Network + reference model + oracle, stepped one [`Op`] at a time.
pub struct Harness {
    net: Network,
    reference: ReferenceModel,
    oracle: Oracle,
    qos: ElasticQos,
    fault: InjectedFault,
}

impl Harness {
    /// Builds the harness for a scenario.
    pub fn new(scenario: &Scenario, fault: InjectedFault) -> Self {
        let net = scenario.network();
        let reference = ReferenceModel::new(&net);
        Harness {
            net,
            reference,
            oracle: Oracle::standard(),
            qos: scenario.qos(),
            fault,
        }
    }

    /// The network under test.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Applies one operation, then cross-checks network vs reference and
    /// runs every oracle. Returns all violations (empty = healthy).
    pub fn apply(&mut self, op: Op) -> Vec<Violation> {
        match op {
            Op::Establish { src, dst } => {
                let n = self.net.graph().node_count() as u64;
                let s = (src % n) as usize;
                let mut d = (dst % (n - 1)) as usize;
                if d >= s {
                    d += 1;
                }
                if let Ok(id) = self.net.establish(NodeId(s), NodeId(d), self.qos) {
                    self.reference.on_establish(&self.net, id);
                }
            }
            Op::Release { pick } => {
                let live: Vec<ConnectionId> = self.net.connections().map(|c| c.id()).collect();
                if let Some(&id) = resolve(&live, pick) {
                    self.net.release(id).expect("picked from the live list");
                    if self.fault != InjectedFault::LoseRelease {
                        self.reference.on_release(id);
                    }
                }
            }
            Op::FailLink { pick } => {
                let up: Vec<LinkId> = self.net.up_links().collect();
                if let Some(&link) = resolve(&up, pick) {
                    let report = self.net.fail_link(link).expect("picked from the up list");
                    self.reference.on_fail_link(&self.net, &report);
                }
            }
            Op::FailNode { pick } => {
                let candidates: Vec<NodeId> = self
                    .net
                    .graph()
                    .nodes()
                    .filter(|&n| {
                        self.net
                            .graph()
                            .neighbors(n)
                            .iter()
                            .any(|&(_, l)| self.net.link_usage(l).is_up())
                    })
                    .collect();
                if let Some(&node) = resolve(&candidates, pick) {
                    let reports = self
                        .net
                        .fail_node(node)
                        .expect("candidate has an up adjacent link");
                    for report in &reports {
                        self.reference.on_fail_link(&self.net, report);
                    }
                }
            }
            Op::RepairLink { pick } => {
                let down: Vec<LinkId> = self
                    .net
                    .graph()
                    .links()
                    .map(|l| l.id())
                    .filter(|&l| !self.net.link_usage(l).is_up())
                    .collect();
                if let Some(&link) = resolve(&down, pick) {
                    self.net
                        .repair_link(link)
                        .expect("picked from the down list");
                    self.reference.on_repair_link(link);
                }
            }
            Op::FailSrlg { pick } => {
                let candidates: Vec<usize> = (0..self.net.srlg_count())
                    .filter(|&g| {
                        self.net
                            .srlg_links(g)
                            .is_some_and(|ls| ls.iter().any(|&l| self.net.link_usage(l).is_up()))
                    })
                    .collect();
                if let Some(&group) = resolve(&candidates, pick) {
                    let reports = self
                        .net
                        .fail_srlg(group)
                        .expect("candidate group has an up member");
                    for report in &reports {
                        self.reference.on_fail_link(&self.net, report);
                    }
                }
            }
            Op::RepairSrlg { pick } => {
                let candidates: Vec<usize> = (0..self.net.srlg_count())
                    .filter(|&g| {
                        self.net
                            .srlg_links(g)
                            .is_some_and(|ls| ls.iter().any(|&l| !self.net.link_usage(l).is_up()))
                    })
                    .collect();
                if let Some(&group) = resolve(&candidates, pick) {
                    // Capture the members being repaired before the call:
                    // repair_srlg returns connections, but the reference is
                    // told per link.
                    let down: Vec<LinkId> = self
                        .net
                        .srlg_links(group)
                        .expect("candidate group exists")
                        .iter()
                        .copied()
                        .filter(|&l| !self.net.link_usage(l).is_up())
                        .collect();
                    self.net
                        .repair_srlg(group)
                        .expect("candidate group has a down member");
                    if self.fault != InjectedFault::LoseSrlgRepair {
                        for link in down {
                            self.reference.on_repair_link(link);
                        }
                    }
                }
            }
        }
        let mut violations: Vec<Violation> = self
            .reference
            .compare(&self.net)
            .into_iter()
            .map(|message| Violation {
                check: "reference-model",
                message,
            })
            .collect();
        violations.extend(self.oracle.run(&self.net));
        violations
    }
}

/// Resolves a raw operand against a candidate list (None when empty).
fn resolve<T>(candidates: &[T], pick: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(pick % candidates.len() as u64) as usize])
    }
}

/// Generates `len` operations with the standard weights (40% establish,
/// 25% release, 13% fail-link, 5% fail-node, 3% fail-srlg, 3%
/// repair-srlg, 11% repair-link).
pub fn generate_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let roll = rng.range_usize(100);
            if roll < 40 {
                Op::Establish {
                    src: rng.next_u64(),
                    dst: rng.next_u64(),
                }
            } else if roll < 65 {
                Op::Release {
                    pick: rng.next_u64(),
                }
            } else if roll < 78 {
                Op::FailLink {
                    pick: rng.next_u64(),
                }
            } else if roll < 83 {
                Op::FailNode {
                    pick: rng.next_u64(),
                }
            } else if roll < 86 {
                Op::FailSrlg {
                    pick: rng.next_u64(),
                }
            } else if roll < 89 {
                Op::RepairSrlg {
                    pick: rng.next_u64(),
                }
            } else {
                Op::RepairLink {
                    pick: rng.next_u64(),
                }
            }
        })
        .collect()
}

/// The first failing step of a sequence, with everything the oracles and
/// reference model reported there.
#[derive(Debug, Clone)]
pub struct SequenceFailure {
    /// Index of the failing operation.
    pub step: usize,
    /// The failing operation.
    pub op: Op,
    /// Every violation reported after applying it.
    pub violations: Vec<Violation>,
}

/// Runs a sequence from scratch, stopping at the first violating step.
pub fn run_sequence(
    scenario: &Scenario,
    ops: &[Op],
    fault: InjectedFault,
) -> Option<SequenceFailure> {
    let mut harness = Harness::new(scenario, fault);
    for (step, &op) in ops.iter().enumerate() {
        let violations = harness.apply(op);
        if !violations.is_empty() {
            return Some(SequenceFailure {
                step,
                op,
                violations,
            });
        }
    }
    None
}

/// Delta-debugging shrink: truncates at the first failing step, then
/// removes ever-smaller chunks while the sequence still fails. The result
/// still fails and no single further chunk removal of size 1 succeeds
/// (1-minimality).
pub fn shrink(scenario: &Scenario, ops: &[Op], fault: InjectedFault) -> Vec<Op> {
    shrink_by(ops, |candidate| {
        run_sequence(scenario, candidate, fault).map(|f| f.step)
    })
}

/// The generic delta-debugging engine behind [`shrink`]: `fails_at`
/// replays a candidate sequence and returns the failing step (`None` =
/// passes). Any failure predicate over operand-encoded sequences shrinks
/// this way — the invariant fuzzer and the cache-differential runner
/// share it.
pub fn shrink_by(ops: &[Op], fails_at: impl Fn(&[Op]) -> Option<usize>) -> Vec<Op> {
    let Some(step) = fails_at(ops) else {
        return ops.to_vec(); // not failing: nothing to shrink
    };
    let mut current: Vec<Op> = ops[..=step].to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && fails_at(&candidate).is_some() {
                current = candidate;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    current
}

/// Fuzzer budget and seed.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of independent operation sequences to run.
    pub sequences: usize,
    /// Operations per sequence.
    pub ops_per_sequence: usize,
    /// Base seed; case `i` derives its own scenario and operation stream.
    pub seed: u64,
    /// Fault to inject (for mutation checks).
    pub fault: InjectedFault,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            sequences: 100,
            ops_per_sequence: 60,
            seed: 2001,
            fault: InjectedFault::None,
        }
    }
}

/// A failing fuzz case, shrunk and ready to report.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The derived case seed (scenario and operations follow from it).
    pub case_seed: u64,
    /// The scenario the case ran under.
    pub scenario: Scenario,
    /// The original failing sequence.
    pub ops: Vec<Op>,
    /// The shrunk reproducer.
    pub shrunk: Vec<Op>,
    /// Violations at the failing step of the shrunk sequence.
    pub violations: Vec<Violation>,
    /// Fault that was injected, if any.
    pub fault: InjectedFault,
}

impl FuzzFailure {
    /// Renders the shrunk case as a copy-pasteable Rust snippet.
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// drqos-testkit reproducer (case seed {:#x}, {} op(s) after shrinking)\n",
            self.case_seed,
            self.shrunk.len()
        ));
        out.push_str(&format!(
            "let scenario = Scenario {{ nodes: {}, capacity_kbps: {}, backup_count: {}, \
             increment_kbps: {}, graph_seed: {:#x} }};\n",
            self.scenario.nodes,
            self.scenario.capacity_kbps,
            self.scenario.backup_count,
            self.scenario.increment_kbps,
            self.scenario.graph_seed
        ));
        out.push_str("let ops = vec![\n");
        for op in &self.shrunk {
            out.push_str(&format!("    Op::{op:?},\n"));
        }
        out.push_str("];\n");
        out.push_str(&format!(
            "let failure = run_sequence(&scenario, &ops, InjectedFault::{:?})\n    \
             .expect(\"reproduces the violation\");\n",
            self.fault
        ));
        for v in &self.violations {
            out.push_str(&format!("// {v}\n"));
        }
        out
    }
}

/// Outcome of a fuzz run: how many sequences ran clean, and the first
/// failure (shrunk) if any.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Sequences completed without a violation.
    pub sequences_run: usize,
    /// The first failing case, if any, already shrunk.
    pub failure: Option<FuzzFailure>,
}

/// Derives the per-case seed from the base seed (split-mix mixed).
pub fn case_seed(base: u64, case: u64) -> u64 {
    let mut mix = SplitMix64::new(base ^ SplitMix64::new(case).next_u64());
    mix.next_u64()
}

/// Runs the fuzzer: independent seeded sequences, stopping at (and
/// shrinking) the first failure.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzOutcome {
    for case in 0..config.sequences {
        let seed = case_seed(config.seed, case as u64);
        let scenario = Scenario::from_seed(seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0x4655_5A5A); // ASCII "FUZZ"
        let ops = generate_ops(&mut rng, config.ops_per_sequence);
        if run_sequence(&scenario, &ops, config.fault).is_some() {
            let shrunk = shrink(&scenario, &ops, config.fault);
            let violations = run_sequence(&scenario, &shrunk, config.fault)
                .expect("shrink preserves failure")
                .violations;
            return FuzzOutcome {
                sequences_run: case,
                failure: Some(FuzzFailure {
                    case_seed: seed,
                    scenario,
                    ops,
                    shrunk,
                    violations,
                    fault: config.fault,
                }),
            };
        }
    }
    FuzzOutcome {
        sequences_run: config.sequences,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_varied() {
        let a = Scenario::from_seed(1);
        assert_eq!(a, Scenario::from_seed(1));
        let distinct: std::collections::BTreeSet<usize> =
            (0..32).map(|s| Scenario::from_seed(s).nodes).collect();
        assert!(distinct.len() > 3, "node counts should vary: {distinct:?}");
        for s in 0..16 {
            let sc = Scenario::from_seed(s);
            assert!((8..=24).contains(&sc.nodes));
            assert!((1..=2).contains(&sc.backup_count));
        }
    }

    #[test]
    fn clean_sequences_produce_no_violations() {
        let outcome = run_fuzz(&FuzzConfig {
            sequences: 20,
            ops_per_sequence: 40,
            seed: 7,
            fault: InjectedFault::None,
        });
        assert!(
            outcome.failure.is_none(),
            "unexpected violation:\n{}",
            outcome.failure.unwrap().reproducer()
        );
        assert_eq!(outcome.sequences_run, 20);
    }

    #[test]
    fn injected_fault_is_caught_and_shrunk_small() {
        let outcome = run_fuzz(&FuzzConfig {
            sequences: 50,
            ops_per_sequence: 30,
            seed: 7,
            fault: InjectedFault::LoseRelease,
        });
        let failure = outcome.failure.expect("the fault must be caught");
        assert!(
            failure.shrunk.len() <= 10,
            "reproducer should be tiny, got {} ops",
            failure.shrunk.len()
        );
        // The shrunk sequence replays to the same kind of failure.
        let replay = run_sequence(
            &failure.scenario,
            &failure.shrunk,
            InjectedFault::LoseRelease,
        )
        .expect("reproducer replays");
        assert!(!replay.violations.is_empty());
        let repro = failure.reproducer();
        assert!(repro.contains("Scenario {"));
        assert!(repro.contains("Op::"));
    }

    #[test]
    fn srlg_ops_appear_in_generated_streams() {
        let mut rng = Rng::seed_from_u64(42);
        let ops = generate_ops(&mut rng, 400);
        assert!(ops.iter().any(|op| matches!(op, Op::FailSrlg { .. })));
        assert!(ops.iter().any(|op| matches!(op, Op::RepairSrlg { .. })));
    }

    #[test]
    fn lost_srlg_repair_is_caught_and_shrunk_small() {
        let outcome = run_fuzz(&FuzzConfig {
            sequences: 200,
            ops_per_sequence: 60,
            seed: 7,
            fault: InjectedFault::LoseSrlgRepair,
        });
        let failure = outcome.failure.expect("the fault must be caught");
        assert!(
            failure.shrunk.len() <= 10,
            "reproducer should be tiny, got {} ops",
            failure.shrunk.len()
        );
        assert!(failure
            .shrunk
            .iter()
            .any(|op| matches!(op, Op::RepairSrlg { .. })));
        let replay = run_sequence(
            &failure.scenario,
            &failure.shrunk,
            InjectedFault::LoseSrlgRepair,
        )
        .expect("reproducer replays");
        assert!(!replay.violations.is_empty());
    }

    #[test]
    fn shrink_is_a_noop_on_passing_sequences() {
        let scenario = Scenario::from_seed(3);
        let mut rng = Rng::seed_from_u64(3);
        let ops = generate_ops(&mut rng, 10);
        assert!(run_sequence(&scenario, &ops, InjectedFault::None).is_none());
        assert_eq!(shrink(&scenario, &ops, InjectedFault::None), ops);
    }

    #[test]
    fn subsequences_stay_legal() {
        // The shrinkability contract: dropping any prefix of a sequence
        // leaves a sequence the harness can still apply without panicking.
        let scenario = Scenario::from_seed(11);
        let mut rng = Rng::seed_from_u64(11);
        let ops = generate_ops(&mut rng, 30);
        for skip in [1usize, 7, 15, 29] {
            assert!(run_sequence(&scenario, &ops[skip..], InjectedFault::None).is_none());
        }
    }
}
