//! Protocol-session replay: turns a command script plus a line handler
//! into a byte-stable transcript for golden-trace comparison.
//!
//! The helper is deliberately service-agnostic — it knows nothing about
//! the wire grammar. The service crate's engine (or any other line
//! handler) is passed in as a closure, which keeps `drqos-testkit` free
//! of a dependency on `drqos-service` while letting integration tests
//! combine the two with [`crate::golden::verify_golden`].

use std::fmt::Write as _;

/// Replays `commands` through `handler` and renders the session as a
/// transcript:
///
/// ```text
/// # drqos protocol session: <name>
/// > ESTABLISH 0 3 100 500 100
/// < OK id=0 bw=500 hops=3 backups=1
/// > RELEASE 0
/// < OK freed=500
/// ```
///
/// One `>` line per command (verbatim), one `<` line per response. The
/// transcript is a pure function of `(name, commands, handler)` — golden
/// files stay byte-exact as long as the protocol semantics do.
pub fn replay_script<H>(name: &str, commands: &[&str], mut handler: H) -> String
where
    H: FnMut(&str) -> String,
{
    let mut out = String::new();
    writeln!(out, "# drqos protocol session: {name}").expect("writing to String cannot fail");
    for command in commands {
        writeln!(out, "> {command}").expect("writing to String cannot fail");
        writeln!(out, "< {}", handler(command)).expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_interleaves_commands_and_responses() {
        let t = replay_script("echo", &["PING", "PONG"], |line| format!("OK {line}"));
        assert_eq!(
            t,
            "# drqos protocol session: echo\n> PING\n< OK PING\n> PONG\n< OK PONG\n"
        );
    }

    #[test]
    fn handler_sees_commands_in_order() {
        let mut seen = Vec::new();
        replay_script("order", &["A", "B", "C"], |line| {
            seen.push(line.to_string());
            String::new()
        });
        assert_eq!(seen, ["A", "B", "C"]);
    }
}
