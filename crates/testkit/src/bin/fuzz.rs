//! CI entry point for the chaos harness.
//!
//! ```text
//! fuzz [--seqs N] [--ops N] [--seed S] [--diff N] [--diff-cache N]
//!      [--diff-batch N] [--diff-shard N] [--diff-cluster N]
//!      [--tolerance F] [--self-test]
//! ```
//!
//! * the main run executes `--seqs` seeded operation sequences and exits
//!   non-zero with a shrunk, copy-pasteable reproducer on any invariant
//!   violation;
//! * `--diff N` additionally runs N simulation-vs-Markov differential
//!   cases within `--tolerance` (default 0.45 relative);
//! * `--diff-cache N` replays N fuzzed sequences against route-cache-on
//!   and route-cache-off networks in lockstep and fails (with a shrunk
//!   reproducer) on any divergence in admission decisions, failure
//!   reports, drop counters, or snapshots;
//! * `--diff-batch N` replays N fuzzed sequences with consecutive
//!   establishes grouped through `Network::establish_batch` against a
//!   sequential oracle, and fails (with a shrunk reproducer) on any
//!   divergence in admission results, drop counters, or snapshots;
//! * `--diff-shard N` replays N fuzzed sequences with consecutive
//!   establishes admitted as `ShardedNetwork::establish_wave` waves —
//!   parallel per-shard planning plus the two-phase cross-shard commit —
//!   against a monolithic oracle, **at shard counts 2 and 4 each**, and
//!   fails (with a shrunk reproducer) on any divergence in admission
//!   results, drop counters, snapshots, or leaked two-phase reservations;
//! * `--diff-cluster N` replays N fuzzed sequences against an in-process
//!   multi-daemon cluster (`ClusterSim`) — member-replica planning, the
//!   coordinator's two-phase ledger, deterministic daemon churn between
//!   waves — and a monolithic oracle, **at member counts 2 and 3 each**,
//!   and fails (with a shrunk reproducer) on any divergence in admission
//!   results, drop counters, snapshots of the authoritative network or
//!   any live replica, or leaked prepares;
//! * `--self-test` is the mutation check: it injects the `LoseRelease`
//!   accounting fault, the `LoseSrlgRepair` shared-risk-group repair
//!   fault, the `ReverseBatch` batch-ordering fault, the sharded
//!   engine's `LoseReservationRelease` two-phase leak, and the cluster
//!   coordinator's `LosePrepare` leak, and *fails* unless the detectors
//!   catch all five and shrink the witnesses (≤ 10 ops for each
//!   accounting fault, ≤ 4 for the ordering one, ≤ 3 for each leak).

use drqos_testkit::batch_diff::{batch_mutation_witness, run_batch_diff, BatchDiffConfig};
use drqos_testkit::cache_diff::{run_cache_diff, CacheDiffConfig};
use drqos_testkit::cluster_diff::{cluster_mutation_witness, run_cluster_diff, ClusterDiffConfig};
use drqos_testkit::diff::check_diff;
use drqos_testkit::fuzz::{run_fuzz, FuzzConfig, InjectedFault};
use drqos_testkit::shard_diff::{run_shard_diff, shard_mutation_witness, ShardDiffConfig};
use std::process::ExitCode;

struct Args {
    seqs: usize,
    ops: usize,
    seed: u64,
    diff: usize,
    diff_cache: usize,
    diff_batch: usize,
    diff_shard: usize,
    diff_cluster: usize,
    tolerance: f64,
    self_test: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seqs: 200,
        ops: 60,
        seed: 2001,
        diff: 0,
        diff_cache: 0,
        diff_batch: 0,
        diff_shard: 0,
        diff_cluster: 0,
        tolerance: 0.45,
        self_test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seqs" => args.seqs = parse(&value("--seqs")?)?,
            "--ops" => args.ops = parse(&value("--ops")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--diff" => args.diff = parse(&value("--diff")?)?,
            "--diff-cache" => args.diff_cache = parse(&value("--diff-cache")?)?,
            "--diff-batch" => args.diff_batch = parse(&value("--diff-batch")?)?,
            "--diff-shard" => args.diff_shard = parse(&value("--diff-shard")?)?,
            "--diff-cluster" => args.diff_cluster = parse(&value("--diff-cluster")?)?,
            "--tolerance" => args.tolerance = parse(&value("--tolerance")?)?,
            "--self-test" => args.self_test = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse argument {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.self_test {
        return mutation_check(args.seed);
    }

    let outcome = run_fuzz(&FuzzConfig {
        sequences: args.seqs,
        ops_per_sequence: args.ops,
        seed: args.seed,
        fault: InjectedFault::None,
    });
    if let Some(failure) = outcome.failure {
        eprintln!(
            "FAIL: invariant violation after {} clean sequence(s)\n",
            outcome.sequences_run
        );
        eprintln!("{}", failure.reproducer());
        return ExitCode::FAILURE;
    }
    println!(
        "ok: {} sequences x {} ops (seed {}) with zero invariant violations",
        args.seqs, args.ops, args.seed
    );

    if args.diff > 0 {
        let failures = check_diff(args.seed, args.diff, args.tolerance);
        if !failures.is_empty() {
            eprintln!("FAIL: simulation diverged from the Markov model:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "ok: {} differential case(s) within {:.0}% of the Markov prediction",
            args.diff,
            args.tolerance * 100.0
        );
    }

    if args.diff_cache > 0 {
        let outcome = run_cache_diff(&CacheDiffConfig {
            sequences: args.diff_cache,
            ops_per_sequence: args.ops,
            seed: args.seed,
        });
        if let Some(failure) = outcome.failure {
            eprintln!(
                "FAIL: route cache diverged from the uncached oracle after {} clean sequence(s)\n",
                outcome.sequences_run
            );
            eprintln!("{}", failure.reproducer());
            return ExitCode::FAILURE;
        }
        println!(
            "ok: {} cache-differential sequence(s) x {} ops (seed {}) byte-identical throughout",
            args.diff_cache, args.ops, args.seed
        );
    }

    if args.diff_batch > 0 {
        let outcome = run_batch_diff(&BatchDiffConfig {
            sequences: args.diff_batch,
            ops_per_sequence: args.ops,
            seed: args.seed,
        });
        if let Some(failure) = outcome.failure {
            eprintln!(
                "FAIL: batched admission diverged from the sequential oracle after {} clean sequence(s)\n",
                outcome.sequences_run
            );
            eprintln!("{}", failure.reproducer());
            return ExitCode::FAILURE;
        }
        println!(
            "ok: {} batch-differential sequence(s) x {} ops (seed {}) byte-identical throughout",
            args.diff_batch, args.ops, args.seed
        );
    }

    if args.diff_shard > 0 {
        for shards in [2usize, 4] {
            let outcome = run_shard_diff(
                &ShardDiffConfig {
                    sequences: args.diff_shard,
                    ops_per_sequence: args.ops,
                    seed: args.seed,
                },
                shards,
            );
            if let Some(failure) = outcome.failure {
                eprintln!(
                    "FAIL: sharded admission ({shards} shard(s)) diverged from the monolithic \
                     oracle after {} clean sequence(s)\n",
                    outcome.sequences_run
                );
                eprintln!("{}", failure.reproducer());
                return ExitCode::FAILURE;
            }
            println!(
                "ok: {} shard-differential sequence(s) x {} ops (seed {}) at {} shard(s) \
                 byte-identical throughout",
                args.diff_shard, args.ops, args.seed, shards
            );
        }
    }

    if args.diff_cluster > 0 {
        for members in [2usize, 3] {
            let outcome = run_cluster_diff(
                &ClusterDiffConfig {
                    sequences: args.diff_cluster,
                    ops_per_sequence: args.ops,
                    seed: args.seed,
                },
                members,
            );
            if let Some(failure) = outcome.failure {
                eprintln!(
                    "FAIL: clustered admission ({members} member(s)) diverged from the \
                     monolithic oracle after {} clean sequence(s)\n",
                    outcome.sequences_run
                );
                eprintln!("{}", failure.reproducer());
                return ExitCode::FAILURE;
            }
            println!(
                "ok: {} cluster-differential sequence(s) x {} ops (seed {}) at {} member(s) \
                 byte-identical throughout",
                args.diff_cluster, args.ops, args.seed, members
            );
        }
    }
    ExitCode::SUCCESS
}

/// The mutation check: the injected fault MUST be caught and MUST shrink
/// to a small reproducer, or the detector itself is broken.
fn mutation_check(seed: u64) -> ExitCode {
    let outcome = run_fuzz(&FuzzConfig {
        sequences: 50,
        ops_per_sequence: 30,
        seed,
        fault: InjectedFault::LoseRelease,
    });
    match outcome.failure {
        Some(failure) if failure.shrunk.len() <= 10 => {
            println!(
                "ok: injected LoseRelease fault caught and shrunk to {} op(s):\n",
                failure.shrunk.len()
            );
            println!("{}", failure.reproducer());
        }
        Some(failure) => {
            eprintln!(
                "FAIL: fault caught but reproducer has {} ops (> 10) — shrinker regressed",
                failure.shrunk.len()
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("FAIL: injected accounting fault was NOT detected — oracle regressed");
            return ExitCode::FAILURE;
        }
    }

    let outcome = run_fuzz(&FuzzConfig {
        sequences: 200,
        ops_per_sequence: 60,
        seed,
        fault: InjectedFault::LoseSrlgRepair,
    });
    match outcome.failure {
        Some(failure) if failure.shrunk.len() <= 10 => {
            println!(
                "ok: injected LoseSrlgRepair fault caught and shrunk to {} op(s)",
                failure.shrunk.len()
            );
        }
        Some(failure) => {
            eprintln!(
                "FAIL: SRLG repair fault caught but reproducer has {} ops (> 10) — shrinker regressed",
                failure.shrunk.len()
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("FAIL: injected SRLG repair fault was NOT detected — oracle regressed");
            return ExitCode::FAILURE;
        }
    }

    match batch_mutation_witness(seed, 20) {
        Some(shrunk) if shrunk.len() <= 4 => {
            println!(
                "ok: injected ReverseBatch ordering fault caught and shrunk to {} op(s)",
                shrunk.len()
            );
        }
        Some(shrunk) => {
            eprintln!(
                "FAIL: ordering fault caught but reproducer has {} ops (> 4) — shrinker regressed",
                shrunk.len()
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("FAIL: injected batch-ordering fault was NOT detected — detector regressed");
            return ExitCode::FAILURE;
        }
    }

    match shard_mutation_witness(seed, 20, 4) {
        Some(shrunk) if shrunk.len() <= 3 => {
            println!(
                "ok: injected LoseReservationRelease shard fault caught and shrunk to {} op(s)",
                shrunk.len()
            );
        }
        Some(shrunk) => {
            eprintln!(
                "FAIL: reservation leak caught but reproducer has {} ops (> 3) — shrinker regressed",
                shrunk.len()
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "FAIL: injected two-phase reservation leak was NOT detected — detector regressed"
            );
            return ExitCode::FAILURE;
        }
    }

    match cluster_mutation_witness(seed, 20, 3) {
        Some(shrunk) if shrunk.len() <= 3 => {
            println!(
                "ok: injected LosePrepare cluster fault caught and shrunk to {} op(s)",
                shrunk.len()
            );
            ExitCode::SUCCESS
        }
        Some(shrunk) => {
            eprintln!(
                "FAIL: prepare leak caught but reproducer has {} ops (> 3) — shrinker regressed",
                shrunk.len()
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!("FAIL: injected cluster prepare leak was NOT detected — detector regressed");
            ExitCode::FAILURE
        }
    }
}
