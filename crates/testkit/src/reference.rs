//! A simplified reference model of per-link bandwidth accounting.
//!
//! The model mirrors the *observable contract* of
//! [`drqos_core::network::Network`] — which connections are alive, which
//! links are up, how much guaranteed minimum bandwidth each link carries,
//! how many drops have accumulated, and how often the topology changed —
//! while recomputing all of it independently from first principles. Route
//! *choices* are learned from the network (the reference does not
//! re-implement routing), but every derived quantity is re-derived here,
//! so any bookkeeping drift in the incremental accounting shows up as a
//! divergence between the two.

use drqos_core::channel::ConnectionId;
use drqos_core::network::{FailureReport, Network};
use drqos_core::qos::Bandwidth;
use drqos_topology::LinkId;
use std::collections::BTreeMap;

/// What the reference remembers about one live connection.
#[derive(Debug, Clone, PartialEq)]
struct RefConnection {
    min: Bandwidth,
    max: Bandwidth,
    increment: Bandwidth,
    primary: Vec<LinkId>,
}

/// Independent mirror of the network's observable state.
#[derive(Debug, Clone)]
pub struct ReferenceModel {
    capacity: Vec<Bandwidth>,
    link_up: Vec<bool>,
    conns: BTreeMap<ConnectionId, RefConnection>,
    dropped: u64,
    epoch: u64,
}

impl ReferenceModel {
    /// Mirrors a freshly constructed (empty, all-links-up) network.
    pub fn new(net: &Network) -> Self {
        let links: Vec<LinkId> = net.graph().links().map(|l| l.id()).collect();
        Self {
            capacity: links
                .iter()
                .map(|&l| net.link_usage(l).capacity())
                .collect(),
            link_up: links.iter().map(|&l| net.link_usage(l).is_up()).collect(),
            conns: net
                .connections()
                .map(|c| {
                    (
                        c.id(),
                        RefConnection {
                            min: c.qos().min(),
                            max: c.qos().max(),
                            increment: c.qos().increment(),
                            primary: c.primary().links().to_vec(),
                        },
                    )
                })
                .collect(),
            dropped: net.dropped_total(),
            epoch: net.topology_epoch(),
        }
    }

    /// Live connection ids, in id order.
    pub fn live_ids(&self) -> Vec<ConnectionId> {
        self.conns.keys().copied().collect()
    }

    /// Links currently believed up, in id order.
    pub fn up_links(&self) -> Vec<LinkId> {
        self.link_up
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Links currently believed down, in id order.
    pub fn down_links(&self) -> Vec<LinkId> {
        self.link_up
            .iter()
            .enumerate()
            .filter(|&(_, &up)| !up)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Records a successful establishment, learning the committed primary
    /// route from the network.
    pub fn on_establish(&mut self, net: &Network, id: ConnectionId) {
        let c = net.connection(id).expect("establish returned this id");
        let prev = self.conns.insert(
            id,
            RefConnection {
                min: c.qos().min(),
                max: c.qos().max(),
                increment: c.qos().increment(),
                primary: c.primary().links().to_vec(),
            },
        );
        assert!(prev.is_none(), "{id} established twice");
    }

    /// Records a release.
    pub fn on_release(&mut self, id: ConnectionId) {
        let removed = self.conns.remove(&id);
        assert!(removed.is_some(), "{id} released but never tracked");
    }

    /// Records a link failure: the link goes down (one epoch bump),
    /// dropped connections leave the books, and activated connections
    /// switch to the backup route the network reports.
    pub fn on_fail_link(&mut self, net: &Network, report: &FailureReport) {
        let idx = report.link.index();
        assert!(self.link_up[idx], "{} failed while down", report.link);
        self.link_up[idx] = false;
        self.epoch += 1;
        for id in &report.dropped {
            let removed = self.conns.remove(id);
            assert!(removed.is_some(), "{id} dropped but never tracked");
            self.dropped += 1;
        }
        for id in &report.activated {
            // A node outage downs several links in one batch; a connection
            // activated by this link's failure may have been dropped by a
            // later one, in which case that report's `dropped` list settles
            // the books and there is no surviving route to learn.
            let Some(c) = net.connection(*id) else {
                continue;
            };
            self.conns
                .get_mut(id)
                .expect("activated connection is tracked")
                .primary = c.primary().links().to_vec();
        }
    }

    /// Records a repair: one epoch bump, link back up. (Backup
    /// re-establishment does not touch any quantity the reference tracks.)
    pub fn on_repair_link(&mut self, link: LinkId) {
        let idx = link.index();
        assert!(!self.link_up[idx], "{link} repaired while up");
        self.link_up[idx] = true;
        self.epoch += 1;
    }

    /// Compares the mirrored books against the network, returning one
    /// message per divergence (empty = consistent).
    pub fn compare(&self, net: &Network) -> Vec<String> {
        let mut diffs = Vec::new();

        // Live-connection sets must agree.
        let net_ids: Vec<ConnectionId> = net.connections().map(|c| c.id()).collect();
        let ref_ids = self.live_ids();
        if net_ids != ref_ids {
            diffs.push(format!(
                "live set diverged: network has {} connections, reference {} \
                 (network {:?}, reference {:?})",
                net_ids.len(),
                ref_ids.len(),
                net_ids,
                ref_ids,
            ));
        }

        // Per-link liveness and independently summed primary minima.
        let mut min_sums = vec![Bandwidth::ZERO; self.link_up.len()];
        for rc in self.conns.values() {
            for &l in &rc.primary {
                min_sums[l.index()] += rc.min;
            }
        }
        for (i, &up) in self.link_up.iter().enumerate() {
            let link = LinkId(i);
            let usage = net.link_usage(link);
            if usage.is_up() != up {
                diffs.push(format!(
                    "{link} liveness diverged: network {}, reference {}",
                    usage.is_up(),
                    up
                ));
            }
            if usage.primary_min_sum() != min_sums[i] {
                diffs.push(format!(
                    "{link} min sum diverged: network {}, reference {}",
                    usage.primary_min_sum(),
                    min_sums[i]
                ));
            }
            if min_sums[i] > self.capacity[i] {
                diffs.push(format!(
                    "{link} oversubscribed: minima {} exceed capacity {}",
                    min_sums[i], self.capacity[i]
                ));
            }
        }

        // Per-connection route agreement, QoS range, and Δ-grid membership.
        for (id, rc) in &self.conns {
            let Some(c) = net.connection(*id) else {
                continue; // already reported via the live-set diff
            };
            if c.primary().links() != rc.primary.as_slice() {
                diffs.push(format!("{id} primary route diverged"));
            }
            let bw = c.bandwidth();
            if bw < rc.min || bw > rc.max {
                diffs.push(format!(
                    "{id} bandwidth {bw} outside [{}, {}]",
                    rc.min, rc.max
                ));
            } else if rc.increment > Bandwidth::ZERO
                && (bw.as_kbps() - rc.min.as_kbps()) % rc.increment.as_kbps() != 0
            {
                diffs.push(format!(
                    "{id} bandwidth {bw} off the Δ-grid (min {}, Δ {})",
                    rc.min, rc.increment
                ));
            }
            for &l in &rc.primary {
                if !self.link_up[l.index()] {
                    diffs.push(format!("{id} primary crosses down link {l}"));
                }
            }
        }

        // Global counters.
        if net.dropped_total() != self.dropped {
            diffs.push(format!(
                "dropped_total diverged: network {}, reference {}",
                net.dropped_total(),
                self.dropped
            ));
        }
        if net.topology_epoch() != self.epoch {
            diffs.push(format!(
                "topology_epoch diverged: network {}, reference {}",
                net.topology_epoch(),
                self.epoch
            ));
        }
        diffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::{Network, NetworkConfig};
    use drqos_core::qos::ElasticQos;
    use drqos_topology::{regular, NodeId};

    fn net() -> Network {
        Network::new(regular::ring(6).unwrap(), NetworkConfig::default())
    }

    #[test]
    fn mirrors_establish_release_and_failure() {
        let mut net = net();
        let mut model = ReferenceModel::new(&net);
        assert!(model.compare(&net).is_empty());

        let q = ElasticQos::paper_video(100);
        let a = net.establish(NodeId(0), NodeId(3), q).unwrap();
        model.on_establish(&net, a);
        assert!(model.compare(&net).is_empty());

        let link = net.connection(a).unwrap().primary().links()[0];
        let report = net.fail_link(link).unwrap();
        model.on_fail_link(&net, &report);
        assert!(model.compare(&net).is_empty());

        net.repair_link(link).unwrap();
        model.on_repair_link(link);
        assert!(model.compare(&net).is_empty());

        net.release(a).unwrap();
        model.on_release(a);
        assert!(model.compare(&net).is_empty());
    }

    #[test]
    fn detects_a_lost_release() {
        let mut net = net();
        let mut model = ReferenceModel::new(&net);
        let q = ElasticQos::paper_video(100);
        let a = net.establish(NodeId(0), NodeId(3), q).unwrap();
        model.on_establish(&net, a);
        // The network releases but the reference is not told — exactly the
        // desynchronization the fuzzer's injected fault produces.
        net.release(a).unwrap();
        let diffs = model.compare(&net);
        assert!(
            diffs.iter().any(|d| d.contains("live set diverged")),
            "{diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("min sum diverged")),
            "{diffs:?}"
        );
    }
}
