//! # drqos-core
//!
//! Dependable real-time communication with elastic QoS — a from-scratch
//! implementation of the system analyzed in:
//!
//! > Jong Kim and Kang G. Shin, *Performance Evaluation of Dependable
//! > Real-Time Communication with Elastic QoS*, Proc. IEEE/IFIP DSN 2001.
//!
//! Each **DR-connection** owns a primary channel and a link-disjoint backup
//! channel (the passive backup-channel scheme). Bandwidth reserved for
//! backups — and any other spare capacity — is lent at run time to primary
//! channels whose QoS is **elastic**: a `[B_min, B_max]` range walked in
//! increments of `Δ`. Arrivals, terminations, and failures trigger the
//! retreat/re-distribution dynamics whose steady state the paper models
//! with a Markov chain.
//!
//! ## Module map
//!
//! * [`qos`] — [`qos::Bandwidth`], the elastic range [`qos::ElasticQos`],
//!   and the adaptation policies.
//! * [`channel`] — [`channel::DrConnection`] (primary + backup + level).
//! * [`link_state`] — per-link accounting with multiplexed backup
//!   reservations.
//! * [`routing`] — bounded-flooding emulation, shortest-path baseline,
//!   Suurballe pair router.
//! * [`route_cache`] — the epoch/digest-validated admission route memo
//!   (toggled by `DRQOS_ROUTE_CACHE`).
//! * [`network`] — [`network::Network`], the manager: admission, retreat &
//!   re-distribution, failure handling.
//! * [`interval`] — the run-time k-out-of-M interval QoS model
//!   (Section 2.2's second elastic model).
//! * [`invariant`] — structured violations returned by
//!   [`network::Network::check_invariants`].
//! * [`snapshot`] — frozen per-link/per-connection views for reporting.
//! * [`workload`] — request generation.
//! * [`measure`] — estimation of the Markov-model parameters
//!   (`P_f`, `P_s`, `A`, `B`, `T`).
//! * [`experiment`] — the churn harness reproducing the paper's
//!   "detailed simulations".
//! * [`scenario`] — adversarial workloads (flash crowd, diurnal, Pareto
//!   holding) and correlated shared-risk-group failures.
//! * [`framing`] — length-prefixed binary framing primitives shared by
//!   the service wire mode and the inter-daemon cluster protocol.
//!
//! ## Quickstart
//!
//! ```
//! use drqos_core::network::{Network, NetworkConfig};
//! use drqos_core::qos::ElasticQos;
//! use drqos_topology::{regular, NodeId};
//!
//! let graph = regular::torus(4, 4)?;
//! let mut net = Network::new(graph, NetworkConfig::default());
//! let qos = ElasticQos::paper_video(50); // 100–500 Kbps, Δ = 50
//! let id = net.establish(NodeId(0), NodeId(10), qos)?;
//! let conn = net.connection(id).expect("just established");
//! assert!(conn.has_backup());
//! // Alone in the network, the channel enjoys its maximum QoS.
//! assert_eq!(conn.bandwidth().as_kbps(), 500);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod env;
pub mod error;
pub mod experiment;
pub mod framing;
pub mod interval;
pub mod invariant;
pub mod link_state;
pub mod measure;
pub mod network;
pub mod qos;
pub mod route_cache;
pub mod routing;
pub mod scenario;
pub mod shard;
pub mod snapshot;
pub mod wire;
pub mod workload;

pub use channel::{ConnectionId, DrConnection};
pub use error::{AdmissionError, ClusterError, NetworkError, QosError};
pub use experiment::{checked_mode, run_churn, ExperimentConfig, ExperimentReport};
pub use interval::{DropController, IntervalQos};
pub use invariant::InvariantViolation;
pub use measure::{MeasuredParams, ParameterEstimator, RouteCacheStats};
pub use network::{
    route_cache_env_default, EstablishPlan, EstablishRequest, FailureReport, Network, NetworkConfig,
};
pub use qos::{AdaptationPolicy, Bandwidth, ElasticQos};
pub use route_cache::RouteCache;
pub use routing::{BackupDisjointness, RouterKind};
pub use scenario::{
    register_seeded_srlgs, run_scenario_churn, seeded_srlgs, Scenario, ScenarioKind,
};
pub use shard::{ShardFault, ShardedNetwork};
pub use snapshot::NetworkSnapshot;
pub use workload::{PairSampler, Request, Workload};
