//! The DR-connection network manager.
//!
//! [`Network`] owns the topology, per-link accounting, and the connection
//! table, and implements the paper's network operation (Section 3.1):
//!
//! * **Admission** — route a primary channel with enough bandwidth for the
//!   minimum QoS (extras held by other channels count as reclaimable), then
//!   a link-disjoint backup whose multiplexed reservation fits.
//! * **Retreat & re-distribution** — on every arrival, all primaries
//!   sharing a link with the new connection release their extras, which are
//!   then re-distributed (together with any other spare bandwidth)
//!   according to the adaptation policy.
//! * **Termination** — channels that shared links with the departed
//!   connection may grow into the freed bandwidth.
//! * **Failure & recovery** — a link failure activates the backups of all
//!   primaries crossing it; primaries sharing links with activated backups
//!   retreat; remaining extras are re-distributed; backups are re-established
//!   where possible.
//!
//! Planning (route search) is separated from commitment so that callers —
//! in particular the transition-probability estimator — can observe the
//! network state between the two.

use crate::channel::{ConnectionId, DrConnection};
use crate::error::{AdmissionError, NetworkError};
use crate::invariant::InvariantViolation;
use crate::link_state::LinkUsage;
use crate::measure::RouteCacheStats;
use crate::qos::{AdaptationPolicy, Bandwidth, ElasticQos};
use crate::route_cache::RouteCache;
use crate::routing::{self, BackupDisjointness, RouteScratch, RouterKind};
use drqos_topology::graph::{Graph, LinkId, NodeId};
use drqos_topology::paths::Path;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::{Mutex, MutexGuard};

/// Configuration of a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Capacity of every link (the paper assumes a uniform 10 Mbps).
    pub capacity: Bandwidth,
    /// How extra bandwidth is divided.
    pub policy: AdaptationPolicy,
    /// Route-selection strategy.
    pub router: RouterKind,
    /// Whether a connection is rejected when no backup can be found
    /// (the paper's dependability QoS requires one backup per connection).
    pub require_backup: bool,
    /// Whether to re-establish backups after failover / backup loss.
    pub reestablish_backups: bool,
    /// Whether backups must be fully link-disjoint or may fall back to
    /// maximal disjointness (the paper's footnote 1).
    pub disjointness: BackupDisjointness,
    /// Backup channels per connection. The paper's analysis uses one; the
    /// underlying Han–Shin scheme supports "one or more", and extra
    /// backups protect against multi-failures. Backups of one connection
    /// are mutually link-disjoint.
    pub backup_count: usize,
    /// Whether [`Network::plan_establish`] may answer from the
    /// epoch-validated route memo (see [`crate::route_cache`]). Defaults
    /// from the `DRQOS_ROUTE_CACHE` environment variable (on unless set
    /// to `0`/`false`/`off`); the cache is exact — cached and uncached
    /// networks produce byte-identical state — so the toggle exists for
    /// differential testing and benchmarking, not as a safety valve.
    pub route_cache: bool,
}

/// The default for [`NetworkConfig::route_cache`]: the value of the
/// `DRQOS_ROUTE_CACHE` environment variable, with unset meaning enabled.
pub fn route_cache_env_default() -> bool {
    crate::env::route_cache()
}

impl Default for NetworkConfig {
    /// The paper's evaluation setup: 10 Mbps links, coefficient (fair)
    /// adaptation, bounded flooding, mandatory backups.
    fn default() -> Self {
        Self {
            capacity: Bandwidth::mbps(10),
            policy: AdaptationPolicy::Coefficient,
            router: RouterKind::default(),
            require_backup: true,
            reestablish_backups: true,
            disjointness: BackupDisjointness::default(),
            backup_count: 1,
            route_cache: route_cache_env_default(),
        }
    }
}

/// One request in an [`Network::establish_batch`] group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstablishRequest {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// The requested elastic QoS.
    pub qos: ElasticQos,
}

/// A routed-but-not-committed DR-connection (the confirmation message of
/// the flooding protocol, as it were).
#[derive(Debug, Clone, PartialEq)]
pub struct EstablishPlan {
    qos: ElasticQos,
    primary: Path,
    backups: Vec<Path>,
}

impl EstablishPlan {
    /// The QoS the plan was routed for.
    pub fn qos(&self) -> &ElasticQos {
        &self.qos
    }

    /// The primary route.
    pub fn primary(&self) -> &Path {
        &self.primary
    }

    /// The first backup route, if one was found.
    pub fn backup(&self) -> Option<&Path> {
        self.backups.first()
    }

    /// All backup routes found (up to the configured backup count).
    pub fn backups(&self) -> &[Path] {
        &self.backups
    }
}

/// What happened when a link failed.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// The failed link.
    pub link: LinkId,
    /// Connections whose backup was activated (now running on it).
    pub activated: Vec<ConnectionId>,
    /// Connections dropped (no usable backup).
    pub dropped: Vec<ConnectionId>,
    /// Connections that lost their backup channel (primary unaffected).
    pub lost_backup: Vec<ConnectionId>,
    /// Connections forced to retreat because they share links with
    /// activated backups (excludes the activated connections themselves).
    pub retreated: Vec<ConnectionId>,
}

/// The primary links that can trigger this backup's activation while it is
/// registered on `on_link`: a failure of `on_link` itself takes the backup
/// down with it, so it never contributes to that link's reservation.
/// (Only relevant for maximally-disjoint backups; a fully disjoint backup
/// never crosses its own primary.)
fn conflict_set(primary_links: &[LinkId], on_link: LinkId) -> Vec<LinkId> {
    primary_links
        .iter()
        .copied()
        .filter(|&f| f != on_link)
        .collect()
}

/// The DR-connection network manager.
#[derive(Debug)]
pub struct Network {
    graph: Graph,
    config: NetworkConfig,
    links: Vec<LinkUsage>,
    connections: BTreeMap<ConnectionId, DrConnection>,
    next_id: u64,
    total_bandwidth: Bandwidth,
    dropped_total: u64,
    /// Bumped on every link-liveness change (fail/repair); cached route
    /// search state from an older epoch is invalid and must be dropped.
    topology_epoch: u64,
    /// Registered shared-risk link groups, indexed by group id. A group's
    /// member links fail and recover *together* (one conduit cut, one
    /// transit domain outage); registration is static configuration and
    /// does not appear in snapshots.
    srlgs: Vec<Vec<LinkId>>,
    /// Reusable route-search buffers (see [`RouteScratch`]): admission
    /// planning allocates nothing per attempt. Interior mutability because
    /// planning takes `&self`. `scratch_epoch` records which topology
    /// epoch the buffers were last validated against.
    scratch: Mutex<(u64, RouteScratch)>,
    /// Memo of successful route plans, consulted by
    /// [`Network::plan_establish`] when [`NetworkConfig::route_cache`] is
    /// set. Interior mutability because planning takes `&self` but a
    /// lookup updates counters and evicts stale entries. Both fields are
    /// mutexes (not `RefCell`s) so a frozen `&Network` is `Sync` and can be
    /// shared across the sharded engine's planning threads; contention is
    /// nil on the monolith path, which is single-threaded.
    cache: Mutex<RouteCache>,
}

/// Cloning copies the full accounting state *and* the route cache (so a
/// cloned oracle replays with identical cache counters); the route-search
/// scratch is rebuilt fresh, which is semantics-invariant.
impl Clone for Network {
    fn clone(&self) -> Self {
        Self {
            graph: self.graph.clone(),
            config: self.config.clone(),
            links: self.links.clone(),
            connections: self.connections.clone(),
            next_id: self.next_id,
            total_bandwidth: self.total_bandwidth,
            dropped_total: self.dropped_total,
            topology_epoch: self.topology_epoch,
            srlgs: self.srlgs.clone(),
            scratch: Mutex::new((0, RouteScratch::new())),
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl Network {
    /// Creates a manager over `graph` with the given configuration.
    pub fn new(graph: Graph, config: NetworkConfig) -> Self {
        let links = (0..graph.link_count())
            .map(|_| LinkUsage::new(config.capacity))
            .collect();
        Self {
            graph,
            config,
            links,
            connections: BTreeMap::new(),
            next_id: 0,
            total_bandwidth: Bandwidth::ZERO,
            dropped_total: 0,
            topology_epoch: 0,
            srlgs: Vec::new(),
            scratch: Mutex::new((0, RouteScratch::new())),
            cache: Mutex::new(RouteCache::new()),
        }
    }

    /// Locks the route cache. A poisoned lock is impossible in practice
    /// (cache operations don't panic), but the daemon zone forbids
    /// `unwrap`, so a poison is shrugged off rather than propagated.
    fn lock_cache(&self) -> MutexGuard<'_, RouteCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hit/miss/stale-eviction counters of the admission route cache
    /// (all zero when [`NetworkConfig::route_cache`] is off).
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        self.lock_cache().stats()
    }

    /// Number of plans currently memoized by the route cache.
    pub fn route_cache_len(&self) -> usize {
        self.lock_cache().len()
    }

    /// The current topology epoch: incremented by every
    /// [`Network::fail_link`], [`Network::repair_link`], and
    /// [`Network::fail_node`] call. Anything caching route-search state
    /// against this network must revalidate when the epoch moves.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// Runs `f` with the network's route-search scratch, invalidating it
    /// first if the topology epoch moved since its last use.
    fn with_scratch<T>(&self, f: impl FnOnce(&mut RouteScratch) -> T) -> T {
        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let (seen_epoch, scratch) = &mut *guard;
        if *seen_epoch != self.topology_epoch {
            scratch.invalidate();
            *seen_epoch = self.topology_epoch;
        }
        f(scratch)
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Per-link accounting.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_usage(&self, link: LinkId) -> &LinkUsage {
        &self.links[link.index()]
    }

    /// Active connections, in id order.
    pub fn connections(&self) -> impl Iterator<Item = &DrConnection> {
        self.connections.values()
    }

    /// The connection with the given id, if active.
    pub fn connection(&self, id: ConnectionId) -> Option<&DrConnection> {
        self.connections.get(&id)
    }

    /// Number of active connections.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// Whether no connections are active.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Connections dropped by failures since creation.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Sum of the bandwidth currently reserved by all primary channels.
    pub fn total_primary_bandwidth(&self) -> Bandwidth {
        self.total_bandwidth
    }

    /// Mean bandwidth per primary channel, or `None` with no connections.
    pub fn average_bandwidth(&self) -> Option<f64> {
        if self.connections.is_empty() {
            None
        } else {
            Some(self.total_bandwidth.as_kbps_f64() / self.connections.len() as f64)
        }
    }

    /// Mean primary-path hop count, or `None` with no connections.
    pub fn average_path_hops(&self) -> Option<f64> {
        if self.connections.is_empty() {
            None
        } else {
            let total: usize = self
                .connections
                .values()
                .map(|c| c.primary().hop_count())
                .sum();
            Some(total as f64 / self.connections.len() as f64)
        }
    }

    // ------------------------------------------------------- admission --

    /// Routes (but does not commit) a new DR-connection.
    ///
    /// # Errors
    ///
    /// * [`AdmissionError::UnknownNode`] / [`AdmissionError::SameEndpoints`]
    ///   for invalid endpoints.
    /// * [`AdmissionError::NoPrimaryRoute`] if no route can carry the
    ///   minimum QoS.
    /// * [`AdmissionError::NoBackupRoute`] if backups are required and no
    ///   feasible link-disjoint backup exists.
    pub fn plan_establish(
        &self,
        src: NodeId,
        dst: NodeId,
        qos: ElasticQos,
    ) -> Result<EstablishPlan, AdmissionError> {
        self.check_endpoints(src, dst)?;
        let min = qos.min();
        let key = (src, dst, min.as_kbps());
        let mut record = false;
        if self.config.route_cache {
            let mut cache = self.lock_cache();
            let hit = cache.lookup(key, |l| self.links[l.index()].plan_digest());
            if let Some((primary, backups)) = hit {
                return Ok(EstablishPlan {
                    qos,
                    primary,
                    backups,
                });
            }
            // Doorkeeper: memoize only keys that miss twice. One-shot
            // pairs (most of a sweep's arrivals) skip footprint recording
            // and entry maintenance entirely.
            record = cache.promote(key);
        }
        // While the real search runs, record every link it probes: a
        // successful plan is memoized together with the probed links'
        // digests, which is exactly the state the search depended on.
        let footprint: RefCell<Vec<LinkId>> = RefCell::new(Vec::new());
        let fp = record.then_some(&footprint);
        let (primary, backups) =
            self.with_scratch(|scratch| self.plan_routes(scratch, src, dst, min, fp))?;
        if record {
            let digests = self.footprint_digests(footprint.into_inner());
            self.lock_cache().insert(
                key,
                self.topology_epoch,
                primary.clone(),
                backups.clone(),
                digests,
            );
        }
        Ok(EstablishPlan {
            qos,
            primary,
            backups,
        })
    }

    /// Routes (but does not commit) a new DR-connection against a frozen
    /// network, recording the full admission **footprint**: every link the
    /// search probed, with its [`LinkUsage::plan_digest`] at planning time.
    ///
    /// This is the sharded engine's planning entry point. Unlike
    /// [`Network::plan_establish`] it never consults or fills the route
    /// cache (so concurrent planners share `&self` without perturbing the
    /// monolith's cache counters) and it records the footprint even when
    /// the plan **fails** — a rejection is only as valid as the link state
    /// it observed, and the committer must revalidate that too (more
    /// admitted traffic can change *which* error a request gets).
    ///
    /// The caller supplies the [`RouteScratch`] (one per planning thread);
    /// it must be fresh or last used against this same topology epoch.
    pub fn plan_establish_traced(
        &self,
        scratch: &mut RouteScratch,
        src: NodeId,
        dst: NodeId,
        qos: ElasticQos,
    ) -> (Result<EstablishPlan, AdmissionError>, Vec<(LinkId, u64)>) {
        if let Err(e) = self.check_endpoints(src, dst) {
            return (Err(e), Vec::new());
        }
        let footprint: RefCell<Vec<LinkId>> = RefCell::new(Vec::new());
        let result = self.plan_routes(scratch, src, dst, qos.min(), Some(&footprint));
        let digests = self.footprint_digests(footprint.into_inner());
        (
            result.map(|(primary, backups)| EstablishPlan {
                qos,
                primary,
                backups,
            }),
            digests,
        )
    }

    /// Endpoint validation shared by every planning entry point.
    fn check_endpoints(&self, src: NodeId, dst: NodeId) -> Result<(), AdmissionError> {
        if !self.graph.contains_node(src) {
            return Err(AdmissionError::UnknownNode(src));
        }
        if !self.graph.contains_node(dst) {
            return Err(AdmissionError::UnknownNode(dst));
        }
        if src == dst {
            return Err(AdmissionError::SameEndpoints(src));
        }
        Ok(())
    }

    /// Sorts, dedups, and digests a raw probe log. A plain Vec with
    /// deferred dedup: the search probes links far more often than there
    /// are distinct links, and a push is much cheaper than an ordered-set
    /// insert on this hot path.
    fn footprint_digests(&self, mut probed: Vec<LinkId>) -> Vec<(LinkId, u64)> {
        probed.sort_unstable();
        probed.dedup();
        probed
            .into_iter()
            .map(|l| (l, self.links[l.index()].plan_digest()))
            .collect()
    }

    /// The route search shared by [`Network::plan_establish`] and
    /// [`Network::plan_establish_traced`]: primary (with optional seeded
    /// disjoint pair) plus backups, probing links through `fp` when the
    /// caller records a footprint.
    fn plan_routes(
        &self,
        scratch: &mut RouteScratch,
        src: NodeId,
        dst: NodeId,
        min: Bandwidth,
        fp: Option<&RefCell<Vec<LinkId>>>,
    ) -> Result<(Path, Vec<Path>), AdmissionError> {
        let touch = |l: LinkId| {
            if let Some(f) = fp {
                f.borrow_mut().push(l);
            }
        };
        let primary_filter = |l: LinkId| {
            touch(l);
            self.links[l.index()].can_admit_primary(min)
        };
        let primary_allowance = |l: LinkId| {
            touch(l);
            let u = &self.links[l.index()];
            u.capacity().saturating_sub(u.hard_committed())
        };
        let mut seeded_backup: Option<Path> = None;
        let primary = match self.config.router {
            RouterKind::SuurballePair => {
                // Try the jointly optimal pair first.
                if let Some((first, second)) =
                    routing::route_pair(&self.graph, src, dst, &primary_filter)
                {
                    if self.backup_fits(&second, min, &first, fp) {
                        seeded_backup = Some(second);
                    }
                    Some(first)
                } else {
                    // No disjoint pair: fall back to a single shortest path
                    // (the backup search below will fail if one is required).
                    routing::route_primary_with(
                        scratch,
                        self.config.router,
                        &self.graph,
                        src,
                        dst,
                        &primary_filter,
                        &primary_allowance,
                    )
                }
            }
            _ => routing::route_primary_with(
                scratch,
                self.config.router,
                &self.graph,
                src,
                dst,
                &primary_filter,
                &primary_allowance,
            ),
        };
        let Some(primary) = primary else {
            return Err(AdmissionError::NoPrimaryRoute);
        };
        let want = if self.config.require_backup {
            self.config.backup_count.max(1)
        } else {
            self.config.backup_count
        };
        let mut backups: Vec<Path> = Vec::new();
        if let Some(b) = seeded_backup {
            backups.push(b);
        }
        while backups.len() < want {
            let Some(b) = self.plan_backup(scratch, &primary, min, &backups, fp) else {
                break;
            };
            backups.push(b);
        }
        if backups.is_empty() && self.config.require_backup {
            return Err(AdmissionError::NoBackupRoute);
        }
        Ok((primary, backups))
    }

    /// Routes one more backup for the given primary path, link-disjoint
    /// from the already-chosen `existing` backups, or `None`. Probed links
    /// are recorded into `fp` when the caller is building a cache
    /// footprint (`None` on the non-cached maintenance paths).
    fn plan_backup(
        &self,
        scratch: &mut RouteScratch,
        primary: &Path,
        min: Bandwidth,
        existing: &[Path],
        fp: Option<&RefCell<Vec<LinkId>>>,
    ) -> Option<Path> {
        let primary_links = primary.links().to_vec();
        let taken: BTreeSet<LinkId> = existing
            .iter()
            .flat_map(|b| b.links().iter().copied())
            .collect();
        let touch = |l: LinkId| {
            if let Some(f) = fp {
                f.borrow_mut().push(l);
            }
        };
        let backup_filter = |l: LinkId| {
            touch(l);
            !taken.contains(&l)
                && self.links[l.index()].can_admit_backup(min, &conflict_set(&primary_links, l))
        };
        let backup_allowance = |l: LinkId| {
            touch(l);
            let u = &self.links[l.index()];
            u.capacity().saturating_sub(
                u.primary_min_sum()
                    + u.reservation_if_backup_added(min, &conflict_set(&primary_links, l)),
            )
        };
        routing::route_backup_with(
            scratch,
            self.config.router,
            &self.graph,
            primary,
            self.config.disjointness,
            &backup_filter,
            &backup_allowance,
        )
    }

    /// Whether `backup` fits (reservation-wise) on every link for a
    /// connection with the given `min` and `primary`. Probed links are
    /// recorded into `fp` when building a cache footprint.
    fn backup_fits(
        &self,
        backup: &Path,
        min: Bandwidth,
        primary: &Path,
        fp: Option<&RefCell<Vec<LinkId>>>,
    ) -> bool {
        backup.links().iter().all(|&l| {
            if let Some(f) = fp {
                f.borrow_mut().push(l);
            }
            self.links[l.index()].can_admit_backup(min, &conflict_set(primary.links(), l))
        })
    }

    /// Commits a plan: reserves resources, retreats directly-chained
    /// channels, and re-distributes extras. Returns the new connection id.
    ///
    /// A plan must be committed against the same network state it was made
    /// from (plan → observe → commit is the supported sequence; interleaved
    /// mutations void the feasibility checks).
    pub fn commit_establish(&mut self, plan: EstablishPlan) -> ConnectionId {
        let retreated = self.chained_by(&plan);
        let (id, candidates) = self.commit_deferring_fill(plan, retreated);
        self.redistribute(&candidates);
        id
    }

    /// The "directly chained" set of `plan`: every primary sharing a link
    /// with the plan's channels. Membership never depends on extras.
    fn chained_by(&self, plan: &EstablishPlan) -> BTreeSet<ConnectionId> {
        let mut new_links: BTreeSet<LinkId> = plan.primary.links().iter().copied().collect();
        for b in &plan.backups {
            new_links.extend(b.links().iter().copied());
        }
        self.primaries_on_links(new_links.iter().copied())
    }

    /// Commits `plan` against its (already-computed) retreat set but does
    /// *not* run the redistribution fill: the returned candidate set must
    /// eventually be passed to `redistribute` by the caller. Splitting the
    /// fill off lets [`Network::establish_batch`] skip fills the next
    /// commit would fully undo.
    fn commit_deferring_fill(
        &mut self,
        plan: EstablishPlan,
        retreated: BTreeSet<ConnectionId>,
    ) -> (ConnectionId, BTreeSet<ConnectionId>) {
        let id = ConnectionId(self.next_id);
        self.next_id += 1;
        // 1. Retreat every primary that shares a link with the new
        //    connection's channels ("directly chained").
        for &c in &retreated {
            self.retreat(c);
        }
        // 2. Reserve the new connection's resources.
        let min = plan.qos.min();
        for &l in plan.primary.links() {
            self.links[l.index()].add_primary(id, min);
        }
        for b in &plan.backups {
            for &l in b.links() {
                self.links[l.index()].add_backup(id, min, &conflict_set(plan.primary.links(), l));
            }
        }
        let conn = DrConnection::new(id, plan.qos, plan.primary, plan.backups);
        self.total_bandwidth += conn.bandwidth();
        self.connections.insert(id, conn);
        // 3. Fill candidates: the retreated channels, the newcomer, and
        //    anyone sharing a link with a retreated channel can grow.
        let retreat_links: BTreeSet<LinkId> = retreated
            .iter()
            .flat_map(|c| self.connections[c].primary().links().iter().copied())
            .collect();
        let mut candidates = retreated;
        candidates.insert(id);
        candidates.extend(self.primaries_on_links(retreat_links.iter().copied()));
        (id, candidates)
    }

    /// Establishes a group of requests with *identical results* to calling
    /// [`Network::establish`] once per request in the given order — same
    /// admission outcomes, same connection ids, same final network state —
    /// while eliding redistribution fills that the very next commit would
    /// fully undo, and sharing one route-search scratch across the group.
    ///
    /// Correctness rests on a deliberate property of the admission layer:
    /// planning, retreat sets, and fill candidate sets never read extras
    /// (see `link_state` — `can_admit_primary`/`can_admit_backup`, the
    /// allowances, and `plan_digest` all exclude them as reclaimable). A
    /// pending fill over candidates `K` is therefore invisible to every
    /// later *plan*; and when the next successful commit retreats all of
    /// `K` (`K ⊆ R`), the fill's grants would be unwound before anything
    /// could observe them, so the fill is skipped outright. Otherwise the
    /// pending fill runs exactly where sequential execution would have run
    /// it — before that commit's retreats. `fuzz --diff-batch` replays
    /// batched and sequential networks in lockstep and compares full
    /// snapshots to enforce the equivalence empirically.
    ///
    /// Requests are processed in the order given. Callers that are free to
    /// reorder — concurrent `drqosd` clients carry no cross-client
    /// ordering contract — can use [`Network::contention_order`] to group
    /// requests over contended links so the skip rule fires more often.
    pub fn establish_batch(
        &mut self,
        requests: &[EstablishRequest],
    ) -> Vec<Result<ConnectionId, AdmissionError>> {
        let mut results = Vec::with_capacity(requests.len());
        // Fill candidates of the last commit, not yet redistributed.
        let mut pending: Option<BTreeSet<ConnectionId>> = None;
        for req in requests {
            let plan = match self.plan_establish(req.src, req.dst, req.qos) {
                Ok(plan) => plan,
                Err(e) => {
                    // Planning never reads extras, so the deferred fill
                    // cannot have changed this outcome.
                    results.push(Err(e));
                    continue;
                }
            };
            results.push(Ok(self.batch_commit(plan, &mut pending)));
        }
        self.batch_flush(pending);
        results
    }

    /// One commit step of a batch/wave: flushes the previous commit's
    /// deferred fill unless this commit's retreats subsume it, then
    /// commits `plan` deferring its own fill into `pending`.
    ///
    /// Shared by [`Network::establish_batch`], the sharded engine's wave
    /// committer, and the cluster coordinator's two-phase commit so all
    /// three elide identically (the elision is proven result-equivalent
    /// by `fuzz --diff-batch`).
    pub fn batch_commit(
        &mut self,
        plan: EstablishPlan,
        pending: &mut Option<BTreeSet<ConnectionId>>,
    ) -> ConnectionId {
        let retreated = self.chained_by(&plan);
        if let Some(fill) = pending.take() {
            if !fill.iter().all(|c| retreated.contains(c)) {
                // Some candidate would keep its granted increments past
                // this commit: run the fill at its sequential point,
                // before this commit's retreats.
                self.redistribute(&fill);
            }
        }
        let (id, candidates) = self.commit_deferring_fill(plan, retreated);
        *pending = Some(candidates);
        id
    }

    /// Flushes the final deferred fill of a batch/wave.
    pub fn batch_flush(&mut self, pending: Option<BTreeSet<ConnectionId>>) {
        if let Some(fill) = pending {
            self.redistribute(&fill);
        }
    }

    /// A processing order for a batch, grouping requests whose endpoints
    /// sit on the most-contended links first: indices into `requests`,
    /// sorted by descending hard commitment per unit capacity of the
    /// hottest up-link incident to either endpoint, ties broken by input
    /// position (the order is a deterministic function of network state).
    ///
    /// Reordering is the *caller's* choice — [`Network::establish_batch`]
    /// itself is order-preserving. The daemon applies this to
    /// concurrently drained requests, which have no cross-client ordering
    /// contract; grouping contended requests adjacently both cuts retreat
    /// thrash and lets the batch skip rule fire more often.
    pub fn contention_order(&self, requests: &[EstablishRequest]) -> Vec<usize> {
        let node_heat = |n: NodeId| -> u64 {
            if !self.graph.contains_node(n) {
                return 0;
            }
            self.graph
                .neighbors(n)
                .iter()
                .map(|&(_, l)| {
                    let u = &self.links[l.index()];
                    if !u.is_up() {
                        return 0;
                    }
                    // Hard commitment per unit capacity, in parts per 2^16
                    // (integer arithmetic keeps the order platform-exact).
                    (u.hard_committed().as_kbps() << 16) / u.capacity().as_kbps().max(1)
                })
                .max()
                .unwrap_or(0)
        };
        let heat: Vec<u64> = requests
            .iter()
            .map(|r| node_heat(r.src).max(node_heat(r.dst)))
            .collect();
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| heat[b].cmp(&heat[a]).then(a.cmp(&b)));
        order
    }

    /// Convenience: plan + commit in one call.
    ///
    /// # Errors
    ///
    /// See [`Network::plan_establish`].
    pub fn establish(
        &mut self,
        src: NodeId,
        dst: NodeId,
        qos: ElasticQos,
    ) -> Result<ConnectionId, AdmissionError> {
        let plan = self.plan_establish(src, dst, qos)?;
        Ok(self.commit_establish(plan))
    }

    // ------------------------------------------------------ termination --

    /// Releases a connection, returning it. Channels that shared links may
    /// grow into the freed bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownConnection`] for an unknown id.
    pub fn release(&mut self, id: ConnectionId) -> Result<DrConnection, NetworkError> {
        if !self.connections.contains_key(&id) {
            return Err(NetworkError::UnknownConnection(id.0));
        }
        self.retreat(id);
        // lint:allow(no-panic-daemon): contains_key is checked at fn entry
        let conn = self.connections.remove(&id).expect("checked above");
        let min = conn.qos().min();
        for &l in conn.primary().links() {
            self.links[l.index()].remove_primary(id, min);
        }
        for b in conn.backups() {
            for &l in b.links() {
                self.links[l.index()].remove_backup(
                    id,
                    min,
                    &conflict_set(conn.primary().links(), l),
                );
            }
        }
        self.total_bandwidth -= conn.bandwidth();
        // Beneficiaries: primaries on any link the departed connection
        // touched (its backup links free reservation too).
        let mut freed: BTreeSet<LinkId> = conn.primary().links().iter().copied().collect();
        for b in conn.backups() {
            freed.extend(b.links().iter().copied());
        }
        let candidates = self.primaries_on_links(freed.iter().copied());
        self.redistribute(&candidates);
        Ok(conn)
    }

    // ---------------------------------------------------------- failure --

    /// Fails a link: activates backups of the primaries crossing it,
    /// retreats channels sharing links with activated backups, and
    /// re-distributes. Connections without a usable backup are dropped.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownLink`] for an out-of-range link.
    /// * [`NetworkError::LinkStateUnchanged`] if the link is already down.
    pub fn fail_link(&mut self, link: LinkId) -> Result<FailureReport, NetworkError> {
        if !self.graph.contains_link(link) {
            return Err(NetworkError::UnknownLink(link));
        }
        if !self.links[link.index()].is_up() {
            return Err(NetworkError::LinkStateUnchanged(link));
        }
        self.links[link.index()].set_up(false);
        self.topology_epoch += 1;
        self.lock_cache().evict_link(link);

        let victims: Vec<ConnectionId> = self.links[link.index()].primaries().collect();
        let backup_losers: Vec<ConnectionId> = self.links[link.index()]
            .backups()
            .filter(|c| !victims.contains(c))
            .collect();

        // Connections with a backup crossing the failed link lose that
        // backup (other backups survive).
        let mut lost_backup = Vec::new();
        for id in backup_losers {
            self.remove_crossing_backups(id, link);
            lost_backup.push(id);
        }

        let mut activated = Vec::new();
        let mut dropped = Vec::new();
        for id in victims {
            // The first backup whose links are all up is activated.
            let usable_idx = self.connections[&id]
                .backups()
                .iter()
                .position(|b| b.links().iter().all(|&l| self.links[l.index()].is_up()));
            self.retreat(id);
            // Tear down the old primary's reservations.
            let (min, primary_links) = {
                let c = &self.connections[&id];
                (c.qos().min(), c.primary().links().to_vec())
            };
            for &l in &primary_links {
                self.links[l.index()].remove_primary(id, min);
            }
            if let Some(idx) = usable_idx {
                // Unregister every backup's reservations (they were keyed
                // to the old primary), promote the usable one, and re-key
                // the survivors against the new primary.
                self.unregister_backup_links(id);
                let (new_links, survivors) = {
                    // lint:allow(no-panic-daemon): id came from this link's victim set
                    let conn = self.connections.get_mut(&id).expect("victim exists");
                    conn.activate_backup(idx);
                    (conn.primary().links().to_vec(), conn.backups().to_vec())
                };
                for &l in &new_links {
                    self.links[l.index()].add_primary(id, min);
                }
                // Survivors with a dead link are lost; the rest re-register.
                let mut keep = Vec::new();
                for b in survivors {
                    if b.links().iter().all(|&l| self.links[l.index()].is_up()) {
                        for &l in b.links() {
                            self.links[l.index()].add_backup(id, min, &conflict_set(&new_links, l));
                        }
                        keep.push(b);
                    }
                }
                {
                    // lint:allow(no-panic-daemon): id came from this link's victim set
                    let conn = self.connections.get_mut(&id).expect("victim exists");
                    conn.clear_backups();
                    for b in keep {
                        conn.push_backup(b);
                    }
                }
                activated.push(id);
            } else {
                // No usable backup: the connection is lost.
                self.unregister_backup_links(id);
                // lint:allow(no-panic-daemon): id came from this link's victim set
                let mut conn = self.connections.remove(&id).expect("victim exists");
                conn.clear_backups();
                self.total_bandwidth -= conn.bandwidth();
                self.dropped_total += 1;
                dropped.push(id);
            }
        }

        // Channels sharing links with activated backups retreat.
        let activated_links: BTreeSet<LinkId> = activated
            .iter()
            .flat_map(|c| self.connections[c].primary().links().iter().copied())
            .collect();
        let mut retreated = self.primaries_on_links(activated_links.iter().copied());
        for a in &activated {
            retreated.remove(a);
        }
        for &c in &retreated {
            self.retreat(c);
        }

        // Re-distribute whatever is still spare.
        let mut candidates = retreated.clone();
        candidates.extend(activated.iter().copied());
        let retreat_links: BTreeSet<LinkId> = retreated
            .iter()
            .flat_map(|c| self.connections[c].primary().links().iter().copied())
            .collect();
        candidates.extend(self.primaries_on_links(retreat_links.iter().copied()));
        self.redistribute(&candidates);

        // Re-establish backups for survivors that lost theirs.
        if self.config.reestablish_backups {
            let needy: Vec<ConnectionId> = activated
                .iter()
                .chain(lost_backup.iter())
                .copied()
                .filter(|id| self.connections.contains_key(id))
                .collect();
            for id in needy {
                self.top_up_backups(id);
            }
        }

        Ok(FailureReport {
            link,
            activated,
            dropped,
            lost_backup,
            retreated: retreated.into_iter().collect(),
        })
    }

    /// Fails a node: every adjacent link goes down (a router crash or
    /// power outage — the paper's "persistent faults like power outage").
    /// Equivalent to failing each adjacent up link in id order; returns the
    /// per-link reports.
    ///
    /// Note that connections *terminating* at the failed node are dropped
    /// (their backups also terminate there), which is the physically
    /// correct outcome.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownNode`] if `node` is not a node of the graph.
    /// * [`NetworkError::NodeAlreadyDown`] if every adjacent link is
    ///   already down (failing the node again would change nothing).
    pub fn fail_node(&mut self, node: NodeId) -> Result<Vec<FailureReport>, NetworkError> {
        if !self.graph.contains_node(node) {
            return Err(NetworkError::UnknownNode(node));
        }
        let adjacent: Vec<LinkId> = self
            .graph
            .neighbors(node)
            .iter()
            .map(|&(_, l)| l)
            .filter(|&l| self.links[l.index()].is_up())
            .collect();
        if adjacent.is_empty() {
            return Err(NetworkError::NodeAlreadyDown(node));
        }
        let mut reports = Vec::with_capacity(adjacent.len());
        for l in adjacent {
            // lint:allow(no-panic-daemon): adjacent was filtered to up links above
            reports.push(self.fail_link(l).expect("filtered to up links above"));
        }
        Ok(reports)
    }

    // ------------------------------------------- shared-risk link groups --

    /// Registers a shared-risk link group (links that fail together: fibres
    /// in one conduit, a transit domain behind one provider) and returns
    /// its group id. Members are stored sorted and deduplicated, so the
    /// same link set always registers identically regardless of input
    /// order.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownLink`] if any member is out of range.
    pub fn register_srlg(&mut self, links: Vec<LinkId>) -> Result<usize, NetworkError> {
        for &l in &links {
            if !self.graph.contains_link(l) {
                return Err(NetworkError::UnknownLink(l));
            }
        }
        let mut members = links;
        members.sort_unstable();
        members.dedup();
        let id = self.srlgs.len();
        self.srlgs.push(members);
        Ok(id)
    }

    /// Number of registered shared-risk groups.
    pub fn srlg_count(&self) -> usize {
        self.srlgs.len()
    }

    /// Member links of a registered group, or `None` for an unknown id.
    pub fn srlg_links(&self, group: usize) -> Option<&[LinkId]> {
        self.srlgs.get(group).map(|m| m.as_slice())
    }

    /// Fails every currently-up member of a shared-risk group atomically
    /// (one correlated event), in link-id order; returns the per-link
    /// reports. Members that are already down — e.g. taken out by an
    /// earlier `fail_node` or an overlapping group — are skipped, so a
    /// connection can never be double-counted in `dropped_total` by
    /// overlapping failure sources.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownSrlg`] for an unregistered group id.
    /// * [`NetworkError::SrlgStateUnchanged`] if every member is already
    ///   down (firing the group again would change nothing).
    pub fn fail_srlg(&mut self, group: usize) -> Result<Vec<FailureReport>, NetworkError> {
        let Some(members) = self.srlgs.get(group) else {
            return Err(NetworkError::UnknownSrlg(group));
        };
        let up: Vec<LinkId> = members
            .iter()
            .copied()
            .filter(|&l| self.links[l.index()].is_up())
            .collect();
        if up.is_empty() {
            return Err(NetworkError::SrlgStateUnchanged(group));
        }
        let mut reports = Vec::with_capacity(up.len());
        for l in up {
            // lint:allow(no-panic-daemon): up was filtered to up links above
            reports.push(self.fail_link(l).expect("filtered to up links above"));
        }
        Ok(reports)
    }

    /// Repairs every currently-down member of a shared-risk group, in
    /// link-id order; returns the deduplicated ids that regained a backup.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownSrlg`] for an unregistered group id.
    /// * [`NetworkError::SrlgStateUnchanged`] if every member is already
    ///   up.
    pub fn repair_srlg(&mut self, group: usize) -> Result<Vec<ConnectionId>, NetworkError> {
        let Some(members) = self.srlgs.get(group) else {
            return Err(NetworkError::UnknownSrlg(group));
        };
        let down: Vec<LinkId> = members
            .iter()
            .copied()
            .filter(|&l| !self.links[l.index()].is_up())
            .collect();
        if down.is_empty() {
            return Err(NetworkError::SrlgStateUnchanged(group));
        }
        let mut regained: BTreeSet<ConnectionId> = BTreeSet::new();
        for l in down {
            // lint:allow(no-panic-daemon): down was filtered to down links above
            regained.extend(self.repair_link(l).expect("filtered to down links above"));
        }
        Ok(regained.into_iter().collect())
    }

    /// Repairs a link and re-attempts backup establishment for connections
    /// missing one. Returns the ids that regained a backup.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::UnknownLink`] for an out-of-range link.
    /// * [`NetworkError::LinkStateUnchanged`] if the link is already up.
    pub fn repair_link(&mut self, link: LinkId) -> Result<Vec<ConnectionId>, NetworkError> {
        if !self.graph.contains_link(link) {
            return Err(NetworkError::UnknownLink(link));
        }
        if self.links[link.index()].is_up() {
            return Err(NetworkError::LinkStateUnchanged(link));
        }
        self.links[link.index()].set_up(true);
        self.topology_epoch += 1;
        self.lock_cache().evict_link(link);
        let mut regained = Vec::new();
        if self.config.reestablish_backups {
            let target = self.config.backup_count;
            let needy: Vec<ConnectionId> = self
                .connections
                .values()
                .filter(|c| c.backup_count() < target)
                .map(|c| c.id())
                .collect();
            for id in needy {
                if self.top_up_backups(id) {
                    regained.push(id);
                }
            }
        }
        Ok(regained)
    }

    /// Attempts to bring `id` up to the configured backup count; returns
    /// whether any backup was added.
    fn top_up_backups(&mut self, id: ConnectionId) -> bool {
        let target = self.config.backup_count;
        let (primary, min) = {
            let c = &self.connections[&id];
            if c.backup_count() >= target {
                return false;
            }
            (c.primary().clone(), c.qos().min())
        };
        let mut added = false;
        loop {
            let existing = self.connections[&id].backups().to_vec();
            if existing.len() >= target {
                break;
            }
            let Some(backup) = self
                .with_scratch(|scratch| self.plan_backup(scratch, &primary, min, &existing, None))
            else {
                break;
            };
            for &l in backup.links() {
                self.links[l.index()].add_backup(id, min, &conflict_set(primary.links(), l));
            }
            self.connections
                .get_mut(&id)
                .expect("caller checked existence") // lint:allow(no-panic-daemon): private helper, callers hold the id
                .push_backup(backup);
            added = true;
        }
        added
    }

    /// Removes from `id` every backup that crosses `link`, unregistering
    /// their reservations.
    fn remove_crossing_backups(&mut self, id: ConnectionId, link: LinkId) {
        let (min, primary_links) = {
            let c = &self.connections[&id];
            (c.qos().min(), c.primary().links().to_vec())
        };
        loop {
            let crossing = self.connections[&id]
                .backups()
                .iter()
                .position(|b| b.crosses(link));
            let Some(idx) = crossing else { break };
            let removed = self
                .connections
                .get_mut(&id)
                .expect("caller checked existence") // lint:allow(no-panic-daemon): private helper, callers hold the id
                .remove_backup(idx);
            for &l in removed.links() {
                self.links[l.index()].remove_backup(id, min, &conflict_set(&primary_links, l));
            }
        }
    }

    /// Removes the link registrations of *all* of `id`'s backups, leaving
    /// the backup paths on the connection (used around failover re-keying).
    fn unregister_backup_links(&mut self, id: ConnectionId) {
        let (min, primary_links, backup_link_lists) = {
            let c = &self.connections[&id];
            (
                c.qos().min(),
                c.primary().links().to_vec(),
                c.backups()
                    .iter()
                    .map(|b| b.links().to_vec())
                    .collect::<Vec<_>>(),
            )
        };
        for links in backup_link_lists {
            for &l in &links {
                self.links[l.index()].remove_backup(id, min, &conflict_set(&primary_links, l));
            }
        }
    }

    // ----------------------------------------------- elastic adaptation --

    /// Drops `id` to its minimum level, returning extras to its links.
    fn retreat(&mut self, id: ConnectionId) {
        let conn = self
            .connections
            .get_mut(&id)
            .expect("retreat of unknown id"); // lint:allow(no-panic-daemon): private helper, callers hold the id
        let extra = conn.extra();
        if extra == Bandwidth::ZERO {
            return;
        }
        conn.set_level(0);
        let links = conn.primary().links().to_vec();
        for l in links {
            self.links[l.index()].remove_extra(extra);
        }
        self.total_bandwidth -= extra;
    }

    /// All primaries crossing any of `links`.
    fn primaries_on_links(
        &self,
        links: impl IntoIterator<Item = LinkId>,
    ) -> BTreeSet<ConnectionId> {
        let mut out = BTreeSet::new();
        for l in links {
            out.extend(self.links[l.index()].primaries());
        }
        out
    }

    /// The connections whose *primary* crosses any of `links` — the
    /// "directly chained" set used both for retreat decisions and for the
    /// `P_f` measurement.
    pub fn primaries_sharing(
        &self,
        links: impl IntoIterator<Item = LinkId>,
    ) -> BTreeSet<ConnectionId> {
        self.primaries_on_links(links)
    }

    /// The links that are currently operational.
    pub fn up_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_up())
            .map(|(i, _)| LinkId(i))
    }

    /// Whether `id` can absorb one more increment on every link of its
    /// path.
    fn can_grow(&self, id: ConnectionId) -> bool {
        let conn = &self.connections[&id];
        if conn.level() >= conn.qos().max_level() {
            return false;
        }
        let inc = conn.qos().increment();
        conn.primary()
            .links()
            .iter()
            .all(|&l| self.links[l.index()].is_up() && self.links[l.index()].headroom() >= inc)
    }

    /// Grants one increment to `id`.
    fn grant(&mut self, id: ConnectionId) {
        // lint:allow(no-panic-daemon): private helper, grant targets come from the live set
        let conn = self.connections.get_mut(&id).expect("grant of unknown id");
        let inc = conn.qos().increment();
        conn.set_level(conn.level() + 1);
        let links = conn.primary().links().to_vec();
        for l in links {
            self.links[l.index()].add_extra(inc);
        }
        self.total_bandwidth += inc;
    }

    /// Water-fills extra increments over `candidates` according to the
    /// adaptation policy. Headroom only shrinks during the fill, so a
    /// lazy priority queue suffices.
    fn redistribute(&mut self, candidates: &BTreeSet<ConnectionId>) {
        #[derive(PartialEq)]
        struct Scored {
            score: f64,
            id: ConnectionId,
        }
        impl Eq for Scored {}
        impl PartialOrd for Scored {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Scored {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on (score, id): BinaryHeap is a max-heap, so flip.
                other
                    .score
                    .total_cmp(&self.score)
                    .then_with(|| other.id.cmp(&self.id))
            }
        }
        let score = |policy: AdaptationPolicy, conn: &DrConnection| -> f64 {
            match policy {
                // Highest utility first; level is irrelevant (monopolize).
                AdaptationPolicy::MaxUtility => -conn.qos().utility(),
                // Progressive filling: lowest weighted level first.
                AdaptationPolicy::Coefficient => (conn.level() as f64 + 1.0) / conn.qos().utility(),
            }
        };
        let policy = self.config.policy;
        let mut heap: BinaryHeap<Scored> = candidates
            .iter()
            .filter(|id| self.connections.contains_key(id))
            .map(|&id| Scored {
                score: score(policy, &self.connections[&id]),
                id,
            })
            .collect();
        while let Some(Scored { id, .. }) = heap.pop() {
            if !self.can_grow(id) {
                // Headroom never grows during the fill: drop permanently.
                continue;
            }
            self.grant(id);
            heap.push(Scored {
                score: score(policy, &self.connections[&id]),
                id,
            });
        }
    }

    // ------------------------------------------------------- validation --

    /// Recomputes all per-link accounting from the connection table and
    /// compares it against the incremental bookkeeping, returning every
    /// discrepancy instead of stopping at the first. O(C·hops + L); the
    /// testkit's oracles run this after every operation.
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let mut min_sums = vec![Bandwidth::ZERO; self.links.len()];
        let mut extra_sums = vec![Bandwidth::ZERO; self.links.len()];
        let mut primary_sets: Vec<BTreeSet<ConnectionId>> = vec![BTreeSet::new(); self.links.len()];
        let mut backup_sets: Vec<BTreeSet<ConnectionId>> = vec![BTreeSet::new(); self.links.len()];
        let mut total = Bandwidth::ZERO;
        for conn in self.connections.values() {
            total += conn.bandwidth();
            if conn.level() > conn.qos().max_level() {
                violations.push(InvariantViolation::LevelAboveMax {
                    conn: conn.id(),
                    level: conn.level(),
                    max: conn.qos().max_level(),
                });
            }
            for &l in conn.primary().links() {
                min_sums[l.index()] += conn.qos().min();
                extra_sums[l.index()] += conn.extra();
                primary_sets[l.index()].insert(conn.id());
            }
            for (i, b) in conn.backups().iter().enumerate() {
                if b == conn.primary() {
                    violations.push(InvariantViolation::BackupEqualsPrimary { conn: conn.id() });
                }
                if self.config.disjointness == BackupDisjointness::Strict
                    && !conn.primary().is_link_disjoint(b)
                {
                    violations.push(InvariantViolation::BackupNotDisjoint { conn: conn.id() });
                }
                for other in &conn.backups()[i + 1..] {
                    if !b.is_link_disjoint(other) {
                        violations.push(InvariantViolation::BackupsNotMutuallyDisjoint {
                            conn: conn.id(),
                        });
                    }
                }
                for &l in b.links() {
                    backup_sets[l.index()].insert(conn.id());
                }
            }
        }
        if total != self.total_bandwidth {
            violations.push(InvariantViolation::TotalBandwidthMismatch {
                cached: self.total_bandwidth,
                recomputed: total,
            });
        }
        for (i, usage) in self.links.iter().enumerate() {
            let link = LinkId(i);
            if usage.primary_min_sum() != min_sums[i] {
                violations.push(InvariantViolation::MinSumMismatch {
                    link,
                    cached: usage.primary_min_sum(),
                    recomputed: min_sums[i],
                });
            }
            if usage.extra_sum() != extra_sums[i] {
                violations.push(InvariantViolation::ExtraSumMismatch {
                    link,
                    cached: usage.extra_sum(),
                    recomputed: extra_sums[i],
                });
            }
            if usage.primaries().collect::<BTreeSet<_>>() != primary_sets[i] {
                violations.push(InvariantViolation::PrimarySetMismatch { link });
            }
            if usage.backups().collect::<BTreeSet<_>>() != backup_sets[i] {
                violations.push(InvariantViolation::BackupSetMismatch { link });
            }
            if usage.primary_min_sum() + usage.extra_sum() > usage.capacity() {
                violations.push(InvariantViolation::CapacityExceeded {
                    link,
                    allocated: usage.primary_min_sum() + usage.extra_sum(),
                    capacity: usage.capacity(),
                });
            }
            if usage.recomputed_reservation() != usage.backup_reservation() {
                violations.push(InvariantViolation::ReservationOutOfSync {
                    link,
                    cached: usage.backup_reservation(),
                    recomputed: usage.recomputed_reservation(),
                });
            }
        }
        violations
    }

    /// Panicking wrapper around [`Self::check_invariants`]; used by tests
    /// and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with every violation listed, one per line, if any invariant
    /// is violated.
    pub fn validate(&self) {
        let violations = self.check_invariants();
        assert!(
            violations.is_empty(),
            "network invariants violated:\n{}",
            crate::invariant::format_violations(&violations)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_topology::regular;

    fn qos() -> ElasticQos {
        ElasticQos::paper_video(100) // 100..500 step 100, 5 levels
    }

    /// A 6-ring with tiny capacity for easy saturation tests.
    fn small_net(capacity_kbps: u64) -> Network {
        let g = regular::ring(6).unwrap();
        Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(capacity_kbps),
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn establish_reserves_and_grows_to_max() {
        let mut net = small_net(10_000);
        let id = net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        let c = net.connection(id).unwrap();
        // Alone in the network: grows to the maximum level.
        assert_eq!(c.bandwidth(), Bandwidth::kbps(500));
        assert!(c.has_backup());
        assert!(c.primary().is_link_disjoint(c.backup().unwrap()));
        net.validate();
    }

    #[test]
    fn arrival_forces_retreat_and_redistribution() {
        let mut net = small_net(800);
        // First connection takes 0-1-2 and grows to 500.
        let a = net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        assert_eq!(net.connection(a).unwrap().bandwidth(), Bandwidth::kbps(500));
        // Second connection 1-3 overlaps on link 1-2: with 800 Kbps there
        // is not room for two 500 Kbps channels — both retreat and split
        // the 600 Kbps of extras fairly.
        let b = net.establish(NodeId(1), NodeId(3), qos()).unwrap();
        net.validate();
        let bw_a = net.connection(a).unwrap().bandwidth();
        let bw_b = net.connection(b).unwrap().bandwidth();
        assert!(bw_a < Bandwidth::kbps(500) && bw_b < Bandwidth::kbps(500));
        assert!(bw_a >= Bandwidth::kbps(100) && bw_b >= Bandwidth::kbps(100));
        net.validate();
    }

    #[test]
    fn release_lets_survivors_grow_back() {
        let mut net = small_net(800);
        let a = net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        let b = net.establish(NodeId(1), NodeId(3), qos()).unwrap();
        let before = net.connection(a).unwrap().bandwidth();
        net.release(b).unwrap();
        net.validate();
        let after = net.connection(a).unwrap().bandwidth();
        assert!(after >= before);
        assert_eq!(after, Bandwidth::kbps(500));
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn topology_epoch_tracks_liveness_changes() {
        let mut net = small_net(10_000);
        assert_eq!(net.topology_epoch(), 0);
        let l = net.graph().links().next().unwrap().id();
        net.fail_link(l).unwrap();
        assert_eq!(net.topology_epoch(), 1);
        // No-op mutations (already-down link) leave the epoch alone.
        assert!(net.fail_link(l).is_err());
        assert_eq!(net.topology_epoch(), 1);
        net.repair_link(l).unwrap();
        assert_eq!(net.topology_epoch(), 2);
        // Admission planning still works against the refreshed scratch.
        net.establish(NodeId(0), NodeId(1), qos()).unwrap();
        net.validate();
        // fail_node bumps once per adjacent up link (ring: degree 2).
        net.fail_node(NodeId(3)).unwrap();
        assert_eq!(net.topology_epoch(), 4);
    }

    #[test]
    fn srlg_registration_validates_sorts_and_dedups() {
        let mut net = small_net(10_000);
        assert!(matches!(
            net.register_srlg(vec![LinkId(99)]),
            Err(NetworkError::UnknownLink(LinkId(99)))
        ));
        let g = net
            .register_srlg(vec![LinkId(2), LinkId(0), LinkId(2)])
            .unwrap();
        assert_eq!(g, 0);
        assert_eq!(net.srlg_count(), 1);
        assert_eq!(net.srlg_links(g), Some(&[LinkId(0), LinkId(2)][..]));
        assert_eq!(net.srlg_links(1), None);
    }

    #[test]
    fn srlg_fires_all_members_atomically_and_round_trips() {
        let mut net = small_net(10_000);
        let g = net.register_srlg(vec![LinkId(0), LinkId(3)]).unwrap();
        let reports = net.fail_srlg(g).unwrap();
        assert_eq!(reports.len(), 2, "both members fail in one event");
        assert_eq!(net.topology_epoch(), 2);
        assert!(net.up_links().all(|l| l != LinkId(0) && l != LinkId(3)));
        // Firing again changes nothing.
        assert!(matches!(
            net.fail_srlg(g),
            Err(NetworkError::SrlgStateUnchanged(0))
        ));
        net.repair_srlg(g).unwrap();
        assert_eq!(net.up_links().count(), 6);
        assert!(matches!(
            net.repair_srlg(g),
            Err(NetworkError::SrlgStateUnchanged(0))
        ));
        assert!(matches!(
            net.fail_srlg(7),
            Err(NetworkError::UnknownSrlg(7))
        ));
        net.validate();
    }

    #[test]
    fn srlg_skips_members_already_down() {
        let mut net = small_net(10_000);
        let g = net.register_srlg(vec![LinkId(1), LinkId(4)]).unwrap();
        net.fail_link(LinkId(1)).unwrap();
        // Only the still-up member fails; no error, no double event.
        let reports = net.fail_srlg(g).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports.first().unwrap().link, LinkId(4));
        net.validate();
    }

    #[test]
    fn overlapping_node_and_srlg_failures_conserve_drop_count() {
        // Regression: a fail_node that takes a connection down followed by
        // an SRLG covering the same links must not count the victim twice.
        let mut net = small_net(10_000);
        let a = net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        let g: usize = {
            // The SRLG covers every link node 1 touches, overlapping the
            // primary *and* whatever backups exist.
            let members: Vec<LinkId> = net
                .graph()
                .neighbors(NodeId(1))
                .iter()
                .map(|&(_, l)| l)
                .collect();
            net.register_srlg(members).unwrap()
        };
        net.fail_node(NodeId(1)).unwrap();
        let dropped_after_node = net.dropped_total();
        // The SRLG now has nothing left to do: every member is down.
        assert!(matches!(
            net.fail_srlg(g),
            Err(NetworkError::SrlgStateUnchanged(_))
        ));
        assert_eq!(net.dropped_total(), dropped_after_node);
        // Conservation: dropped + live == established.
        assert_eq!(net.dropped_total() + net.len() as u64, 1);
        let _ = a;
        net.validate();
    }

    #[test]
    fn release_unknown_fails() {
        let mut net = small_net(1_000);
        assert!(matches!(
            net.release(ConnectionId(9)),
            Err(NetworkError::UnknownConnection(9))
        ));
    }

    #[test]
    fn rejects_when_no_min_bandwidth() {
        // Capacity 150: one connection's min (100) + the second's min
        // (100) cannot share any link, and every 0→3 route on the ring
        // shares links with the first connection's channels.
        let mut net = small_net(150);
        net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        let err = net.establish(NodeId(0), NodeId(3), qos()).unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::NoPrimaryRoute | AdmissionError::NoBackupRoute
        ));
        net.validate();
    }

    #[test]
    fn admits_until_minimum_capacity_exhausted() {
        // Capacity 250 fits exactly two 0→3 connections (two 100 Kbps
        // minima per link, 200 Kbps multiplexing-conflict reservation on
        // the backup route), but not three.
        let mut net = small_net(250);
        net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        assert!(net.establish(NodeId(0), NodeId(3), qos()).is_err());
        net.validate();
    }

    #[test]
    fn rejects_same_endpoints_and_unknown_nodes() {
        let mut net = small_net(1_000);
        assert_eq!(
            net.establish(NodeId(1), NodeId(1), qos()),
            Err(AdmissionError::SameEndpoints(NodeId(1)))
        );
        assert_eq!(
            net.establish(NodeId(0), NodeId(17), qos()),
            Err(AdmissionError::UnknownNode(NodeId(17)))
        );
    }

    #[test]
    fn backup_requirement_configurable() {
        // A line has no disjoint pair.
        let g = regular::grid(1, 3).unwrap();
        let mut strict = Network::new(g.clone(), NetworkConfig::default());
        assert_eq!(
            strict.establish(NodeId(0), NodeId(2), qos()),
            Err(AdmissionError::NoBackupRoute)
        );
        let mut lax = Network::new(
            g,
            NetworkConfig {
                require_backup: false,
                ..NetworkConfig::default()
            },
        );
        let id = lax.establish(NodeId(0), NodeId(2), qos()).unwrap();
        assert!(!lax.connection(id).unwrap().has_backup());
        lax.validate();
    }

    #[test]
    fn failover_activates_backup() {
        let mut net = small_net(10_000);
        let id = net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        let primary_first_link = net.connection(id).unwrap().primary().links()[0];
        let backup_path = net.connection(id).unwrap().backup().unwrap().clone();
        let report = net.fail_link(primary_first_link).unwrap();
        assert_eq!(report.activated, vec![id]);
        assert!(report.dropped.is_empty());
        let c = net.connection(id).unwrap();
        assert_eq!(c.primary(), &backup_path);
        assert_eq!(c.failovers(), 1);
        net.validate();
    }

    #[test]
    fn failover_without_backup_drops() {
        let g = regular::grid(1, 3).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                require_backup: false,
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        let l = net.connection(id).unwrap().primary().links()[0];
        let report = net.fail_link(l).unwrap();
        assert_eq!(report.dropped, vec![id]);
        assert!(net.connection(id).is_none());
        assert_eq!(net.dropped_total(), 1);
        assert_eq!(net.len(), 0);
        net.validate();
    }

    #[test]
    fn backup_loss_is_reestablished_where_possible() {
        let mut net = small_net(10_000);
        let id = net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        let backup_link = net.connection(id).unwrap().backup().unwrap().links()[0];
        let report = net.fail_link(backup_link).unwrap();
        assert_eq!(report.lost_backup, vec![id]);
        assert!(report.activated.is_empty());
        // On a 6-ring with one link down there is no second disjoint route,
        // so the backup stays lost until repair.
        assert!(!net.connection(id).unwrap().has_backup());
        let regained = net.repair_link(backup_link).unwrap();
        assert_eq!(regained, vec![id]);
        assert!(net.connection(id).unwrap().has_backup());
        net.validate();
    }

    #[test]
    fn double_fail_and_double_repair_error() {
        let mut net = small_net(10_000);
        net.fail_link(LinkId(0)).unwrap();
        assert!(matches!(
            net.fail_link(LinkId(0)),
            Err(NetworkError::LinkStateUnchanged(_))
        ));
        net.repair_link(LinkId(0)).unwrap();
        assert!(matches!(
            net.repair_link(LinkId(0)),
            Err(NetworkError::LinkStateUnchanged(_))
        ));
        assert!(matches!(
            net.fail_link(LinkId(99)),
            Err(NetworkError::UnknownLink(_))
        ));
    }

    #[test]
    fn failure_forces_sharing_channels_to_retreat() {
        // Torus: rich enough for several disjoint pairs.
        let g = regular::torus(4, 4).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(1_500),
                ..NetworkConfig::default()
            },
        );
        let ids: Vec<ConnectionId> = (0..6)
            .filter_map(|i| net.establish(NodeId(i), NodeId(15 - i), qos()).ok())
            .collect();
        assert!(ids.len() >= 3);
        net.validate();
        // Fail the first primary link of the first connection.
        let l = net.connection(ids[0]).unwrap().primary().links()[0];
        let report = net.fail_link(l).unwrap();
        net.validate();
        // Every surviving activated connection runs at some level; all
        // invariants hold (validate above) and the report is consistent.
        for id in &report.activated {
            assert!(net.connection(*id).is_some());
        }
        for id in &report.dropped {
            assert!(net.connection(*id).is_none());
        }
    }

    #[test]
    fn multi_backup_establishes_mutually_disjoint_spares() {
        let g = regular::complete(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                backup_count: 3,
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(5), qos()).unwrap();
        let c = net.connection(id).unwrap();
        assert_eq!(c.backup_count(), 3);
        let paths: Vec<_> = std::iter::once(c.primary().clone())
            .chain(c.backups().iter().cloned())
            .collect();
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert!(paths[i].is_link_disjoint(&paths[j]), "{i} vs {j}");
            }
        }
        net.validate();
    }

    #[test]
    fn multi_backup_survives_two_failures() {
        let g = regular::complete(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                backup_count: 2,
                reestablish_backups: false, // force reliance on the spares
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(5), qos()).unwrap();
        for round in 1..=2 {
            let l = net.connection(id).unwrap().primary().links()[0];
            let report = net.fail_link(l).unwrap();
            assert_eq!(report.activated, vec![id], "round {round}");
            net.validate();
        }
        let c = net.connection(id).unwrap();
        assert_eq!(c.failovers(), 2);
        assert!(!c.has_backup(), "both spares consumed");
        // A third failure drops it.
        let l = net.connection(id).unwrap().primary().links()[0];
        let report = net.fail_link(l).unwrap();
        assert_eq!(report.dropped, vec![id]);
        net.validate();
    }

    #[test]
    fn multi_backup_partial_when_topology_limits() {
        // A 6-ring has exactly two disjoint routes between any pair: the
        // second and third backups cannot exist.
        let mut net = Network::new(
            regular::ring(6).unwrap(),
            NetworkConfig {
                backup_count: 3,
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        assert_eq!(net.connection(id).unwrap().backup_count(), 1);
        net.validate();
    }

    #[test]
    fn repair_tops_up_to_configured_count() {
        let g = regular::complete(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                backup_count: 2,
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(5), qos()).unwrap();
        let backup_link = net.connection(id).unwrap().backups()[0].links()[0];
        net.fail_link(backup_link).unwrap();
        net.validate();
        // Re-establishment may already have topped it up (other routes
        // exist in a complete graph); after repair the count must be back
        // at the target either way.
        net.repair_link(backup_link).unwrap();
        assert_eq!(net.connection(id).unwrap().backup_count(), 2);
        net.validate();
    }

    #[test]
    fn node_failure_downs_all_adjacent_links() {
        let g = regular::torus(4, 4).unwrap();
        let mut net = Network::new(g, NetworkConfig::default());
        let a = net.establish(NodeId(0), NodeId(10), qos()).unwrap();
        let reports = net.fail_node(NodeId(5)).unwrap();
        assert_eq!(reports.len(), 4, "a torus node has degree 4");
        for &(_, l) in net.graph().neighbors(NodeId(5)) {
            assert!(!net.link_usage(l).is_up());
        }
        // Connection 0→10 may have failed over but must not be corrupted.
        if let Some(c) = net.connection(a) {
            assert!(c.bandwidth() >= Bandwidth::kbps(100));
        }
        net.validate();
    }

    #[test]
    fn node_failure_errors_once_all_links_down() {
        let g = regular::ring(5).unwrap();
        let mut net = Network::new(g, NetworkConfig::default());
        let first = net.fail_node(NodeId(0)).unwrap();
        assert_eq!(first.len(), 2);
        // Second failure of the same node: nothing left to fail.
        assert!(matches!(
            net.fail_node(NodeId(0)),
            Err(NetworkError::NodeAlreadyDown(NodeId(0)))
        ));
        net.validate();
    }

    #[test]
    fn node_failure_checks_bounds() {
        let g = regular::ring(5).unwrap();
        let mut net = Network::new(g, NetworkConfig::default());
        assert!(matches!(
            net.fail_node(NodeId(99)),
            Err(NetworkError::UnknownNode(NodeId(99)))
        ));
        // The error path must not bump the epoch.
        assert_eq!(net.topology_epoch(), 0);
    }

    #[test]
    fn average_bandwidth_tracks_totals() {
        let mut net = small_net(10_000);
        assert_eq!(net.average_bandwidth(), None);
        net.establish(NodeId(0), NodeId(2), qos()).unwrap();
        assert_eq!(net.average_bandwidth(), Some(500.0));
        assert_eq!(net.total_primary_bandwidth(), Bandwidth::kbps(500));
        assert!(net.average_path_hops().unwrap() >= 1.0);
    }

    #[test]
    fn max_utility_policy_monopolizes() {
        let g = regular::ring(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                // 650 = two minima (200) + one full climb (400) + change:
                // only one channel can reach its maximum.
                capacity: Bandwidth::kbps(650),
                policy: AdaptationPolicy::MaxUtility,
                ..NetworkConfig::default()
            },
        );
        // Two overlapping connections; the second has (slightly) higher
        // utility and should take every spare increment.
        let lo = qos().with_utility(1.0).unwrap();
        let hi = qos().with_utility(1.01).unwrap();
        let a = net.establish(NodeId(0), NodeId(3), lo).unwrap();
        let b = net.establish(NodeId(0), NodeId(3), hi).unwrap();
        net.validate();
        let bw_a = net.connection(a).unwrap().bandwidth();
        let bw_b = net.connection(b).unwrap().bandwidth();
        assert!(
            bw_b > bw_a,
            "higher-utility channel should win: {bw_a} vs {bw_b}"
        );
        assert_eq!(bw_a, Bandwidth::kbps(100), "loser stays at minimum");
    }

    #[test]
    fn coefficient_policy_shares_fairly() {
        let g = regular::ring(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(1_000),
                policy: AdaptationPolicy::Coefficient,
                ..NetworkConfig::default()
            },
        );
        let a = net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        let b = net.establish(NodeId(0), NodeId(3), qos()).unwrap();
        net.validate();
        let bw_a = net.connection(a).unwrap().bandwidth();
        let bw_b = net.connection(b).unwrap().bandwidth();
        let diff = bw_a.as_kbps().abs_diff(bw_b.as_kbps());
        assert!(diff <= 100, "fair split expected: {bw_a} vs {bw_b}");
    }

    #[test]
    fn rigid_qos_never_grows() {
        let g = regular::ring(6).unwrap();
        let mut net = Network::new(g, NetworkConfig::default());
        let q = ElasticQos::rigid(Bandwidth::kbps(100)).unwrap();
        let id = net.establish(NodeId(0), NodeId(3), q).unwrap();
        assert_eq!(
            net.connection(id).unwrap().bandwidth(),
            Bandwidth::kbps(100)
        );
        net.validate();
    }

    /// A contended batch must land on exactly the sequential results and
    /// final state: same admissions/rejections, same ids, same snapshot.
    /// (The exhaustive version of this is `fuzz --diff-batch`.)
    #[test]
    fn establish_batch_matches_sequential_exactly() {
        let reqs: Vec<EstablishRequest> = (0..10)
            .map(|i| EstablishRequest {
                src: NodeId(i % 6),
                dst: NodeId((i + 3) % 6),
                qos: qos(),
            })
            .collect();
        let g = regular::ring(6).unwrap();
        let config = NetworkConfig {
            // Tight enough that later requests get rejected and earlier
            // ones fight over increments — both fill paths exercised.
            capacity: Bandwidth::kbps(800),
            ..NetworkConfig::default()
        };
        let mut batched = Network::new(g.clone(), config.clone());
        let mut sequential = Network::new(g, config);
        let batch_results = batched.establish_batch(&reqs);
        let seq_results: Vec<_> = reqs
            .iter()
            .map(|r| sequential.establish(r.src, r.dst, r.qos))
            .collect();
        assert_eq!(batch_results, seq_results);
        batched.validate();
        assert_eq!(
            crate::snapshot::NetworkSnapshot::capture(&batched),
            crate::snapshot::NetworkSnapshot::capture(&sequential),
            "batched and sequential establishment diverged"
        );
        assert!(
            batch_results.iter().any(|r| r.is_ok()) && batch_results.iter().any(|r| r.is_err()),
            "the scenario should mix admissions and rejections"
        );
    }

    #[test]
    fn contention_order_groups_hot_endpoints_first() {
        // A path graph (no backups possible) keeps the load where it is
        // put: only link 0–1 carries commitment.
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
        for w in n.windows(2) {
            g.add_link(w[0], w[1]).unwrap();
        }
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(1_000),
                require_backup: false,
                ..NetworkConfig::default()
            },
        );
        for _ in 0..5 {
            net.establish(n[0], n[1], qos()).unwrap();
        }
        let reqs = [
            EstablishRequest {
                src: n[3],
                dst: n[4],
                qos: qos(),
            },
            EstablishRequest {
                src: n[0],
                dst: n[1],
                qos: qos(),
            },
            EstablishRequest {
                src: NodeId(99), // unknown endpoint sorts cold, not panics
                dst: n[1],
                qos: qos(),
            },
        ];
        // Requests touching the hot link first; the heat tie between #1
        // and #2 (both reach node 1) breaks by input position.
        assert_eq!(net.contention_order(&reqs), vec![1, 2, 0]);
        // An empty batch is fine.
        assert!(net.contention_order(&[]).is_empty());
    }

    #[test]
    fn plan_does_not_mutate() {
        let net = small_net(10_000);
        let plan = net.plan_establish(NodeId(0), NodeId(2), qos()).unwrap();
        assert!(plan.backup().is_some());
        assert_eq!(plan.qos(), &qos());
        assert_eq!(net.len(), 0);
        assert_eq!(net.total_primary_bandwidth(), Bandwidth::ZERO);
    }

    #[test]
    fn suurballe_router_establishes_disjoint_pair() {
        let g = regular::torus(4, 4).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                router: RouterKind::SuurballePair,
                ..NetworkConfig::default()
            },
        );
        let id = net.establish(NodeId(0), NodeId(10), qos()).unwrap();
        let c = net.connection(id).unwrap();
        assert!(c.primary().is_link_disjoint(c.backup().unwrap()));
        net.validate();
    }

    /// A network with the route cache explicitly forced on or off
    /// (ignoring the `DRQOS_ROUTE_CACHE` environment, which other test
    /// threads must not be able to perturb).
    fn cached_net(capacity_kbps: u64, route_cache: bool) -> Network {
        Network::new(
            regular::torus(4, 4).unwrap(),
            NetworkConfig {
                capacity: Bandwidth::kbps(capacity_kbps),
                route_cache,
                ..NetworkConfig::default()
            },
        )
    }

    #[test]
    fn route_cache_hits_on_repeated_planning() {
        let net = cached_net(10_000, true);
        // Miss #1 only marks the key with the doorkeeper; miss #2 records
        // the footprint and memoizes; #3 onwards replay from the cache.
        let first = net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        assert_eq!(net.route_cache_len(), 0, "doorkeeper defers the entry");
        let second = net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        let third = net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        assert_eq!(first, second, "identical state: identical plans");
        assert_eq!(second, third, "cached plan must replay the search");
        let stats = net.route_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(net.route_cache_len(), 1);
    }

    #[test]
    fn route_cache_disabled_never_counts() {
        let net = cached_net(10_000, false);
        net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        assert_eq!(net.route_cache_stats(), RouteCacheStats::default());
        assert_eq!(net.route_cache_len(), 0);
    }

    #[test]
    fn route_cache_commit_invalidates_lazily() {
        let mut net = cached_net(800, true);
        // Plan + commit: the commit changes the planned links' usage, so
        // the memoized entry must not be replayed for the next arrival.
        // (The first establish only passes the doorkeeper; the second
        // inserts an entry; the third finds it stale and evicts it.)
        let a = net.establish(NodeId(0), NodeId(10), qos()).unwrap();
        let b = net.establish(NodeId(0), NodeId(10), qos()).unwrap();
        net.establish(NodeId(0), NodeId(10), qos()).unwrap();
        net.validate();
        let stats = net.route_cache_stats();
        assert_eq!(stats.hits, 0, "usage moved: replay would be unsound");
        assert!(stats.stale_evictions >= 1);
        assert_ne!(a, b);
    }

    #[test]
    fn route_cache_failure_evicts_touching_entries() {
        let mut net = cached_net(10_000, true);
        net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        let plan = net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        assert_eq!(net.route_cache_len(), 1);
        net.fail_link(plan.primary().links()[0]).unwrap();
        assert_eq!(net.route_cache_len(), 0, "eager reverse-index eviction");
        assert!(net.route_cache_stats().stale_evictions >= 1);
        // Planning after the failure finds a fresh (different) primary.
        let replanned = net.plan_establish(NodeId(0), NodeId(10), qos()).unwrap();
        assert_ne!(replanned.primary(), plan.primary());
        net.validate();
    }

    #[test]
    fn route_cache_equivalent_to_oracle_under_churn() {
        // The cheap in-crate version of the testkit's diff-cache mode: an
        // establish/release/fail/repair interleaving must leave cached and
        // uncached networks byte-identical at every step.
        let mut on = cached_net(1_500, true);
        let mut off = cached_net(1_500, false);
        let script: &[(usize, usize)] = &[(0, 10), (1, 11), (0, 10), (2, 9), (0, 10), (5, 12)];
        for (step, &(s, d)) in script.iter().enumerate() {
            let got_on = on.establish(NodeId(s), NodeId(d), qos());
            let got_off = off.establish(NodeId(s), NodeId(d), qos());
            assert_eq!(got_on, got_off, "step {step}");
            if step == 2 {
                assert_eq!(on.release(ConnectionId(0)), off.release(ConnectionId(0)));
            }
            if step == 3 {
                let l = LinkId(0);
                assert_eq!(on.fail_link(l), off.fail_link(l));
            }
            if step == 4 {
                let l = LinkId(0);
                assert_eq!(on.repair_link(l), off.repair_link(l));
            }
            assert_eq!(
                crate::snapshot::NetworkSnapshot::capture(&on),
                crate::snapshot::NetworkSnapshot::capture(&off),
                "step {step}"
            );
        }
        assert!(on.route_cache_stats().lookups() > 0);
        on.validate();
        off.validate();
    }

    #[test]
    fn many_connections_saturate_down_to_minimum() {
        let g = regular::ring(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(2_000),
                ..NetworkConfig::default()
            },
        );
        let mut accepted = 0;
        for i in 0..24 {
            let (s, d) = (NodeId(i % 6), NodeId((i + 3) % 6));
            if net.establish(s, d, qos()).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted >= 4, "accepted only {accepted}");
        net.validate();
        // Heavily loaded ring: the average sits near the minimum.
        let avg = net.average_bandwidth().unwrap();
        assert!(avg < 300.0, "expected saturation, avg {avg}");
    }
}
