//! The central registry of `DRQOS_*` environment knobs.
//!
//! Every environment variable the workspace reads is declared here once —
//! name, default, consumer, and effect — and read through a typed
//! accessor. Call sites elsewhere use the exported name constants
//! ([`THREADS`], [`CHECKED`], ...) instead of string literals, so
//! `drqos-lint`'s `env-registry` rule can mechanically prove that no
//! crate reads an undeclared variable and that the README's environment
//! table matches this registry (via [`readme_table`]).
//!
//! The accessors preserve the exact parsing semantics their original
//! call sites had (they were folded in here verbatim), so behaviour is
//! identical to the pre-registry code:
//!
//! * [`threads`] — `DRQOS_THREADS`, sweep worker count.
//! * [`checked`] — `DRQOS_CHECKED`, invariant re-validation override.
//! * [`route_cache`] — `DRQOS_ROUTE_CACHE`, admission route-memo toggle.
//! * [`bless`] — `DRQOS_BLESS`, golden-trace re-bless switch.
//! * [`batch`] / [`queue_depth`] — `drqosd` event-loop knobs.
//! * [`cluster_members`] / [`cluster_coord_port`] /
//!   [`cluster_prepare_timeout_ms`] / [`cluster_rebalance`] — the
//!   `drqos-clusterd` federation knobs.
//! * [`scenario`] — `DRQOS_SCENARIO`, adversarial workload selection.
//! * [`srlg_count`] / [`srlg_size`] — `DRQOS_SRLG_*`, seeded
//!   shared-risk-group derivation.

/// `DRQOS_THREADS` — sweep worker count (see [`threads`]).
pub const THREADS: &str = "DRQOS_THREADS";
/// `DRQOS_CHECKED` — per-event invariant checking (see [`checked`]).
pub const CHECKED: &str = "DRQOS_CHECKED";
/// `DRQOS_ROUTE_CACHE` — admission route-cache toggle (see
/// [`route_cache`]).
pub const ROUTE_CACHE: &str = "DRQOS_ROUTE_CACHE";
/// `DRQOS_BLESS` — golden-trace re-bless switch (see [`bless`]).
pub const BLESS: &str = "DRQOS_BLESS";
/// `DRQOS_BATCH` — daemon event-loop batch size (see [`batch`]).
pub const BATCH: &str = "DRQOS_BATCH";
/// `DRQOS_QUEUE_DEPTH` — daemon command-queue capacity (see
/// [`queue_depth`]).
pub const QUEUE_DEPTH: &str = "DRQOS_QUEUE_DEPTH";
/// `DRQOS_WIRE` — daemon wire framing, text or binary (see [`wire`]).
pub const WIRE: &str = "DRQOS_WIRE";
/// `DRQOS_BUSY_RETRIES` — loadgen `BUSY` retry cap (see
/// [`busy_retries`]).
pub const BUSY_RETRIES: &str = "DRQOS_BUSY_RETRIES";
/// `DRQOS_SHARDS` — admission-engine shard count (see [`shards`]).
pub const SHARDS: &str = "DRQOS_SHARDS";
/// `DRQOS_CLUSTER_MEMBERS` — federation member count (see
/// [`cluster_members`]).
pub const CLUSTER_MEMBERS: &str = "DRQOS_CLUSTER_MEMBERS";
/// `DRQOS_CLUSTER_COORD_PORT` — coordinator listen port (see
/// [`cluster_coord_port`]).
pub const CLUSTER_COORD_PORT: &str = "DRQOS_CLUSTER_COORD_PORT";
/// `DRQOS_CLUSTER_PREPARE_TIMEOUT_MS` — two-phase prepare timeout (see
/// [`cluster_prepare_timeout_ms`]).
pub const CLUSTER_PREPARE_TIMEOUT_MS: &str = "DRQOS_CLUSTER_PREPARE_TIMEOUT_MS";
/// `DRQOS_CLUSTER_REBALANCE` — churn rebalance policy (see
/// [`cluster_rebalance`]).
pub const CLUSTER_REBALANCE: &str = "DRQOS_CLUSTER_REBALANCE";
/// `DRQOS_SCENARIO` — adversarial workload scenario (see [`scenario`]).
pub const SCENARIO: &str = "DRQOS_SCENARIO";
/// `DRQOS_SRLG_COUNT` — seeded shared-risk groups to derive (see
/// [`srlg_count`]).
pub const SRLG_COUNT: &str = "DRQOS_SRLG_COUNT";
/// `DRQOS_SRLG_SIZE` — links per derived shared-risk group (see
/// [`srlg_size`]).
pub const SRLG_SIZE: &str = "DRQOS_SRLG_SIZE";

/// Default for `DRQOS_BATCH`: commands drained per event-loop tick.
pub const DEFAULT_BATCH: usize = 64;
/// Default for `DRQOS_QUEUE_DEPTH`: bounded command-queue capacity.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;
/// Default for `DRQOS_BUSY_RETRIES`: bounded `BUSY` retry attempts.
pub const DEFAULT_BUSY_RETRIES: usize = 64;
/// Default for `DRQOS_SHARDS`: one shard, i.e. the monolithic engine.
pub const DEFAULT_SHARDS: usize = 1;
/// Default for `DRQOS_CLUSTER_MEMBERS`: a three-daemon federation.
pub const DEFAULT_CLUSTER_MEMBERS: usize = 3;
/// Default for `DRQOS_CLUSTER_COORD_PORT`: the coordinator listen port.
pub const DEFAULT_CLUSTER_COORD_PORT: u16 = 7900;
/// Default for `DRQOS_CLUSTER_PREPARE_TIMEOUT_MS`: how long a member
/// waits for a two-phase verdict before aborting.
pub const DEFAULT_CLUSTER_PREPARE_TIMEOUT_MS: u64 = 2000;
/// Default for `DRQOS_SRLG_COUNT`: no shared-risk groups registered.
pub const DEFAULT_SRLG_COUNT: usize = 0;
/// Default for `DRQOS_SRLG_SIZE`: three links per derived group.
pub const DEFAULT_SRLG_SIZE: usize = 3;

/// Partition rebalance policy selected by `DRQOS_CLUSTER_REBALANCE`:
/// how surviving members divide the topology after membership churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalancePolicy {
    /// Seeded round-robin multi-source BFS over the survivors (the
    /// default; the same construction `DRQOS_SHARDS` uses).
    #[default]
    Bfs,
    /// Node index modulo the survivor count (ignores locality; useful as
    /// a worst-case baseline).
    RoundRobin,
}

/// Wire framing selected by `DRQOS_WIRE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Newline-delimited text grammar (the default).
    #[default]
    Text,
    /// Length-prefixed binary frames.
    Binary,
}

/// One registered environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvVar {
    /// The variable name (always `DRQOS_`-prefixed).
    pub name: &'static str,
    /// Which part of the workspace consumes it.
    pub consumed_by: &'static str,
    /// The effective default when unset.
    pub default: &'static str,
    /// What setting it does.
    pub doc: &'static str,
}

/// Every `DRQOS_*` variable the workspace reads, in table order.
///
/// `drqos-lint` cross-checks this list against the README's environment
/// table and flags any `std::env` read of a `DRQOS_*` name that does not
/// go through this module.
pub fn registry() -> &'static [EnvVar] {
    &[
        EnvVar {
            name: THREADS,
            consumed_by: "`drqos-bench` sweeps",
            default: "all cores",
            doc: "bounds sweep worker threads (`1` forces sequential; \
                  results are thread-count-independent)",
        },
        EnvVar {
            name: CHECKED,
            consumed_by: "churn harness / testkit",
            default: "`debug_assertions`",
            doc: "`1` runs the invariant-oracle set after every churn event",
        },
        EnvVar {
            name: ROUTE_CACHE,
            consumed_by: "`drqos-core` admission",
            default: "`1` (on)",
            doc: "`0` disables the epoch-validated route cache \
                  (observable results are identical either way)",
        },
        EnvVar {
            name: BLESS,
            consumed_by: "golden-trace tests",
            default: "`0` (off)",
            doc: "`1` rewrites `tests/golden/*.txt` instead of comparing",
        },
        EnvVar {
            name: BATCH,
            consumed_by: "`drqosd`",
            default: "`64`",
            doc: "commands drained per event-loop wakeup",
        },
        EnvVar {
            name: QUEUE_DEPTH,
            consumed_by: "`drqosd`",
            default: "`1024`",
            doc: "bounded command-queue capacity; a full queue answers `BUSY`",
        },
        EnvVar {
            name: WIRE,
            consumed_by: "`drqosd` / loadgen",
            default: "`text`",
            doc: "`binary` switches the daemon to length-prefixed binary \
                  framing (see SERVICE.md); any other value means text",
        },
        EnvVar {
            name: BUSY_RETRIES,
            consumed_by: "loadgen",
            default: "`64`",
            doc: "bounded `BUSY` retries per command before the load \
                  generator gives up (exponential backoff with seeded \
                  jitter between attempts)",
        },
        EnvVar {
            name: SHARDS,
            consumed_by: "`drqosd` admission engine",
            default: "`1` (monolith)",
            doc: "partitions the topology into N shards; batched \
                  admissions plan in parallel per shard with a two-phase \
                  cross-shard commit (results are byte-identical to `1`)",
        },
        EnvVar {
            name: CLUSTER_MEMBERS,
            consumed_by: "`drqos-clusterd` coordinator",
            default: "`3`",
            doc: "member daemons the coordinator expects before serving \
                  (each owns one topology partition)",
        },
        EnvVar {
            name: CLUSTER_COORD_PORT,
            consumed_by: "`drqos-clusterd`",
            default: "`7900`",
            doc: "TCP port the cluster coordinator listens on for the \
                  inter-daemon protocol",
        },
        EnvVar {
            name: CLUSTER_PREPARE_TIMEOUT_MS,
            consumed_by: "`drqos-clusterd` members",
            default: "`2000`",
            doc: "milliseconds a member waits for the coordinator's \
                  two-phase verdict before aborting the request with \
                  wire code 504",
        },
        EnvVar {
            name: CLUSTER_REBALANCE,
            consumed_by: "`drqos-clusterd` / `drqos-cluster`",
            default: "`bfs`",
            doc: "partition rebalance policy after membership churn: \
                  `bfs` (seeded BFS over survivors) or `roundrobin` \
                  (node index modulo survivor count)",
        },
        EnvVar {
            name: SCENARIO,
            consumed_by: "loadgen / `scenario_sweep`",
            default: "`baseline`",
            doc: "adversarial workload scenario: `baseline`, \
                  `flash-crowd`, `diurnal`, `pareto`, or `srlg` \
                  (unrecognized values fall back to `baseline`)",
        },
        EnvVar {
            name: SRLG_COUNT,
            consumed_by: "`drqosd` / scenario engine",
            default: "`0` (none)",
            doc: "shared-risk link groups to derive from the seed and \
                  register at startup; `FAIL-SRLG g` fires group g",
        },
        EnvVar {
            name: SRLG_SIZE,
            consumed_by: "`drqosd` / scenario engine",
            default: "`3`",
            doc: "links per derived shared-risk group (minimum 1)",
        },
    ]
}

/// The one gated read every accessor funnels through. Panics (in tests)
/// on a name missing from [`registry`], so an accessor cannot be added
/// without registering its variable.
fn read(name: &str) -> Option<String> {
    debug_assert!(
        registry().iter().any(|v| v.name == name),
        "env var {name} is not in the drqos_core::env registry"
    );
    std::env::var(name).ok()
}

/// The raw value of a *registered* variable, for tests that save and
/// restore the environment around a scoped override.
///
/// # Panics
///
/// Panics when `name` is not in [`registry`] — unregistered reads must
/// not exist, even in tests.
pub fn raw(name: &str) -> Option<String> {
    assert!(
        registry().iter().any(|v| v.name == name),
        "env var {name} is not in the drqos_core::env registry"
    );
    read(name)
}

fn parse_threads(v: &str) -> usize {
    v.trim().parse::<usize>().unwrap_or(1).max(1)
}

fn parse_truthy(v: &str) -> bool {
    matches!(v, "1" | "true" | "on" | "yes")
}

fn parse_not_disabled(v: &str) -> bool {
    !matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "0" | "false" | "off"
    )
}

fn parse_positive(v: &str, default: usize) -> usize {
    v.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// `DRQOS_THREADS`: `Some(n)` (minimum 1) when set, `None` when unset
/// (callers fall back to the machine's available parallelism).
pub fn threads() -> Option<usize> {
    read(THREADS).map(|v| parse_threads(&v))
}

/// `DRQOS_CHECKED`: `Some(true)` for `1`/`true`/`on`/`yes`, `Some(false)`
/// for any other set value, `None` when unset (callers fall back to
/// `cfg!(debug_assertions)`).
pub fn checked() -> Option<bool> {
    read(CHECKED).map(|v| parse_truthy(&v))
}

/// `DRQOS_ROUTE_CACHE`: enabled unless set to `0`/`false`/`off`
/// (case-insensitive).
pub fn route_cache() -> bool {
    read(ROUTE_CACHE).is_none_or(|v| parse_not_disabled(&v))
}

/// `DRQOS_BLESS`: `true` only for the exact value `1`.
pub fn bless() -> bool {
    read(BLESS).is_some_and(|v| v == "1")
}

/// `DRQOS_BATCH` (minimum 1; default [`DEFAULT_BATCH`]).
pub fn batch() -> usize {
    read(BATCH).map_or(DEFAULT_BATCH, |v| parse_positive(&v, DEFAULT_BATCH))
}

/// `DRQOS_QUEUE_DEPTH` (minimum 1; default [`DEFAULT_QUEUE_DEPTH`]).
pub fn queue_depth() -> usize {
    read(QUEUE_DEPTH).map_or(DEFAULT_QUEUE_DEPTH, |v| {
        parse_positive(&v, DEFAULT_QUEUE_DEPTH)
    })
}

fn parse_wire(v: &str) -> WireMode {
    if v.trim().eq_ignore_ascii_case("binary") {
        WireMode::Binary
    } else {
        WireMode::Text
    }
}

/// `DRQOS_WIRE`: [`WireMode::Binary`] for `binary` (case-insensitive),
/// [`WireMode::Text`] otherwise.
pub fn wire() -> WireMode {
    read(WIRE).map_or(WireMode::Text, |v| parse_wire(&v))
}

/// `DRQOS_BUSY_RETRIES` (minimum 1; default [`DEFAULT_BUSY_RETRIES`]).
pub fn busy_retries() -> usize {
    read(BUSY_RETRIES).map_or(DEFAULT_BUSY_RETRIES, |v| {
        parse_positive(&v, DEFAULT_BUSY_RETRIES)
    })
}

/// `DRQOS_SHARDS` (minimum 1; default [`DEFAULT_SHARDS`] = monolith).
pub fn shards() -> usize {
    read(SHARDS).map_or(DEFAULT_SHARDS, |v| parse_positive(&v, DEFAULT_SHARDS))
}

/// `DRQOS_CLUSTER_MEMBERS` (minimum 1; default
/// [`DEFAULT_CLUSTER_MEMBERS`]).
pub fn cluster_members() -> usize {
    read(CLUSTER_MEMBERS).map_or(DEFAULT_CLUSTER_MEMBERS, |v| {
        parse_positive(&v, DEFAULT_CLUSTER_MEMBERS)
    })
}

fn parse_port(v: &str, default: u16) -> u16 {
    v.trim()
        .parse::<u16>()
        .ok()
        .filter(|&p| p > 0)
        .unwrap_or(default)
}

/// `DRQOS_CLUSTER_COORD_PORT` (default [`DEFAULT_CLUSTER_COORD_PORT`]).
pub fn cluster_coord_port() -> u16 {
    read(CLUSTER_COORD_PORT).map_or(DEFAULT_CLUSTER_COORD_PORT, |v| {
        parse_port(&v, DEFAULT_CLUSTER_COORD_PORT)
    })
}

fn parse_positive_u64(v: &str, default: u64) -> u64 {
    v.trim()
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// `DRQOS_CLUSTER_PREPARE_TIMEOUT_MS` (minimum 1; default
/// [`DEFAULT_CLUSTER_PREPARE_TIMEOUT_MS`]).
pub fn cluster_prepare_timeout_ms() -> u64 {
    read(CLUSTER_PREPARE_TIMEOUT_MS).map_or(DEFAULT_CLUSTER_PREPARE_TIMEOUT_MS, |v| {
        parse_positive_u64(&v, DEFAULT_CLUSTER_PREPARE_TIMEOUT_MS)
    })
}

fn parse_rebalance(v: &str) -> RebalancePolicy {
    if v.trim().eq_ignore_ascii_case("roundrobin") {
        RebalancePolicy::RoundRobin
    } else {
        RebalancePolicy::Bfs
    }
}

/// `DRQOS_CLUSTER_REBALANCE`: [`RebalancePolicy::RoundRobin`] for
/// `roundrobin` (case-insensitive), [`RebalancePolicy::Bfs`] otherwise.
pub fn cluster_rebalance() -> RebalancePolicy {
    read(CLUSTER_REBALANCE).map_or(RebalancePolicy::Bfs, |v| parse_rebalance(&v))
}

fn parse_scenario(v: &str) -> crate::scenario::ScenarioKind {
    crate::scenario::ScenarioKind::parse(v).unwrap_or(crate::scenario::ScenarioKind::Baseline)
}

/// `DRQOS_SCENARIO`: the selected [`crate::scenario::ScenarioKind`]
/// (case-insensitive name; unknown values and unset both mean
/// [`crate::scenario::ScenarioKind::Baseline`]).
pub fn scenario() -> crate::scenario::ScenarioKind {
    read(SCENARIO).map_or(crate::scenario::ScenarioKind::Baseline, |v| {
        parse_scenario(&v)
    })
}

fn parse_non_negative(v: &str, default: usize) -> usize {
    v.trim().parse::<usize>().unwrap_or(default)
}

/// `DRQOS_SRLG_COUNT` (zero allowed = no groups; default
/// [`DEFAULT_SRLG_COUNT`]).
pub fn srlg_count() -> usize {
    read(SRLG_COUNT).map_or(DEFAULT_SRLG_COUNT, |v| {
        parse_non_negative(&v, DEFAULT_SRLG_COUNT)
    })
}

/// `DRQOS_SRLG_SIZE` (minimum 1; default [`DEFAULT_SRLG_SIZE`]).
pub fn srlg_size() -> usize {
    read(SRLG_SIZE).map_or(DEFAULT_SRLG_SIZE, |v| parse_positive(&v, DEFAULT_SRLG_SIZE))
}

/// The README environment table, rendered from [`registry`]. The README
/// commits this text between `<!-- env-table:begin -->` and
/// `<!-- env-table:end -->` markers; `drqos-lint` (and the
/// `lint_clean` tier-1 test) fail when the committed table drifts from
/// this output.
pub fn readme_table() -> String {
    let mut out =
        String::from("| Variable | Consumed by | Default | Effect |\n|---|---|---|---|\n");
    for var in registry() {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            var.name, var.consumed_by, var.default, var.doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_prefixed_unique_and_documented() {
        let vars = registry();
        let mut names: Vec<&str> = vars.iter().map(|v| v.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), vars.len(), "duplicate registry entry");
        for v in vars {
            assert!(v.name.starts_with("DRQOS_"), "{} not prefixed", v.name);
            assert!(!v.doc.is_empty() && !v.default.is_empty() && !v.consumed_by.is_empty());
        }
    }

    // The parsing helpers are tested as pure functions: mutating the real
    // process environment would race with other tests in this binary that
    // read it (e.g. the NetworkConfig default).
    #[test]
    fn threads_parsing_matches_legacy_semantics() {
        assert_eq!(parse_threads("4"), 4);
        assert_eq!(parse_threads(" 8 "), 8);
        assert_eq!(parse_threads("0"), 1);
        assert_eq!(parse_threads("garbage"), 1);
    }

    #[test]
    fn truthy_parsing_matches_legacy_semantics() {
        for v in ["1", "true", "on", "yes"] {
            assert!(parse_truthy(v));
        }
        for v in ["0", "TRUE", " 1", "2", ""] {
            assert!(!parse_truthy(v));
        }
    }

    #[test]
    fn route_cache_parsing_matches_legacy_semantics() {
        for v in ["0", "false", "OFF", " off "] {
            assert!(!parse_not_disabled(v));
        }
        for v in ["1", "true", "", "2", "anything"] {
            assert!(parse_not_disabled(v));
        }
    }

    #[test]
    fn positive_parsing_matches_legacy_semantics() {
        assert_eq!(parse_positive("32", 64), 32);
        assert_eq!(parse_positive("0", 64), 64);
        assert_eq!(parse_positive("x", 64), 64);
        assert_eq!(parse_positive(" 7 ", 64), 7);
    }

    #[test]
    fn wire_parsing_defaults_to_text() {
        assert_eq!(parse_wire("binary"), WireMode::Binary);
        assert_eq!(parse_wire(" BINARY "), WireMode::Binary);
        for v in ["text", "", "0", "frames"] {
            assert_eq!(parse_wire(v), WireMode::Text);
        }
    }

    #[test]
    fn cluster_parsing_matches_the_other_knobs() {
        assert_eq!(parse_port("7901", 7900), 7901);
        assert_eq!(parse_port("0", 7900), 7900);
        assert_eq!(parse_port("garbage", 7900), 7900);
        assert_eq!(parse_positive_u64("250", 2000), 250);
        assert_eq!(parse_positive_u64("0", 2000), 2000);
        assert_eq!(parse_positive_u64("x", 2000), 2000);
        assert_eq!(parse_rebalance("roundrobin"), RebalancePolicy::RoundRobin);
        assert_eq!(parse_rebalance(" RoundRobin "), RebalancePolicy::RoundRobin);
        for v in ["bfs", "", "anything"] {
            assert_eq!(parse_rebalance(v), RebalancePolicy::Bfs);
        }
    }

    #[test]
    fn scenario_parsing_falls_back_to_baseline() {
        use crate::scenario::ScenarioKind;
        assert_eq!(parse_scenario("flash-crowd"), ScenarioKind::FlashCrowd);
        assert_eq!(parse_scenario(" SRLG "), ScenarioKind::SrlgChurn);
        assert_eq!(parse_scenario("pareto"), ScenarioKind::ParetoHolding);
        for v in ["", "garbage", "baseline"] {
            assert_eq!(parse_scenario(v), ScenarioKind::Baseline);
        }
    }

    #[test]
    fn srlg_parsing_matches_the_other_knobs() {
        assert_eq!(parse_non_negative("0", 0), 0);
        assert_eq!(parse_non_negative(" 4 ", 0), 4);
        assert_eq!(parse_non_negative("x", 0), 0);
        assert_eq!(parse_positive("2", DEFAULT_SRLG_SIZE), 2);
        assert_eq!(parse_positive("0", DEFAULT_SRLG_SIZE), DEFAULT_SRLG_SIZE);
    }

    #[test]
    fn readme_table_lists_every_variable_once() {
        let table = readme_table();
        for v in registry() {
            assert_eq!(
                table.matches(v.name).count(),
                1,
                "{} must appear exactly once",
                v.name
            );
        }
        assert!(table.starts_with("| Variable |"));
    }

    #[test]
    #[should_panic(expected = "not in the drqos_core::env registry")]
    fn raw_rejects_unregistered_names() {
        let _ = raw("DRQOS_NOT_A_REAL_KNOB");
    }
}
