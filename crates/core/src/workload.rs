//! Workload generation: who requests DR-connections, between which nodes,
//! and with what QoS.

use crate::qos::ElasticQos;
use drqos_sim::rng::Rng;
use drqos_topology::NodeId;

/// How source/destination pairs are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum PairSampler {
    /// Uniformly random distinct node pair (the paper's workload).
    Uniform,
    /// With probability `hub_prob`, one endpoint is drawn from `hubs`
    /// (server-concentration workloads; an extension for the examples).
    HotSpot {
        /// The popular nodes.
        hubs: Vec<NodeId>,
        /// Probability that a request touches a hub.
        hub_prob: f64,
    },
}

impl PairSampler {
    /// Draws a distinct `(src, dst)` pair from a graph with `n_nodes`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2`, or for [`PairSampler::HotSpot`] if `hubs`
    /// is empty or `hub_prob` is outside `[0, 1]`.
    pub fn sample(&self, rng: &mut Rng, n_nodes: usize) -> (NodeId, NodeId) {
        assert!(n_nodes >= 2, "need at least two nodes to form a pair");
        match self {
            PairSampler::Uniform => {
                let src = rng.range_usize(n_nodes);
                let mut dst = rng.range_usize(n_nodes - 1);
                if dst >= src {
                    dst += 1;
                }
                (NodeId(src), NodeId(dst))
            }
            PairSampler::HotSpot { hubs, hub_prob } => {
                assert!(!hubs.is_empty(), "hot-spot sampler needs hubs");
                assert!(
                    (0.0..=1.0).contains(hub_prob),
                    "hub_prob must be a probability"
                );
                if rng.chance(*hub_prob) {
                    let hub = hubs[rng.range_usize(hubs.len())];
                    let mut other = NodeId(rng.range_usize(n_nodes));
                    while other == hub {
                        other = NodeId(rng.range_usize(n_nodes));
                    }
                    if rng.chance(0.5) {
                        (hub, other)
                    } else {
                        (other, hub)
                    }
                } else {
                    PairSampler::Uniform.sample(rng, n_nodes)
                }
            }
        }
    }
}

/// A DR-connection request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Requested QoS.
    pub qos: ElasticQos,
}

/// A stream of DR-connection requests with a fixed QoS template.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    qos: ElasticQos,
    sampler: PairSampler,
}

impl Workload {
    /// A uniform workload with the given QoS template.
    pub fn new(qos: ElasticQos) -> Self {
        Self {
            qos,
            sampler: PairSampler::Uniform,
        }
    }

    /// Replaces the pair sampler.
    pub fn with_sampler(mut self, sampler: PairSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// The QoS template.
    pub fn qos(&self) -> &ElasticQos {
        &self.qos
    }

    /// Draws the next request.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2` (see [`PairSampler::sample`]).
    pub fn request(&self, rng: &mut Rng, n_nodes: usize) -> Request {
        let (src, dst) = self.sampler.sample(rng, n_nodes);
        Request {
            src,
            dst,
            qos: self.qos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(31)
    }

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let mut r = rng();
        for _ in 0..10_000 {
            let (s, d) = PairSampler::Uniform.sample(&mut r, 7);
            assert_ne!(s, d);
            assert!(s.index() < 7 && d.index() < 7);
        }
    }

    #[test]
    fn uniform_covers_all_nodes() {
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let (s, d) = PairSampler::Uniform.sample(&mut r, 5);
            seen[s.index()] = true;
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn pair_needs_two_nodes() {
        PairSampler::Uniform.sample(&mut rng(), 1);
    }

    #[test]
    fn hotspot_touches_hubs_often() {
        let sampler = PairSampler::HotSpot {
            hubs: vec![NodeId(0)],
            hub_prob: 1.0,
        };
        let mut r = rng();
        for _ in 0..500 {
            let (s, d) = sampler.sample(&mut r, 10);
            assert!(s == NodeId(0) || d == NodeId(0));
            assert_ne!(s, d);
        }
    }

    #[test]
    fn hotspot_zero_prob_is_uniform() {
        let sampler = PairSampler::HotSpot {
            hubs: vec![NodeId(0)],
            hub_prob: 0.0,
        };
        let mut r = rng();
        let hits = (0..2000)
            .filter(|_| {
                let (s, d) = sampler.sample(&mut r, 10);
                s == NodeId(0) || d == NodeId(0)
            })
            .count();
        // Uniform touch probability of node 0 is ~ 2/10.
        assert!((hits as f64 / 2000.0 - 0.2).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "needs hubs")]
    fn hotspot_requires_hubs() {
        PairSampler::HotSpot {
            hubs: vec![],
            hub_prob: 0.5,
        }
        .sample(&mut rng(), 5);
    }

    #[test]
    fn workload_requests_use_template() {
        let qos = ElasticQos::paper_video(50);
        let w = Workload::new(qos);
        let req = w.request(&mut rng(), 6);
        assert_eq!(req.qos, qos);
        assert_ne!(req.src, req.dst);
        assert_eq!(w.qos(), &qos);
    }

    #[test]
    fn workload_sampler_is_replaceable() {
        let w = Workload::new(ElasticQos::paper_video(50)).with_sampler(PairSampler::HotSpot {
            hubs: vec![NodeId(2)],
            hub_prob: 1.0,
        });
        let req = w.request(&mut rng(), 6);
        assert!(req.src == NodeId(2) || req.dst == NodeId(2));
    }
}
