//! Stable numeric error codes for the wire protocol.
//!
//! The `drqos-service` daemon reports failures as `ERR <code> <message>`
//! lines. The codes are assigned *here*, next to the error enums, through
//! exhaustive `match` expressions: adding a new variant to any of these
//! enums without assigning it a code is a compile error, so the wire
//! protocol can never silently ship an unnumbered failure.
//!
//! Code ranges (one block per error family, room to grow in each):
//!
//! | range   | family                                   |
//! |---------|------------------------------------------|
//! | 1–99    | protocol-level (reserved for the service) |
//! | 100–199 | [`QosError`]                             |
//! | 200–299 | [`AdmissionError`]                       |
//! | 300–399 | [`NetworkError`]                         |
//! | 400–499 | [`InvariantViolation`]                   |
//! | 500–599 | [`ClusterError`]                         |
//!
//! Codes are append-only: a published code never changes meaning, and
//! retired variants leave a hole rather than renumbering their successors.

use crate::error::{AdmissionError, ClusterError, NetworkError, QosError};
use crate::invariant::InvariantViolation;

impl QosError {
    /// The stable wire code of this error (100–199).
    pub fn wire_code(&self) -> u16 {
        match self {
            QosError::ZeroMinimum => 100,
            QosError::MaxBelowMin => 101,
            QosError::ZeroIncrement => 102,
            QosError::IncrementDoesNotDivideRange => 103,
            QosError::InvalidUtility(_) => 104,
        }
    }
}

impl AdmissionError {
    /// The stable wire code of this error (200–299).
    pub fn wire_code(&self) -> u16 {
        match self {
            AdmissionError::UnknownNode(_) => 200,
            AdmissionError::SameEndpoints(_) => 201,
            AdmissionError::NoPrimaryRoute => 202,
            AdmissionError::NoBackupRoute => 203,
        }
    }
}

impl NetworkError {
    /// The stable wire code of this error (300–399).
    pub fn wire_code(&self) -> u16 {
        match self {
            NetworkError::UnknownConnection(_) => 300,
            NetworkError::UnknownLink(_) => 301,
            NetworkError::LinkStateUnchanged(_) => 302,
            NetworkError::UnknownNode(_) => 303,
            NetworkError::NodeAlreadyDown(_) => 304,
            NetworkError::UnknownSrlg(_) => 305,
            NetworkError::SrlgStateUnchanged(_) => 306,
        }
    }
}

impl InvariantViolation {
    /// The stable wire code of this violation (400–499).
    pub fn wire_code(&self) -> u16 {
        match self {
            InvariantViolation::TotalBandwidthMismatch { .. } => 400,
            InvariantViolation::LevelAboveMax { .. } => 401,
            InvariantViolation::BackupEqualsPrimary { .. } => 402,
            InvariantViolation::BackupNotDisjoint { .. } => 403,
            InvariantViolation::BackupsNotMutuallyDisjoint { .. } => 404,
            InvariantViolation::MinSumMismatch { .. } => 405,
            InvariantViolation::ExtraSumMismatch { .. } => 406,
            InvariantViolation::PrimarySetMismatch { .. } => 407,
            InvariantViolation::BackupSetMismatch { .. } => 408,
            InvariantViolation::CapacityExceeded { .. } => 409,
            InvariantViolation::ReservationOutOfSync { .. } => 410,
        }
    }
}

impl ClusterError {
    /// The stable wire code of this error (500–599).
    pub fn wire_code(&self) -> u16 {
        match self {
            ClusterError::UnknownMember(_) => 500,
            ClusterError::DuplicateMember(_) => 501,
            ClusterError::LastMember(_) => 502,
            ClusterError::StalePrepare(_) => 503,
            ClusterError::PrepareTimeout(_) => 504,
            ClusterError::SequenceGap(_) => 505,
        }
    }
}

/// Every assigned wire code with a short stable description, in code
/// order. Protocol-level codes (1–99) belong to the service crate and are
/// not listed here.
pub const WIRE_CODES: &[(u16, &str)] = &[
    (100, "qos: zero minimum"),
    (101, "qos: maximum below minimum"),
    (102, "qos: zero increment"),
    (103, "qos: increment does not divide range"),
    (104, "qos: invalid utility"),
    (200, "admission: unknown node"),
    (201, "admission: same endpoints"),
    (202, "admission: no primary route"),
    (203, "admission: no backup route"),
    (300, "network: unknown connection"),
    (301, "network: unknown link"),
    (302, "network: link state unchanged"),
    (303, "network: unknown node"),
    (304, "network: node already down"),
    (305, "network: unknown shared-risk group"),
    (306, "network: shared-risk group state unchanged"),
    (400, "invariant: total bandwidth mismatch"),
    (401, "invariant: level above max"),
    (402, "invariant: backup equals primary"),
    (403, "invariant: backup not disjoint"),
    (404, "invariant: backups not mutually disjoint"),
    (405, "invariant: min sum mismatch"),
    (406, "invariant: extra sum mismatch"),
    (407, "invariant: primary set mismatch"),
    (408, "invariant: backup set mismatch"),
    (409, "invariant: capacity exceeded"),
    (410, "invariant: reservation out of sync"),
    (500, "cluster: unknown member"),
    (501, "cluster: duplicate member"),
    (502, "cluster: last member cannot leave"),
    (503, "cluster: stale prepare"),
    (504, "cluster: prepare timeout"),
    (505, "cluster: sequence gap"),
];

/// The stable description of a wire code, or `None` for an unassigned
/// code.
pub fn describe(code: u16) -> Option<&'static str> {
    WIRE_CODES
        .binary_search_by_key(&code, |&(c, _)| c)
        .ok()
        .map(|i| WIRE_CODES[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samples::*;

    /// Sample instances covering *every* variant of every wired enum. The
    /// `wire_code` matches above are exhaustive (the enums are defined in
    /// this crate, so `#[non_exhaustive]` does not add a wildcard arm):
    /// adding a variant breaks compilation there first, and then fails
    /// this module until the sample list and [`WIRE_CODES`] follow.
    mod samples {
        use crate::channel::ConnectionId;
        use crate::error::{AdmissionError, ClusterError, NetworkError, QosError};
        use crate::invariant::InvariantViolation;
        use crate::qos::Bandwidth;
        use drqos_topology::{LinkId, NodeId};

        pub fn qos_samples() -> Vec<QosError> {
            vec![
                QosError::ZeroMinimum,
                QosError::MaxBelowMin,
                QosError::ZeroIncrement,
                QosError::IncrementDoesNotDivideRange,
                QosError::InvalidUtility(-1.0),
            ]
        }

        pub fn admission_samples() -> Vec<AdmissionError> {
            vec![
                AdmissionError::UnknownNode(NodeId(0)),
                AdmissionError::SameEndpoints(NodeId(0)),
                AdmissionError::NoPrimaryRoute,
                AdmissionError::NoBackupRoute,
            ]
        }

        pub fn network_samples() -> Vec<NetworkError> {
            vec![
                NetworkError::UnknownConnection(0),
                NetworkError::UnknownLink(LinkId(0)),
                NetworkError::LinkStateUnchanged(LinkId(0)),
                NetworkError::UnknownNode(NodeId(0)),
                NetworkError::NodeAlreadyDown(NodeId(0)),
                NetworkError::UnknownSrlg(0),
                NetworkError::SrlgStateUnchanged(0),
            ]
        }

        pub fn invariant_samples() -> Vec<InvariantViolation> {
            let bw = Bandwidth::kbps(1);
            let link = LinkId(0);
            let conn = ConnectionId(0);
            vec![
                InvariantViolation::TotalBandwidthMismatch {
                    cached: bw,
                    recomputed: bw,
                },
                InvariantViolation::LevelAboveMax {
                    conn,
                    level: 1,
                    max: 0,
                },
                InvariantViolation::BackupEqualsPrimary { conn },
                InvariantViolation::BackupNotDisjoint { conn },
                InvariantViolation::BackupsNotMutuallyDisjoint { conn },
                InvariantViolation::MinSumMismatch {
                    link,
                    cached: bw,
                    recomputed: bw,
                },
                InvariantViolation::ExtraSumMismatch {
                    link,
                    cached: bw,
                    recomputed: bw,
                },
                InvariantViolation::PrimarySetMismatch { link },
                InvariantViolation::BackupSetMismatch { link },
                InvariantViolation::CapacityExceeded {
                    link,
                    allocated: bw,
                    capacity: bw,
                },
                InvariantViolation::ReservationOutOfSync {
                    link,
                    cached: bw,
                    recomputed: bw,
                },
            ]
        }

        pub fn cluster_samples() -> Vec<ClusterError> {
            vec![
                ClusterError::UnknownMember(0),
                ClusterError::DuplicateMember(0),
                ClusterError::LastMember(0),
                ClusterError::StalePrepare(0),
                ClusterError::PrepareTimeout(0),
                ClusterError::SequenceGap(0),
            ]
        }
    }

    fn all_sample_codes() -> Vec<u16> {
        let mut codes: Vec<u16> = Vec::new();
        codes.extend(qos_samples().iter().map(QosError::wire_code));
        codes.extend(admission_samples().iter().map(AdmissionError::wire_code));
        codes.extend(network_samples().iter().map(NetworkError::wire_code));
        codes.extend(
            invariant_samples()
                .iter()
                .map(InvariantViolation::wire_code),
        );
        codes.extend(cluster_samples().iter().map(ClusterError::wire_code));
        codes
    }

    #[test]
    fn every_variant_round_trips_through_the_code_table() {
        let codes = all_sample_codes();
        // Every variant's code resolves to a description...
        for code in &codes {
            assert!(
                describe(*code).is_some(),
                "code {code} missing from WIRE_CODES"
            );
        }
        // ...and every table entry is reachable from some variant, so the
        // table and the enums cannot drift apart in either direction.
        for (code, desc) in WIRE_CODES {
            assert!(
                codes.contains(code),
                "WIRE_CODES entry {code} ({desc}) matches no variant"
            );
        }
        assert_eq!(codes.len(), WIRE_CODES.len());
    }

    #[test]
    fn codes_are_unique_and_in_family_ranges() {
        let codes = all_sample_codes();
        let unique: std::collections::BTreeSet<u16> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len(), "duplicate wire code assigned");
        for q in qos_samples() {
            assert!((100..200).contains(&q.wire_code()));
        }
        for a in admission_samples() {
            assert!((200..300).contains(&a.wire_code()));
        }
        for n in network_samples() {
            assert!((300..400).contains(&n.wire_code()));
        }
        for v in invariant_samples() {
            assert!((400..500).contains(&v.wire_code()));
        }
        for c in cluster_samples() {
            assert!((500..600).contains(&c.wire_code()));
        }
    }

    #[test]
    fn table_is_sorted_for_binary_search() {
        for w in WIRE_CODES.windows(2) {
            assert!(w[0].0 < w[1].0, "WIRE_CODES out of order at {}", w[1].0);
        }
        assert_eq!(describe(100), Some("qos: zero minimum"));
        assert_eq!(describe(999), None);
    }
}
