//! Per-link bandwidth accounting, including multiplexed backup
//! reservations.
//!
//! Every link tracks three kinds of committed bandwidth:
//!
//! 1. **Primary minima** — the guaranteed `B_min` of each primary channel
//!    crossing the link. Inviolable.
//! 2. **Extras** — elastic increments above the minimum currently lent to
//!    primaries. Reclaimable at any time (channels *retreat*).
//! 3. **Backup reservation** — bandwidth set aside for backup channels.
//!    Backups are *multiplexed* (overbooked): two backups share reservation
//!    unless a single link failure could activate both. The reservation on
//!    link `ℓ` is therefore
//!    `max over links f of Σ { B_min(c) : backup(c) ∋ ℓ and primary(c) ∋ f }`
//!    — the worst single-failure activation burst this link must absorb.
//!
//! Invariant maintained by [`crate::network::Network`]:
//! `primary_min_sum + extra_sum ≤ capacity` at all times, and
//! `primary_min_sum + extra_sum + backup_reservation ≤ capacity` in
//! failure-free operation. (After a failover consumes reservation, the
//! reservation for the *remaining* backups may transiently overbook the
//! link until connections re-route — the known soft spot of backup
//! multiplexing, surfaced via [`LinkUsage::is_overbooked`].)

use crate::channel::ConnectionId;
use crate::qos::Bandwidth;
use drqos_topology::LinkId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Bandwidth bookkeeping for one link.
#[derive(Debug)]
pub struct LinkUsage {
    capacity: Bandwidth,
    up: bool,
    primaries: BTreeSet<ConnectionId>,
    primary_min_sum: Bandwidth,
    extra_sum: Bandwidth,
    backups: BTreeSet<ConnectionId>,
    /// For each potential failed link `f`, the total minimum bandwidth of
    /// backups on this link whose primary crosses `f`.
    conflict: BTreeMap<LinkId, Bandwidth>,
    reservation: Bandwidth,
    /// Memoized [`Self::plan_digest`] (valid when `digest_dirty` is
    /// false). The route cache revalidates footprints on every lookup and
    /// hashes them on every insert; without the memo each call walks the
    /// conflict map, which dominated the miss path on loaded networks.
    ///
    /// Atomics rather than `Cell`s so a frozen `&Network` can be shared
    /// across the sharded engine's planning threads (`LinkUsage` must be
    /// `Sync`). The memo is a pure function of the accounting fields, so
    /// concurrent fills race only on writing the *same* value; the memo
    /// store is `Release`-ordered before clearing the dirty flag, and
    /// readers `Acquire` the flag before trusting the memo.
    digest_memo: AtomicU64,
    digest_dirty: AtomicBool,
}

/// Cloning copies the accounting state and the memo. The memo is cloned
/// as a snapshot (relaxed reads are fine: the source is behind `&self`,
/// and a torn memo/dirty pair can at worst mark the clone dirty).
impl Clone for LinkUsage {
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity,
            up: self.up,
            primaries: self.primaries.clone(),
            primary_min_sum: self.primary_min_sum,
            extra_sum: self.extra_sum,
            backups: self.backups.clone(),
            conflict: self.conflict.clone(),
            reservation: self.reservation,
            digest_dirty: AtomicBool::new(self.digest_dirty.load(Ordering::Acquire)),
            digest_memo: AtomicU64::new(self.digest_memo.load(Ordering::Relaxed)),
        }
    }
}

/// Equality over the *accounting* state only — the digest memo is a
/// lazily-filled cache and must never make otherwise-equal links differ.
impl PartialEq for LinkUsage {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity
            && self.up == other.up
            && self.primaries == other.primaries
            && self.primary_min_sum == other.primary_min_sum
            && self.extra_sum == other.extra_sum
            && self.backups == other.backups
            && self.conflict == other.conflict
            && self.reservation == other.reservation
    }
}

impl LinkUsage {
    /// Creates accounting for a link with the given capacity, initially up
    /// and empty.
    pub fn new(capacity: Bandwidth) -> Self {
        Self {
            capacity,
            up: true,
            primaries: BTreeSet::new(),
            primary_min_sum: Bandwidth::ZERO,
            extra_sum: Bandwidth::ZERO,
            backups: BTreeSet::new(),
            conflict: BTreeMap::new(),
            reservation: Bandwidth::ZERO,
            digest_memo: AtomicU64::new(0),
            digest_dirty: AtomicBool::new(true),
        }
    }

    /// The link's capacity.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Whether the link is operational.
    pub fn is_up(&self) -> bool {
        self.up
    }

    pub(crate) fn set_up(&mut self, up: bool) {
        self.up = up;
        self.digest_dirty.store(true, Ordering::Relaxed);
    }

    /// Primary channels crossing this link.
    pub fn primaries(&self) -> impl Iterator<Item = ConnectionId> + '_ {
        self.primaries.iter().copied()
    }

    /// Backup channels registered on this link.
    pub fn backups(&self) -> impl Iterator<Item = ConnectionId> + '_ {
        self.backups.iter().copied()
    }

    /// Number of primary channels on the link.
    pub fn primary_count(&self) -> usize {
        self.primaries.len()
    }

    /// Sum of the minimum reservations of primaries on the link.
    pub fn primary_min_sum(&self) -> Bandwidth {
        self.primary_min_sum
    }

    /// Sum of elastic extras currently lent to primaries on the link.
    pub fn extra_sum(&self) -> Bandwidth {
        self.extra_sum
    }

    /// The multiplexed backup reservation.
    pub fn backup_reservation(&self) -> Bandwidth {
        self.reservation
    }

    /// Hard commitments: minima + backup reservation (extras excluded, as
    /// they are reclaimable on demand).
    pub fn hard_committed(&self) -> Bandwidth {
        self.primary_min_sum + self.reservation
    }

    /// Everything currently accounted: minima + extras + reservation.
    pub fn committed(&self) -> Bandwidth {
        self.primary_min_sum + self.extra_sum + self.reservation
    }

    /// Bandwidth available for a further elastic increment.
    pub fn headroom(&self) -> Bandwidth {
        self.capacity.saturating_sub(self.committed())
    }

    /// Whether hard commitments exceed capacity (transient multi-failure
    /// overbooking; see the module docs).
    pub fn is_overbooked(&self) -> bool {
        self.hard_committed() > self.capacity
    }

    /// Whether a new primary needing `min` could be admitted, counting
    /// extras as reclaimable.
    pub fn can_admit_primary(&self, min: Bandwidth) -> bool {
        self.up && self.hard_committed() + min <= self.capacity
    }

    /// The reservation this link would need if a backup with the given
    /// `min` and primary-path links were added.
    pub fn reservation_if_backup_added(
        &self,
        min: Bandwidth,
        primary_links: &[LinkId],
    ) -> Bandwidth {
        primary_links
            .iter()
            .map(|f| self.conflict.get(f).copied().unwrap_or(Bandwidth::ZERO) + min)
            .chain(std::iter::once(self.reservation))
            .max()
            .unwrap_or(self.reservation)
    }

    /// Whether a backup with the given `min` and primary links could be
    /// registered without exceeding capacity (extras reclaimable).
    pub fn can_admit_backup(&self, min: Bandwidth, primary_links: &[LinkId]) -> bool {
        self.up
            && self.primary_min_sum + self.reservation_if_backup_added(min, primary_links)
                <= self.capacity
    }

    // ----- mutations (crate-internal; driven by the network manager) -----

    pub(crate) fn add_primary(&mut self, id: ConnectionId, min: Bandwidth) {
        let inserted = self.primaries.insert(id);
        assert!(inserted, "{id} already a primary on this link");
        self.primary_min_sum += min;
        self.digest_dirty.store(true, Ordering::Relaxed);
    }

    pub(crate) fn remove_primary(&mut self, id: ConnectionId, min: Bandwidth) {
        let removed = self.primaries.remove(&id);
        assert!(removed, "{id} was not a primary on this link");
        self.primary_min_sum -= min;
        self.digest_dirty.store(true, Ordering::Relaxed);
    }

    pub(crate) fn add_extra(&mut self, amount: Bandwidth) {
        self.extra_sum += amount;
    }

    pub(crate) fn remove_extra(&mut self, amount: Bandwidth) {
        self.extra_sum -= amount;
    }

    pub(crate) fn add_backup(
        &mut self,
        id: ConnectionId,
        min: Bandwidth,
        primary_links: &[LinkId],
    ) {
        let inserted = self.backups.insert(id);
        assert!(inserted, "{id} already a backup on this link");
        for &f in primary_links {
            let entry = self.conflict.entry(f).or_insert(Bandwidth::ZERO);
            *entry += min;
            if *entry > self.reservation {
                self.reservation = *entry;
            }
        }
        self.digest_dirty.store(true, Ordering::Relaxed);
    }

    pub(crate) fn remove_backup(
        &mut self,
        id: ConnectionId,
        min: Bandwidth,
        primary_links: &[LinkId],
    ) {
        let removed = self.backups.remove(&id);
        assert!(removed, "{id} was not a backup on this link");
        for &f in primary_links {
            let entry = self
                .conflict
                .get_mut(&f)
                .expect("conflict entry exists for registered backup");
            *entry -= min;
            if *entry == Bandwidth::ZERO {
                self.conflict.remove(&f);
            }
        }
        self.reservation = self
            .conflict
            .values()
            .copied()
            .max()
            .unwrap_or(Bandwidth::ZERO);
        self.digest_dirty.store(true, Ordering::Relaxed);
    }

    /// A digest of every field of this link that route *planning* can
    /// observe: liveness, the primary-minimum sum, the cached reservation,
    /// and the full backup-conflict map. Extras are deliberately excluded —
    /// they are reclaimable and never consulted by `can_admit_primary` /
    /// `can_admit_backup` / the planning allowances — so grant/retreat
    /// churn does not invalidate cached routes.
    ///
    /// The route cache stores, per probed link, the digest seen while
    /// planning; a later lookup revalidates by comparing digests. Equal
    /// digests ⇒ (modulo a 2⁻⁶⁴ collision) identical answers to every
    /// planning query, hence an identical search outcome.
    ///
    /// Memoized: the digest is recomputed only after a planning-relevant
    /// mutation, so repeated revalidation of untouched links is O(1)
    /// regardless of how many backups conflict on them.
    pub fn plan_digest(&self) -> u64 {
        if self.digest_dirty.load(Ordering::Acquire) {
            let mut h: u64 = if self.up { 0x9E37_79B9_7F4A_7C15 } else { 0 };
            h = mix64(h ^ self.primary_min_sum.as_kbps());
            h = mix64(h ^ self.reservation.as_kbps());
            for (&f, &bw) in &self.conflict {
                h = mix64(h ^ (f.index() as u64).wrapping_mul(0x0100_0000_01B3) ^ bw.as_kbps());
            }
            // Concurrent fills (shared frozen network during a planning
            // wave) compute the same pure function; publish the memo
            // before clearing the flag so an `Acquire` reader of
            // `dirty == false` always sees a filled memo.
            self.digest_memo.store(h, Ordering::Relaxed);
            self.digest_dirty.store(false, Ordering::Release);
            return h;
        }
        self.digest_memo.load(Ordering::Relaxed)
    }

    /// Recomputes the multiplexed reservation from the conflict map,
    /// ignoring the cached value. Equal to [`Self::backup_reservation`]
    /// whenever the incremental bookkeeping is consistent; the invariant
    /// checker compares the two.
    pub fn recomputed_reservation(&self) -> Bandwidth {
        self.conflict
            .values()
            .copied()
            .max()
            .unwrap_or(Bandwidth::ZERO)
    }

    /// Test/debug helper: recomputes the reservation from the conflict map
    /// and asserts the cache is consistent.
    pub fn debug_validate(&self) {
        assert_eq!(
            self.recomputed_reservation(),
            self.reservation,
            "cached backup reservation out of sync"
        );
        assert!(
            self.primary_min_sum + self.extra_sum <= self.capacity,
            "allocated bandwidth exceeds capacity"
        );
    }
}

/// The split-mix-64 finalizer: full-avalanche mixing for the plan digest.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Bandwidth {
        Bandwidth::kbps(v)
    }

    fn cid(v: u64) -> ConnectionId {
        ConnectionId(v)
    }

    fn lid(v: usize) -> LinkId {
        LinkId(v)
    }

    #[test]
    fn fresh_link_is_empty() {
        let l = LinkUsage::new(k(10_000));
        assert!(l.is_up());
        assert_eq!(l.capacity(), k(10_000));
        assert_eq!(l.committed(), Bandwidth::ZERO);
        assert_eq!(l.headroom(), k(10_000));
        assert_eq!(l.primary_count(), 0);
        assert!(!l.is_overbooked());
        l.debug_validate();
    }

    #[test]
    fn primary_accounting() {
        let mut l = LinkUsage::new(k(1_000));
        l.add_primary(cid(1), k(100));
        l.add_primary(cid(2), k(100));
        assert_eq!(l.primary_min_sum(), k(200));
        assert_eq!(l.primaries().collect::<Vec<_>>(), vec![cid(1), cid(2)]);
        l.remove_primary(cid(1), k(100));
        assert_eq!(l.primary_min_sum(), k(100));
        l.debug_validate();
    }

    #[test]
    #[should_panic(expected = "already a primary")]
    fn duplicate_primary_panics() {
        let mut l = LinkUsage::new(k(1_000));
        l.add_primary(cid(1), k(100));
        l.add_primary(cid(1), k(100));
    }

    #[test]
    #[should_panic(expected = "was not a primary")]
    fn removing_absent_primary_panics() {
        let mut l = LinkUsage::new(k(1_000));
        l.remove_primary(cid(1), k(100));
    }

    #[test]
    fn extras_add_and_remove() {
        let mut l = LinkUsage::new(k(1_000));
        l.add_primary(cid(1), k(100));
        l.add_extra(k(50));
        l.add_extra(k(50));
        assert_eq!(l.extra_sum(), k(100));
        assert_eq!(l.committed(), k(200));
        assert_eq!(l.headroom(), k(800));
        l.remove_extra(k(100));
        assert_eq!(l.extra_sum(), Bandwidth::ZERO);
    }

    #[test]
    fn admission_counts_extras_as_reclaimable() {
        let mut l = LinkUsage::new(k(300));
        l.add_primary(cid(1), k(100));
        l.add_extra(k(200)); // link fully used, but extras can retreat
        assert!(l.can_admit_primary(k(200)));
        assert!(!l.can_admit_primary(k(201)));
    }

    #[test]
    fn backup_multiplexing_shares_reservation() {
        // Two backups whose primaries are link-disjoint share reservation.
        let mut l = LinkUsage::new(k(1_000));
        l.add_backup(cid(1), k(100), &[lid(10), lid(11)]);
        assert_eq!(l.backup_reservation(), k(100));
        l.add_backup(cid(2), k(100), &[lid(20), lid(21)]);
        // Disjoint primaries: still 100, not 200.
        assert_eq!(l.backup_reservation(), k(100));
        l.debug_validate();
    }

    #[test]
    fn backup_conflict_adds_reservation() {
        // Two backups whose primaries share link 10 must both survive a
        // failure of link 10 → reservation is the sum.
        let mut l = LinkUsage::new(k(1_000));
        l.add_backup(cid(1), k(100), &[lid(10), lid(11)]);
        l.add_backup(cid(2), k(150), &[lid(10)]);
        assert_eq!(l.backup_reservation(), k(250));
        l.debug_validate();
    }

    #[test]
    fn backup_removal_restores_reservation() {
        let mut l = LinkUsage::new(k(1_000));
        l.add_backup(cid(1), k(100), &[lid(10)]);
        l.add_backup(cid(2), k(150), &[lid(10)]);
        l.remove_backup(cid(2), k(150), &[lid(10)]);
        assert_eq!(l.backup_reservation(), k(100));
        l.remove_backup(cid(1), k(100), &[lid(10)]);
        assert_eq!(l.backup_reservation(), Bandwidth::ZERO);
        assert!(l.conflict.is_empty());
        l.debug_validate();
    }

    #[test]
    #[should_panic(expected = "was not a backup")]
    fn removing_absent_backup_panics() {
        let mut l = LinkUsage::new(k(1_000));
        l.remove_backup(cid(9), k(100), &[lid(1)]);
    }

    #[test]
    fn prospective_reservation() {
        let mut l = LinkUsage::new(k(1_000));
        l.add_backup(cid(1), k(100), &[lid(10)]);
        // Joining with a conflicting primary raises the worst case.
        assert_eq!(l.reservation_if_backup_added(k(50), &[lid(10)]), k(150));
        // Joining with a disjoint primary leaves the max unchanged.
        assert_eq!(l.reservation_if_backup_added(k(50), &[lid(20)]), k(100));
        // Empty link: reservation equals the newcomer's own share... via max.
        let fresh = LinkUsage::new(k(1_000));
        assert_eq!(fresh.reservation_if_backup_added(k(50), &[lid(3)]), k(50));
    }

    #[test]
    fn can_admit_backup_respects_capacity() {
        let mut l = LinkUsage::new(k(300));
        l.add_primary(cid(1), k(100));
        l.add_backup(cid(2), k(100), &[lid(10)]);
        // A conflicting backup of 100 would need reservation 200 → total 300: fits.
        assert!(l.can_admit_backup(k(100), &[lid(10)]));
        // 150 would need 250 → total 350: rejected.
        assert!(!l.can_admit_backup(k(150), &[lid(10)]));
        // A disjoint backup of 100 shares the existing reservation: fits.
        assert!(l.can_admit_backup(k(100), &[lid(99)]));
    }

    #[test]
    fn down_link_admits_nothing() {
        let mut l = LinkUsage::new(k(1_000));
        l.set_up(false);
        assert!(!l.is_up());
        assert!(!l.can_admit_primary(k(1)));
        assert!(!l.can_admit_backup(k(1), &[lid(0)]));
    }

    #[test]
    fn plan_digest_tracks_planning_state_only() {
        let mut l = LinkUsage::new(k(1_000));
        let fresh = l.plan_digest();
        // Extras are invisible to planning: the digest must not move.
        l.add_extra(k(300));
        assert_eq!(l.plan_digest(), fresh);
        l.remove_extra(k(300));
        // Primaries, backups, and liveness all change it.
        l.add_primary(cid(1), k(100));
        let with_primary = l.plan_digest();
        assert_ne!(with_primary, fresh);
        l.add_backup(cid(2), k(100), &[lid(10)]);
        let with_backup = l.plan_digest();
        assert_ne!(with_backup, with_primary);
        l.set_up(false);
        assert_ne!(l.plan_digest(), with_backup);
        l.set_up(true);
        // Round-trips restore the exact digest (value-based, not
        // generation-based: establish→release revalidates cached routes).
        l.remove_backup(cid(2), k(100), &[lid(10)]);
        assert_eq!(l.plan_digest(), with_primary);
        l.remove_primary(cid(1), k(100));
        assert_eq!(l.plan_digest(), fresh);
    }

    #[test]
    fn plan_digest_distinguishes_conflict_layouts() {
        // Same reservation, different conflict maps: planning can tell
        // them apart (reservation_if_backup_added reads per-link entries),
        // so the digest must too.
        let mut a = LinkUsage::new(k(1_000));
        a.add_backup(cid(1), k(100), &[lid(10)]);
        let mut b = LinkUsage::new(k(1_000));
        b.add_backup(cid(1), k(100), &[lid(11)]);
        assert_eq!(a.backup_reservation(), b.backup_reservation());
        assert_ne!(a.plan_digest(), b.plan_digest());
    }

    #[test]
    fn plan_digest_memo_is_invisible() {
        let mut a = LinkUsage::new(k(1_000));
        a.add_primary(cid(1), k(100));
        let b = a.clone();
        // Computing the digest fills `a`'s memo but must not make `a`
        // observably different from `b` (snapshot / oracle comparisons
        // rely on accounting-only equality).
        let d1 = a.plan_digest();
        assert_eq!(a, b);
        // Memoized reads keep returning the true digest, and a mutation
        // in between invalidates the memo.
        assert_eq!(a.plan_digest(), d1);
        a.add_backup(cid(2), k(50), &[lid(10)]);
        assert_ne!(a.plan_digest(), d1);
        assert_eq!(b.plan_digest(), d1);
    }

    #[test]
    fn overbooked_detection() {
        let mut l = LinkUsage::new(k(150));
        l.add_primary(cid(1), k(100));
        assert!(!l.is_overbooked());
        l.add_backup(cid(2), k(100), &[lid(10)]);
        // Hard committed 200 > capacity 150 — the manager never creates
        // this in failure-free operation, but activation bursts can.
        assert!(l.is_overbooked());
    }
}
