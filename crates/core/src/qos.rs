//! Quality-of-Service types: bandwidth and the elastic min–max range model.
//!
//! The paper's elastic QoS (Section 2.2) is the *range* model: a client
//! specifies the minimum bandwidth required for acceptable service, the
//! maximum bandwidth it can exploit, and a utility used when extra
//! resources are divided. Reservations move in multiples of a fixed
//! *increment size* `Δ`, giving `N = 1 + (B_max − B_min)/Δ` discrete levels
//! — the states of the paper's Markov chain.

use crate::error::QosError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bandwidth amount in kilobits per second.
///
/// Integer Kbps keeps the elastic-allocation arithmetic exact: levels,
/// increments, and link budgets never accumulate floating-point drift.
///
/// # Examples
///
/// ```
/// use drqos_core::qos::Bandwidth;
///
/// let link = Bandwidth::mbps(10);
/// let channel = Bandwidth::kbps(500);
/// assert_eq!(link - channel, Bandwidth::kbps(9_500));
/// assert_eq!(channel.to_string(), "500 Kbps");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth of `v` Kbps.
    pub const fn kbps(v: u64) -> Self {
        Bandwidth(v)
    }

    /// Creates a bandwidth of `v` Mbps.
    pub const fn mbps(v: u64) -> Self {
        Bandwidth(v * 1_000)
    }

    /// The value in Kbps.
    pub const fn as_kbps(self) -> u64 {
        self.0
    }

    /// The value in Kbps as `f64` (for statistics).
    pub fn as_kbps_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Bandwidth) -> Option<Bandwidth> {
        self.0.checked_sub(rhs.0).map(Bandwidth)
    }

    /// Multiplies by an integer count (e.g. `increment × level`).
    pub fn times(self, n: u64) -> Bandwidth {
        Bandwidth(self.0 * n)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;

    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;

    /// # Panics
    ///
    /// Panics on underflow (a bookkeeping bug); use
    /// [`Bandwidth::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(
            self.0
                .checked_sub(rhs.0)
                .expect("bandwidth subtraction underflow"),
        )
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        *self = *self - rhs;
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Kbps", self.0)
    }
}

/// An elastic (min–max range) QoS specification.
///
/// # Examples
///
/// ```
/// use drqos_core::qos::{Bandwidth, ElasticQos};
///
/// // The paper's video service: 100–500 Kbps in 50 Kbps steps.
/// let qos = ElasticQos::new(
///     Bandwidth::kbps(100),
///     Bandwidth::kbps(500),
///     Bandwidth::kbps(50),
///     1.0,
/// )?;
/// assert_eq!(qos.num_levels(), 9);
/// assert_eq!(qos.level_bandwidth(8), Bandwidth::kbps(500));
/// # Ok::<(), drqos_core::error::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticQos {
    min: Bandwidth,
    max: Bandwidth,
    increment: Bandwidth,
    utility: f64,
}

impl ElasticQos {
    /// Creates an elastic QoS range.
    ///
    /// # Errors
    ///
    /// * [`QosError::ZeroMinimum`] if `min` is zero.
    /// * [`QosError::MaxBelowMin`] if `max < min`.
    /// * [`QosError::ZeroIncrement`] if `max > min` but `increment` is zero.
    /// * [`QosError::IncrementDoesNotDivideRange`] if `(max − min)` is not
    ///   a multiple of `increment`.
    /// * [`QosError::InvalidUtility`] if `utility` is not finite and
    ///   positive.
    pub fn new(
        min: Bandwidth,
        max: Bandwidth,
        increment: Bandwidth,
        utility: f64,
    ) -> Result<Self, QosError> {
        if min == Bandwidth::ZERO {
            return Err(QosError::ZeroMinimum);
        }
        if max < min {
            return Err(QosError::MaxBelowMin);
        }
        if max > min {
            if increment == Bandwidth::ZERO {
                return Err(QosError::ZeroIncrement);
            }
            if !(max.as_kbps() - min.as_kbps()).is_multiple_of(increment.as_kbps()) {
                return Err(QosError::IncrementDoesNotDivideRange);
            }
        }
        if !utility.is_finite() || utility <= 0.0 {
            return Err(QosError::InvalidUtility(utility));
        }
        Ok(Self {
            min,
            max,
            increment,
            utility,
        })
    }

    /// A rigid (single-value) QoS — the baseline scheme the paper improves
    /// on, where `min == max` and no extra resources are ever taken.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ZeroMinimum`] if `bandwidth` is zero.
    pub fn rigid(bandwidth: Bandwidth) -> Result<Self, QosError> {
        Self::new(bandwidth, bandwidth, Bandwidth::kbps(1), 1.0)
    }

    /// The paper's evaluation QoS: 100–500 Kbps with the given increment
    /// (50 Kbps → 9 states, 100 Kbps → 5 states) and unit utility.
    ///
    /// # Panics
    ///
    /// Panics if `increment_kbps` does not divide 400 (only used with the
    /// paper's 50/100 values).
    pub fn paper_video(increment_kbps: u64) -> Self {
        Self::new(
            Bandwidth::kbps(100),
            Bandwidth::kbps(500),
            Bandwidth::kbps(increment_kbps),
            1.0,
        )
        .expect("paper parameters are valid")
    }

    /// Minimum (guaranteed) bandwidth.
    pub fn min(&self) -> Bandwidth {
        self.min
    }

    /// Maximum (best-effort ceiling) bandwidth.
    pub fn max(&self) -> Bandwidth {
        self.max
    }

    /// Increment size `Δ`.
    pub fn increment(&self) -> Bandwidth {
        self.increment
    }

    /// Utility / coefficient used by the adaptation policy.
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// Returns a copy with a different utility.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidUtility`] if `utility` is not finite and
    /// positive.
    pub fn with_utility(mut self, utility: f64) -> Result<Self, QosError> {
        if !utility.is_finite() || utility <= 0.0 {
            return Err(QosError::InvalidUtility(utility));
        }
        self.utility = utility;
        Ok(self)
    }

    /// Number of bandwidth levels `N = 1 + (max − min)/Δ` — the state count
    /// of the paper's Markov chain.
    pub fn num_levels(&self) -> usize {
        if self.max == self.min {
            1
        } else {
            1 + ((self.max.as_kbps() - self.min.as_kbps()) / self.increment.as_kbps()) as usize
        }
    }

    /// The highest level index (`N − 1`).
    pub fn max_level(&self) -> usize {
        self.num_levels() - 1
    }

    /// The bandwidth at `level`: `min + level·Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_bandwidth(&self, level: usize) -> Bandwidth {
        assert!(level < self.num_levels(), "level {level} out of range");
        self.min + self.increment.times(level as u64)
    }

    /// The level whose bandwidth equals `bw`, if `bw` is on the grid.
    pub fn level_of(&self, bw: Bandwidth) -> Option<usize> {
        if bw < self.min || bw > self.max {
            return None;
        }
        let offset = bw.as_kbps() - self.min.as_kbps();
        if self.max == self.min {
            return Some(0);
        }
        if !offset.is_multiple_of(self.increment.as_kbps()) {
            return None;
        }
        Some((offset / self.increment.as_kbps()) as usize)
    }

    /// Whether this QoS is rigid (no elasticity).
    pub fn is_rigid(&self) -> bool {
        self.min == self.max
    }
}

/// How extra resources are divided among elastic channels (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdaptationPolicy {
    /// The max-utility scheme (Han, 1998): extra increments go to the
    /// channel with the highest utility until it is saturated, "allowing a
    /// real-time channel to monopolize all the extra resources even when
    /// its utility is slightly higher than the others".
    MaxUtility,
    /// The coefficient scheme (Buttazzo et al., 1998): extra increments are
    /// divided in proportion to each channel's coefficient — weighted
    /// max–min fairness on the increment grid. With equal coefficients this
    /// is the "fair distribution of resources" the paper's experiments use.
    #[default]
    Coefficient,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constructors() {
        assert_eq!(Bandwidth::mbps(10), Bandwidth::kbps(10_000));
        assert_eq!(Bandwidth::kbps(5).as_kbps(), 5);
        assert_eq!(Bandwidth::ZERO.as_kbps(), 0);
        assert_eq!(Bandwidth::kbps(7).as_kbps_f64(), 7.0);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::kbps(100);
        let b = Bandwidth::kbps(30);
        assert_eq!(a + b, Bandwidth::kbps(130));
        assert_eq!(a - b, Bandwidth::kbps(70));
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bandwidth::kbps(70)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.times(3), Bandwidth::kbps(90));
        let mut c = a;
        c += b;
        c -= Bandwidth::kbps(10);
        assert_eq!(c, Bandwidth::kbps(120));
        let total: Bandwidth = [a, b].into_iter().sum();
        assert_eq!(total, Bandwidth::kbps(130));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn bandwidth_sub_underflow_panics() {
        let _ = Bandwidth::kbps(1) - Bandwidth::kbps(2);
    }

    #[test]
    fn bandwidth_ordering_and_display() {
        assert!(Bandwidth::kbps(1) < Bandwidth::kbps(2));
        assert_eq!(Bandwidth::kbps(500).to_string(), "500 Kbps");
    }

    #[test]
    fn paper_video_levels() {
        let q50 = ElasticQos::paper_video(50);
        assert_eq!(q50.num_levels(), 9);
        assert_eq!(q50.max_level(), 8);
        let q100 = ElasticQos::paper_video(100);
        assert_eq!(q100.num_levels(), 5);
        assert_eq!(q100.level_bandwidth(0), Bandwidth::kbps(100));
        assert_eq!(q100.level_bandwidth(4), Bandwidth::kbps(500));
    }

    #[test]
    fn validation_errors() {
        let k = Bandwidth::kbps;
        assert_eq!(
            ElasticQos::new(Bandwidth::ZERO, k(10), k(1), 1.0),
            Err(QosError::ZeroMinimum)
        );
        assert_eq!(
            ElasticQos::new(k(10), k(5), k(1), 1.0),
            Err(QosError::MaxBelowMin)
        );
        assert_eq!(
            ElasticQos::new(k(5), k(10), Bandwidth::ZERO, 1.0),
            Err(QosError::ZeroIncrement)
        );
        assert_eq!(
            ElasticQos::new(k(100), k(500), k(150), 1.0),
            Err(QosError::IncrementDoesNotDivideRange)
        );
        assert!(matches!(
            ElasticQos::new(k(5), k(10), k(5), 0.0),
            Err(QosError::InvalidUtility(_))
        ));
        assert!(matches!(
            ElasticQos::new(k(5), k(10), k(5), f64::INFINITY),
            Err(QosError::InvalidUtility(_))
        ));
    }

    #[test]
    fn rigid_has_one_level() {
        let q = ElasticQos::rigid(Bandwidth::kbps(100)).unwrap();
        assert!(q.is_rigid());
        assert_eq!(q.num_levels(), 1);
        assert_eq!(q.level_bandwidth(0), Bandwidth::kbps(100));
        assert!(ElasticQos::rigid(Bandwidth::ZERO).is_err());
    }

    #[test]
    fn level_of_round_trips() {
        let q = ElasticQos::paper_video(50);
        for level in 0..q.num_levels() {
            assert_eq!(q.level_of(q.level_bandwidth(level)), Some(level));
        }
        assert_eq!(q.level_of(Bandwidth::kbps(99)), None);
        assert_eq!(q.level_of(Bandwidth::kbps(501)), None);
        assert_eq!(q.level_of(Bandwidth::kbps(125)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_bandwidth_bounds_checked() {
        ElasticQos::paper_video(50).level_bandwidth(9);
    }

    #[test]
    fn equal_min_max_is_a_single_state_chain() {
        let k = Bandwidth::kbps;
        // B_min == B_max degenerates to the rigid single-state chain no
        // matter what increment is supplied — including zero.
        for inc in [0u64, 1, 50] {
            let q = ElasticQos::new(k(300), k(300), k(inc), 1.0).unwrap();
            assert!(q.is_rigid(), "inc {inc}");
            assert_eq!(q.num_levels(), 1, "inc {inc}");
            assert_eq!(q.max_level(), 0, "inc {inc}");
            assert_eq!(q.level_bandwidth(0), k(300), "inc {inc}");
            assert_eq!(q.level_of(k(300)), Some(0), "inc {inc}");
            assert_eq!(q.level_of(k(299)), None, "inc {inc}");
        }
    }

    #[test]
    fn increment_must_divide_range_exactly() {
        let k = Bandwidth::kbps;
        // Δ larger than the range, Δ equal to the range, and a Δ that
        // leaves a remainder: only the exact divisor is accepted.
        assert_eq!(
            ElasticQos::new(k(100), k(500), k(600), 1.0),
            Err(QosError::IncrementDoesNotDivideRange)
        );
        assert_eq!(
            ElasticQos::new(k(100), k(500), k(300), 1.0),
            Err(QosError::IncrementDoesNotDivideRange)
        );
        let q = ElasticQos::new(k(100), k(500), k(400), 1.0).unwrap();
        assert_eq!(q.num_levels(), 2);
        assert_eq!(q.level_bandwidth(1), k(500));
        assert_eq!(q.level_of(k(300)), None, "off-grid value has no level");
    }

    #[test]
    fn zero_increment_rejected_only_when_elastic() {
        let k = Bandwidth::kbps;
        assert_eq!(
            ElasticQos::new(k(100), k(101), Bandwidth::ZERO, 1.0),
            Err(QosError::ZeroIncrement)
        );
        assert!(ElasticQos::new(k(100), k(100), Bandwidth::ZERO, 1.0).is_ok());
    }

    #[test]
    fn with_utility_replaces() {
        let q = ElasticQos::paper_video(50).with_utility(2.5).unwrap();
        assert_eq!(q.utility(), 2.5);
        assert!(ElasticQos::paper_video(50).with_utility(-1.0).is_err());
    }

    #[test]
    fn default_policy_is_coefficient() {
        assert_eq!(AdaptationPolicy::default(), AdaptationPolicy::Coefficient);
    }
}
