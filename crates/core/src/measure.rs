//! Measurement of the Markov-model parameters from simulation.
//!
//! The paper's transition probabilities cannot be derived in closed form
//! for irregular topologies ("it is almost impossible to parameterize these
//! probabilities analytically"), so they are *measured* from a detailed
//! simulation (Section 3.3). This module accumulates, over churn events:
//!
//! * `P_f` — the probability that an existing channel is **directly
//!   chained** to (shares at least one link with) a newly arrived
//!   connection;
//! * `P_s` — the probability that it is **indirectly chained** (shares no
//!   link with the new connection, but a third channel traverses links of
//!   both);
//! * `A_ij` — level-transition distribution of directly-chained channels on
//!   an arrival or a backup activation;
//! * `B_ij` — level-transition distribution of indirectly-chained channels
//!   on an arrival;
//! * `T_ij` — level-transition distribution of directly-chained channels on
//!   a termination.

use std::fmt;

/// A `(before, after)` level transition of one channel at one event.
pub type LevelTransition = (usize, usize);

/// Observed effectiveness of the admission-path route cache
/// (see [`crate::route_cache`]).
///
/// Lives here with the other measured quantities so experiment reports,
/// the bench runner's `runtime.json`, and the service's `STATS` reply all
/// share one definition of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from a cached, still-valid route pair.
    pub hits: u64,
    /// Lookups that fell through to a full route search (including
    /// lookups that found a stale entry).
    pub misses: u64,
    /// Entries evicted because a probed link's planning state changed
    /// (lazy digest mismatch) or a topology event touched a footprint
    /// link (eager reverse-index eviction).
    pub stale_evictions: u64,
}

impl RouteCacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Folds another run's counters into this one (sweep aggregation).
    pub fn absorb(&mut self, other: &RouteCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_evictions += other.stale_evictions;
    }
}

/// Errors from parameter estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EstimateError {
    /// No arrival events were recorded, so `P_f`/`P_s` are undefined.
    NoArrivals,
    /// A recorded level was outside `0..n_states`.
    LevelOutOfRange(usize),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::NoArrivals => write!(f, "no arrival events were recorded"),
            EstimateError::LevelOutOfRange(l) => write!(f, "level {l} out of range"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// Accumulates the paper's model parameters over a churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterEstimator {
    n_states: usize,
    arrival_events: u64,
    termination_events: u64,
    failure_events: u64,
    pf_sum: f64,
    ps_sum: f64,
    pf_fault_sum: f64,
    a: Vec<Vec<u64>>,
    b: Vec<Vec<u64>>,
    t: Vec<Vec<u64>>,
    f: Vec<Vec<u64>>,
    occupancy: Vec<u64>,
}

impl ParameterEstimator {
    /// Creates an estimator for a model with `n_states` bandwidth levels.
    ///
    /// # Panics
    ///
    /// Panics if `n_states == 0`.
    pub fn new(n_states: usize) -> Self {
        assert!(n_states > 0, "estimator needs at least one state");
        let zeros = || vec![vec![0u64; n_states]; n_states];
        Self {
            n_states,
            arrival_events: 0,
            termination_events: 0,
            failure_events: 0,
            pf_sum: 0.0,
            ps_sum: 0.0,
            pf_fault_sum: 0.0,
            a: zeros(),
            b: zeros(),
            t: zeros(),
            f: zeros(),
            occupancy: vec![0; n_states],
        }
    }

    /// Records the bandwidth levels of the channels alive at a measurement
    /// instant. Occupancy is the model's fallback when a load level is so
    /// light that *no* level transitions are ever observed (every state
    /// would be absorbing); it also serves as a diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::LevelOutOfRange`] on a bad level index.
    pub fn record_occupancy(
        &mut self,
        levels: impl IntoIterator<Item = usize>,
    ) -> Result<(), EstimateError> {
        for level in levels {
            if level >= self.n_states {
                return Err(EstimateError::LevelOutOfRange(level));
            }
            self.occupancy[level] += 1;
        }
        Ok(())
    }

    /// Number of bandwidth levels.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Arrival events recorded so far.
    pub fn arrival_events(&self) -> u64 {
        self.arrival_events
    }

    fn check(&self, transitions: &[LevelTransition]) -> Result<(), EstimateError> {
        for &(i, j) in transitions {
            if i >= self.n_states {
                return Err(EstimateError::LevelOutOfRange(i));
            }
            if j >= self.n_states {
                return Err(EstimateError::LevelOutOfRange(j));
            }
        }
        Ok(())
    }

    /// Records one accepted arrival: `existing` is the number of channels
    /// that existed before the arrival, `direct` / `indirect` the
    /// transitions of the directly / indirectly chained ones.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::LevelOutOfRange`] on a bad level index.
    pub fn record_arrival(
        &mut self,
        existing: usize,
        direct: &[LevelTransition],
        indirect: &[LevelTransition],
    ) -> Result<(), EstimateError> {
        self.check(direct)?;
        self.check(indirect)?;
        self.arrival_events += 1;
        if existing > 0 {
            self.pf_sum += direct.len() as f64 / existing as f64;
            self.ps_sum += indirect.len() as f64 / existing as f64;
        }
        for &(i, j) in direct {
            self.a[i][j] += 1;
        }
        for &(i, j) in indirect {
            self.b[i][j] += 1;
        }
        Ok(())
    }

    /// Records one termination: the transitions of channels that shared at
    /// least one link with the departed connection.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::LevelOutOfRange`] on a bad level index.
    pub fn record_termination(&mut self, direct: &[LevelTransition]) -> Result<(), EstimateError> {
        self.check(direct)?;
        self.termination_events += 1;
        for &(i, j) in direct {
            self.t[i][j] += 1;
        }
        Ok(())
    }

    /// Records one link failure: `existing` is the number of channels alive
    /// before the failure, `affected` the `(before, after)` level
    /// transitions across the failure of the **whole surviving
    /// population**.
    ///
    /// Unlike arrivals/terminations (where the affected sub-population is
    /// the directly/indirectly chained channels), a failure's
    /// re-distribution both demotes channels (those sharing links with
    /// activated backups) *and* promotes their neighbours; sampling the
    /// whole population keeps both flows in `F` (whose rows are therefore
    /// mostly diagonal). `P_f^fault` is then simply the survivor fraction
    /// (≈ 1), and the failure rate term is `P_f^fault · F_ij · γ`.
    ///
    /// The paper instead folds failures into the arrival matrix with the
    /// arrival incidence (downward rate `P_f · A_ij · (λ + γ)`), which
    /// overestimates failure pressure as γ approaches λ; with γ = 0 the
    /// two formulations coincide, and ours reproduces the paper's Figure 4
    /// *finding* (failures have no visible effect) over the whole swept
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::LevelOutOfRange`] on a bad level index.
    pub fn record_failure(
        &mut self,
        existing: usize,
        affected: &[LevelTransition],
    ) -> Result<(), EstimateError> {
        self.check(affected)?;
        self.failure_events += 1;
        if existing > 0 {
            self.pf_fault_sum += affected.len() as f64 / existing as f64;
        }
        for &(i, j) in affected {
            self.f[i][j] += 1;
        }
        Ok(())
    }

    /// Produces the measured parameters.
    ///
    /// Transition matrices are row-normalized; rows with no observations
    /// become identity rows (state never observed → no transition mass,
    /// hence no rate contribution in the model).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::NoArrivals`] if no arrivals were recorded.
    pub fn finalize(&self) -> Result<MeasuredParams, EstimateError> {
        if self.arrival_events == 0 {
            return Err(EstimateError::NoArrivals);
        }
        let normalize = |counts: &Vec<Vec<u64>>| -> Vec<Vec<f64>> {
            counts
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    let total: u64 = row.iter().sum();
                    if total == 0 {
                        let mut r = vec![0.0; self.n_states];
                        r[i] = 1.0;
                        r
                    } else {
                        row.iter().map(|&c| c as f64 / total as f64).collect()
                    }
                })
                .collect()
        };
        let occ_total: u64 = self.occupancy.iter().sum();
        let occupancy = if occ_total == 0 {
            vec![0.0; self.n_states]
        } else {
            self.occupancy
                .iter()
                .map(|&c| c as f64 / occ_total as f64)
                .collect()
        };
        Ok(MeasuredParams {
            n_states: self.n_states,
            pf: self.pf_sum / self.arrival_events as f64,
            ps: self.ps_sum / self.arrival_events as f64,
            pf_fault: if self.failure_events == 0 {
                0.0
            } else {
                self.pf_fault_sum / self.failure_events as f64
            },
            a: normalize(&self.a),
            b: normalize(&self.b),
            t: normalize(&self.t),
            f: normalize(&self.f),
            occupancy,
        })
    }
}

/// The measured parameters of the paper's Markov model.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredParams {
    /// Number of bandwidth levels `N`.
    pub n_states: usize,
    /// Probability that a channel shares a link with a new arrival.
    pub pf: f64,
    /// Probability that a channel is indirectly chained to a new arrival.
    pub ps: f64,
    /// Probability that a channel retreats on a link failure (measured per
    /// failure event; zero when no failures were injected).
    pub pf_fault: f64,
    /// Row-stochastic transition matrix on arrival/failure (directly
    /// chained channels; the paper's `A_ij`).
    pub a: Vec<Vec<f64>>,
    /// Row-stochastic transition matrix on arrival (indirectly chained
    /// channels; the paper's `B_ij`).
    pub b: Vec<Vec<f64>>,
    /// Row-stochastic transition matrix on termination (directly chained
    /// channels; the paper's `T_ij`).
    pub t: Vec<Vec<f64>>,
    /// Row-stochastic transition matrix on link failure (channels sharing
    /// links with activated backups; see
    /// [`ParameterEstimator::record_failure`]).
    pub f: Vec<Vec<f64>>,
    /// Observed fraction of channel-observations at each level (all zeros
    /// when occupancy was never recorded). Used as the model's degenerate
    /// fallback and as a diagnostic.
    pub occupancy: Vec<f64>,
}

impl MeasuredParams {
    /// Sanity-checks shape and stochasticity (used by tests and the
    /// analysis crate before model construction).
    pub fn is_consistent(&self) -> bool {
        let square = |m: &Vec<Vec<f64>>| {
            m.len() == self.n_states
                && m.iter().all(|row| {
                    row.len() == self.n_states
                        && row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p))
                        && (row.iter().sum::<f64>() - 1.0).abs() < 1e-9
                })
        };
        let occ_sum: f64 = self.occupancy.iter().sum();
        self.n_states > 0
            && (0.0..=1.0).contains(&self.pf)
            && (0.0..=1.0).contains(&self.ps)
            && (0.0..=1.0).contains(&self.pf_fault)
            && square(&self.a)
            && square(&self.b)
            && square(&self.t)
            && square(&self.f)
            && self.occupancy.len() == self.n_states
            && self
                .occupancy
                .iter()
                .all(|&p| (0.0..=1.0 + 1e-9).contains(&p))
            && (occ_sum == 0.0 || (occ_sum - 1.0).abs() < 1e-9)
    }

    /// The occupancy-weighted average bandwidth level, if occupancy was
    /// recorded.
    pub fn occupancy_mean_level(&self) -> Option<f64> {
        let total: f64 = self.occupancy.iter().sum();
        if total == 0.0 {
            None
        } else {
            Some(
                self.occupancy
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| i as f64 * p)
                    .sum(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_estimator_has_no_data() {
        let e = ParameterEstimator::new(5);
        assert_eq!(e.n_states(), 5);
        assert_eq!(e.arrival_events(), 0);
        assert_eq!(e.finalize(), Err(EstimateError::NoArrivals));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        ParameterEstimator::new(0);
    }

    #[test]
    fn pf_ps_average_over_events() {
        let mut e = ParameterEstimator::new(3);
        // Event 1: 4 existing, 2 direct, 1 indirect.
        e.record_arrival(4, &[(2, 0), (1, 0)], &[(0, 1)]).unwrap();
        // Event 2: 2 existing, 1 direct, 0 indirect.
        e.record_arrival(2, &[(2, 2)], &[]).unwrap();
        let p = e.finalize().unwrap();
        assert!((p.pf - (0.5 + 0.5) / 2.0).abs() < 1e-12);
        assert!((p.ps - (0.25 + 0.0) / 2.0).abs() < 1e-12);
        assert!(p.is_consistent());
    }

    #[test]
    fn empty_network_arrival_counts_event_only() {
        let mut e = ParameterEstimator::new(2);
        e.record_arrival(0, &[], &[]).unwrap();
        let p = e.finalize().unwrap();
        assert_eq!(p.pf, 0.0);
        assert_eq!(p.ps, 0.0);
    }

    #[test]
    fn matrices_row_normalize() {
        let mut e = ParameterEstimator::new(3);
        e.record_arrival(3, &[(2, 0), (2, 0), (2, 2)], &[(0, 1)])
            .unwrap();
        e.record_termination(&[(0, 2), (0, 2), (0, 0), (0, 1)])
            .unwrap();
        let p = e.finalize().unwrap();
        assert!((p.a[2][0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.a[2][2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.b[0][1], 1.0);
        assert_eq!(p.t[0][2], 0.5);
        assert_eq!(p.t[0][0], 0.25);
        assert!(p.is_consistent());
    }

    #[test]
    fn unobserved_rows_become_identity() {
        let mut e = ParameterEstimator::new(3);
        e.record_arrival(1, &[(2, 0)], &[]).unwrap();
        let p = e.finalize().unwrap();
        assert_eq!(p.a[0], vec![1.0, 0.0, 0.0]);
        assert_eq!(p.a[1], vec![0.0, 1.0, 0.0]);
        assert!(p.is_consistent());
    }

    #[test]
    fn failure_transitions_have_their_own_matrix() {
        let mut e = ParameterEstimator::new(2);
        e.record_arrival(1, &[], &[]).unwrap();
        e.record_failure(4, &[(1, 0), (1, 0)]).unwrap();
        let p = e.finalize().unwrap();
        assert_eq!(p.f[1][0], 1.0);
        // Arrivals' A matrix is untouched by failures.
        assert_eq!(p.a[1][1], 1.0);
        assert!((p.pf_fault - 0.5).abs() < 1e-12);
        assert!(p.is_consistent());
    }

    #[test]
    fn pf_fault_averages_over_failure_events() {
        let mut e = ParameterEstimator::new(2);
        e.record_arrival(1, &[], &[]).unwrap();
        e.record_failure(10, &[(1, 0)]).unwrap(); // 0.1
        e.record_failure(10, &[(1, 0), (1, 0), (1, 0)]).unwrap(); // 0.3
        let p = e.finalize().unwrap();
        assert!((p.pf_fault - 0.2).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_levels_rejected() {
        let mut e = ParameterEstimator::new(2);
        assert_eq!(
            e.record_arrival(1, &[(2, 0)], &[]),
            Err(EstimateError::LevelOutOfRange(2))
        );
        assert_eq!(
            e.record_termination(&[(0, 5)]),
            Err(EstimateError::LevelOutOfRange(5))
        );
        assert_eq!(
            e.record_failure(1, &[(3, 0)]),
            Err(EstimateError::LevelOutOfRange(3))
        );
    }

    #[test]
    fn consistency_detects_bad_params() {
        let mut p = MeasuredParams {
            n_states: 2,
            pf: 0.5,
            ps: 0.1,
            pf_fault: 0.05,
            a: vec![vec![1.0, 0.0], vec![0.5, 0.5]],
            b: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            t: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            f: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            occupancy: vec![0.25, 0.75],
        };
        assert!(p.is_consistent());
        p.pf = 1.5;
        assert!(!p.is_consistent());
        p.pf = 0.5;
        p.a[0][0] = 0.9;
        assert!(!p.is_consistent());
        p.a[0][0] = 1.0;
        p.occupancy = vec![0.5, 0.1];
        assert!(!p.is_consistent());
    }

    #[test]
    fn occupancy_normalizes_and_averages() {
        let mut e = ParameterEstimator::new(3);
        e.record_arrival(1, &[], &[]).unwrap();
        e.record_occupancy([0, 2, 2, 2]).unwrap();
        let p = e.finalize().unwrap();
        assert_eq!(p.occupancy, vec![0.25, 0.0, 0.75]);
        assert!((p.occupancy_mean_level().unwrap() - 1.5).abs() < 1e-12);
        assert!(p.is_consistent());
    }

    #[test]
    fn occupancy_absent_is_zeroes() {
        let mut e = ParameterEstimator::new(2);
        e.record_arrival(1, &[], &[]).unwrap();
        let p = e.finalize().unwrap();
        assert_eq!(p.occupancy, vec![0.0, 0.0]);
        assert_eq!(p.occupancy_mean_level(), None);
        assert!(p.is_consistent());
    }

    #[test]
    fn occupancy_rejects_bad_level() {
        let mut e = ParameterEstimator::new(2);
        assert_eq!(
            e.record_occupancy([5]),
            Err(EstimateError::LevelOutOfRange(5))
        );
    }

    #[test]
    fn error_display() {
        assert!(EstimateError::NoArrivals.to_string().contains("arrival"));
        assert!(EstimateError::LevelOutOfRange(7).to_string().contains('7'));
    }
}
