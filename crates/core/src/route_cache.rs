//! An epoch- and digest-validated memo of admission route searches.
//!
//! Between topology events the graph is immutable ([`crate::network`]
//! tracks this with `topology_epoch`), and between capacity-crossing
//! establishes/releases the per-link *planning* state (liveness, primary
//! minima, backup-conflict map) is immutable too. Route planning is a
//! deterministic function of the graph and of the answers the search
//! receives on the links it probes — so a successful plan can be replayed
//! from a cache as long as every probed link still answers the same way.
//!
//! The cache exploits exactly that:
//!
//! * **Key** — `(src, dst, B_min)`. Planning observes the QoS only
//!   through its minimum, so connections with different elastic ranges
//!   but equal minima share entries.
//! * **Footprint** — while a miss runs the real search, the network
//!   records every link the search probed together with that link's
//!   [`crate::link_state::LinkUsage::plan_digest`]. Links the search
//!   never looked at cannot have influenced it.
//! * **Validation** — a lookup replays the footprint digests. All equal ⇒
//!   the search would reproduce the cached primary/backup pair verbatim:
//!   a *hit*. Any mismatch ⇒ the entry is evicted (a *stale eviction*)
//!   and the caller falls back to the real search.
//! * **Reverse index** — `fail_link` / `repair_link` (and `fail_node`,
//!   which delegates) eagerly evict only the entries whose footprint
//!   touches the changed link, via a link → keys index — never a global
//!   flush. Capacity-crossing establishes/releases are caught lazily by
//!   the digest check.
//! * **Doorkeeper admission** — recording a footprint and hashing it into
//!   an entry is not free, and a workload whose every plan is immediately
//!   committed invalidates each entry before it can ever hit. So a key is
//!   only memoized once [`RouteCache::promote`] has seen it miss twice:
//!   one-shot endpoint pairs pay a single set probe, nothing more, while
//!   genuinely recurring pairs are cached from their second miss on.
//! * **Bounded size** — at most [`MAX_ENTRIES`] plans are retained
//!   (approximate-FIFO eviction), keeping the reverse index small on
//!   long-running networks whose stale entries are never looked up again.
//!
//! Correctness does not rest on this module being clever: the testkit's
//! `fuzz --diff-cache` mode replays every fuzzed operation sequence
//! against cache-on and cache-off networks and demands byte-identical
//! snapshots after every operation.

use crate::measure::RouteCacheStats;
use drqos_topology::graph::{LinkId, NodeId};
use drqos_topology::paths::Path;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Cache key: source, destination, and the QoS minimum in Kbps (the only
/// QoS component route planning can observe).
pub type RouteCacheKey = (NodeId, NodeId, u64);

/// Maximum number of retained plans; beyond it the oldest entry is
/// evicted (approximate FIFO — re-inserted keys keep their original queue
/// position until it cycles out).
pub const MAX_ENTRIES: usize = 1024;

/// Cap on the doorkeeper's seen-once key set; when full it is simply
/// cleared (keys then need one extra miss to be admitted again).
const CANDIDATE_LIMIT: usize = 8192;

/// One memoized successful plan.
#[derive(Debug, Clone)]
struct Entry {
    /// Topology epoch at insertion (observability only: validation rests
    /// on the digests, which subsume liveness changes).
    epoch: u64,
    primary: Path,
    backups: Vec<Path>,
    /// Every link the planning search probed, with the digest of its
    /// planning-visible state at plan time.
    footprint: Vec<(LinkId, u64)>,
}

/// The per-network route memo. See the module docs for the design.
#[derive(Debug, Clone, Default)]
pub struct RouteCache {
    entries: BTreeMap<RouteCacheKey, Entry>,
    /// Reverse index: link → keys whose footprint contains it.
    by_link: BTreeMap<LinkId, BTreeSet<RouteCacheKey>>,
    /// Doorkeeper: keys that have missed at least once (see module docs).
    candidates: BTreeSet<RouteCacheKey>,
    /// Insertion order for capacity eviction. May contain keys already
    /// removed elsewhere; they are skipped when popped.
    order: VecDeque<RouteCacheKey>,
    stats: RouteCacheStats,
}

impl RouteCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/stale-eviction counters since creation.
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// Looks up `key`, revalidating the entry's footprint with
    /// `digest_of` (the current per-link plan digest). Returns the cached
    /// primary and backups on a hit; on a stale entry the entry is
    /// evicted and `None` is returned (counted as both a stale eviction
    /// and a miss).
    pub fn lookup(
        &mut self,
        key: RouteCacheKey,
        digest_of: impl Fn(LinkId) -> u64,
    ) -> Option<(Path, Vec<Path>)> {
        match self.entries.get(&key) {
            Some(entry) => {
                if entry.footprint.iter().all(|&(l, d)| digest_of(l) == d) {
                    self.stats.hits += 1;
                    let entry = &self.entries[&key];
                    Some((entry.primary.clone(), entry.backups.clone()))
                } else {
                    self.remove(key);
                    self.stats.stale_evictions += 1;
                    self.stats.misses += 1;
                    None
                }
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a miss for `key` with the doorkeeper and reports whether
    /// the key has now earned an entry: `false` on the first miss (the
    /// caller should skip footprint recording entirely), `true` from the
    /// second miss on.
    pub fn promote(&mut self, key: RouteCacheKey) -> bool {
        if self.candidates.len() >= CANDIDATE_LIMIT && !self.candidates.contains(&key) {
            self.candidates.clear();
        }
        !self.candidates.insert(key)
    }

    /// Inserts (or replaces) the plan for `key`, evicting the oldest
    /// entries beyond [`MAX_ENTRIES`].
    pub fn insert(
        &mut self,
        key: RouteCacheKey,
        epoch: u64,
        primary: Path,
        backups: Vec<Path>,
        footprint: Vec<(LinkId, u64)>,
    ) {
        self.remove(key); // drop a superseded entry's reverse-index refs
        while self.entries.len() >= MAX_ENTRIES {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.entries.contains_key(&oldest) {
                self.remove(oldest);
            }
        }
        for &(l, _) in &footprint {
            self.by_link.entry(l).or_default().insert(key);
        }
        self.order.push_back(key);
        self.entries.insert(
            key,
            Entry {
                epoch,
                primary,
                backups,
                footprint,
            },
        );
    }

    /// Eagerly evicts every entry whose footprint touches `link` (called
    /// on fail/repair). Returns how many entries were dropped; each
    /// counts as a stale eviction.
    pub fn evict_link(&mut self, link: LinkId) -> usize {
        let Some(keys) = self.by_link.get(&link) else {
            return 0;
        };
        let keys: Vec<RouteCacheKey> = keys.iter().copied().collect();
        for &key in &keys {
            self.remove(key);
        }
        self.stats.stale_evictions += keys.len() as u64;
        keys.len()
    }

    /// The insertion epoch of the entry for `key`, if cached.
    pub fn entry_epoch(&self, key: RouteCacheKey) -> Option<u64> {
        self.entries.get(&key).map(|e| e.epoch)
    }

    /// Removes one entry and its reverse-index references.
    fn remove(&mut self, key: RouteCacheKey) {
        let Some(entry) = self.entries.remove(&key) else {
            return;
        };
        for (l, _) in entry.footprint {
            if let Some(keys) = self.by_link.get_mut(&l) {
                keys.remove(&key);
                if keys.is_empty() {
                    self.by_link.remove(&l);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_topology::graph::Graph;

    fn key(s: usize, d: usize) -> RouteCacheKey {
        (NodeId(s), NodeId(d), 100)
    }

    fn path(g: &Graph, nodes: &[usize]) -> Path {
        Path::from_nodes(g, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
    }

    fn line4() -> Graph {
        let mut g = Graph::with_nodes(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            g.add_link(NodeId(a), NodeId(b)).unwrap();
        }
        g
    }

    #[test]
    fn hit_after_insert_with_matching_digests() {
        let g = line4();
        let mut cache = RouteCache::new();
        let p = path(&g, &[0, 1, 2]);
        cache.insert(
            key(0, 2),
            0,
            p.clone(),
            vec![],
            vec![(LinkId(0), 7), (LinkId(1), 9)],
        );
        let got = cache.lookup(key(0, 2), |l| if l == LinkId(0) { 7 } else { 9 });
        assert_eq!(got, Some((p, vec![])));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn digest_mismatch_evicts_and_counts_stale() {
        let g = line4();
        let mut cache = RouteCache::new();
        cache.insert(
            key(0, 2),
            0,
            path(&g, &[0, 1, 2]),
            vec![],
            vec![(LinkId(0), 7)],
        );
        assert!(cache.lookup(key(0, 2), |_| 8).is_none());
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stale_evictions), (0, 1, 1));
        // The reverse index forgot the entry too.
        assert_eq!(cache.evict_link(LinkId(0)), 0);
    }

    #[test]
    fn evict_link_drops_only_touching_entries() {
        let g = line4();
        let mut cache = RouteCache::new();
        cache.insert(
            key(0, 2),
            0,
            path(&g, &[0, 1, 2]),
            vec![],
            vec![(LinkId(0), 1), (LinkId(1), 1)],
        );
        cache.insert(
            key(2, 3),
            0,
            path(&g, &[2, 3]),
            vec![],
            vec![(LinkId(2), 1)],
        );
        assert_eq!(cache.evict_link(LinkId(1)), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(key(2, 3), |_| 1).is_some());
        assert_eq!(cache.stats().stale_evictions, 1);
    }

    #[test]
    fn replacement_cleans_old_reverse_refs() {
        let g = line4();
        let mut cache = RouteCache::new();
        cache.insert(
            key(0, 2),
            0,
            path(&g, &[0, 1, 2]),
            vec![],
            vec![(LinkId(0), 1)],
        );
        cache.insert(
            key(0, 2),
            1,
            path(&g, &[0, 1, 2]),
            vec![],
            vec![(LinkId(2), 1)],
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.entry_epoch(key(0, 2)), Some(1));
        // The old footprint link no longer maps to the key.
        assert_eq!(cache.evict_link(LinkId(0)), 0);
        assert_eq!(cache.evict_link(LinkId(2)), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn promote_admits_on_second_miss() {
        let mut cache = RouteCache::new();
        assert!(!cache.promote(key(0, 1)), "first miss: doorkeeper only");
        assert!(cache.promote(key(0, 1)), "second miss: record this one");
        assert!(cache.promote(key(0, 1)), "stays admitted");
        assert!(!cache.promote(key(2, 3)), "independent per key");
    }

    #[test]
    fn capacity_eviction_drops_oldest_first() {
        let g = line4();
        let p = path(&g, &[0, 1]);
        let mut cache = RouteCache::new();
        for i in 0..=MAX_ENTRIES {
            cache.insert(key(i, i + 1), 0, p.clone(), vec![], vec![(LinkId(0), 1)]);
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
        assert!(cache.entry_epoch(key(0, 1)).is_none(), "oldest evicted");
        assert!(cache
            .entry_epoch(key(MAX_ENTRIES, MAX_ENTRIES + 1))
            .is_some());
        // The evicted entry's reverse-index refs are gone with it: failing
        // the shared link drops exactly the retained entries.
        assert_eq!(cache.evict_link(LinkId(0)), MAX_ENTRIES);
        assert!(cache.is_empty());
    }

    #[test]
    fn miss_on_absent_key_counts() {
        let mut cache = RouteCache::new();
        assert!(cache.lookup(key(1, 3), |_| 0).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
