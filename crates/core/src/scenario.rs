//! Adversarial workload scenarios: where the paper's model breaks.
//!
//! Every experiment up to now ran the paper's friendliest world —
//! independent Poisson arrivals, exponential holding times, independent
//! single-link failures — exactly the regime the DSN'01 Markov model is
//! calibrated for. A [`Scenario`] composes harsher worlds on top of the
//! existing [`crate::workload::Workload`] machinery:
//!
//! * **flash crowd** — a non-homogeneous Poisson arrival process whose
//!   rate multiplies by [`Scenario::burst_factor`] inside seeded burst
//!   windows (one per modulation period, offset drawn deterministically
//!   from the seed);
//! * **diurnal** — piecewise-constant rate modulation over a repeating
//!   period, with factors averaging 1 so the *total* offered load matches
//!   the flat-Poisson baseline;
//! * **Pareto holding** — per-connection heavy-tailed holding times
//!   (shape ≤ 2 ⇒ infinite variance), replacing the baseline's
//!   memoryless termination process;
//! * **SRLG churn** — correlated failures through shared-risk link
//!   groups: [`crate::network::Network::fail_srlg`] events driven by the
//!   seeded [`drqos_sim::srlg::SrlgChurn`] stream.
//!
//! [`run_scenario_churn`] re-runs the paper's churn experiment under a
//! scenario; the baseline scenario delegates to [`run_churn`] unchanged,
//! so every committed baseline byte stays identical.

use crate::channel::ConnectionId;
use crate::experiment::{run_churn, ExperimentConfig, ExperimentReport};
use crate::measure::{ParameterEstimator, RouteCacheStats};
use crate::network::Network;
use crate::workload::Workload;
use drqos_sim::dist::{Distribution, Exponential, Pareto};
use drqos_sim::engine::Simulator;
use drqos_sim::rng::Rng;
use drqos_sim::srlg::{SrlgChurn, SrlgEvent};
use drqos_sim::stats::TimeWeighted;
use drqos_sim::time::SimTime;
use drqos_topology::graph::{Graph, LinkId};
use std::fmt;

/// RNG stream tag for deriving shared-risk groups from an experiment seed
/// (ASCII "SRLG"), mirroring the testkit's stream-separation idiom.
pub const SRLG_STREAM: u64 = 0x5352_4C47;

/// Which adversarial world to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioKind {
    /// The paper's calibrated regime: flat Poisson arrivals, memoryless
    /// terminations, independent link failures.
    Baseline,
    /// Seeded burst epochs multiply the arrival rate.
    FlashCrowd,
    /// Piecewise day/night rate modulation, load-neutral on average.
    Diurnal,
    /// Heavy-tailed per-connection holding times.
    ParetoHolding,
    /// Correlated failures over shared-risk link groups.
    SrlgChurn,
}

impl ScenarioKind {
    /// Every kind, in sweep order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Baseline,
        ScenarioKind::FlashCrowd,
        ScenarioKind::Diurnal,
        ScenarioKind::ParetoHolding,
        ScenarioKind::SrlgChurn,
    ];

    /// The canonical name (also the CSV column value and the
    /// `DRQOS_SCENARIO` spelling).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::FlashCrowd => "flash-crowd",
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::ParetoHolding => "pareto",
            ScenarioKind::SrlgChurn => "srlg",
        }
    }

    /// Parses a scenario name (case-insensitive, trimmed; `flashcrowd`
    /// and `flash-crowd` both work). `None` for anything else.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "baseline" | "poisson" => Some(ScenarioKind::Baseline),
            "flash-crowd" | "flashcrowd" | "flash" => Some(ScenarioKind::FlashCrowd),
            "diurnal" => Some(ScenarioKind::Diurnal),
            "pareto" | "pareto-holding" => Some(ScenarioKind::ParetoHolding),
            "srlg" | "srlg-churn" => Some(ScenarioKind::SrlgChurn),
            _ => None,
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Diurnal piecewise rate factors (four equal segments per period). They
/// average exactly 1.0, so the rate integral over any whole number of
/// periods equals the flat-Poisson integral — the scenario reshapes
/// *when* load arrives, not *how much*.
pub const DIURNAL_FACTORS: [f64; 4] = [0.4, 0.8, 1.6, 1.2];

/// A fully-parameterized adversarial scenario. All time-like parameters
/// are expressed in units of the mean inter-arrival time `1/λ`, so one
/// scenario definition behaves comparably across load points.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which world to simulate.
    pub kind: ScenarioKind,
    /// Modulation period for flash-crowd and diurnal scenarios, in
    /// expected arrivals per period.
    pub period_events: f64,
    /// Arrival-rate multiplier inside a flash-crowd burst window.
    pub burst_factor: f64,
    /// Fraction of each period covered by the burst window.
    pub burst_fraction: f64,
    /// Pareto tail index for heavy-tailed holding times (must exceed 1
    /// for a finite mean; ≤ 2 gives infinite variance).
    pub pareto_shape: f64,
    /// Number of shared-risk groups derived from the seed.
    pub srlg_count: usize,
    /// Links per shared-risk group.
    pub srlg_size: usize,
    /// Mean group time-to-failure, in units of `1/λ`.
    pub srlg_mean_up: f64,
    /// Mean group time-to-repair, in units of `1/λ`.
    pub srlg_mean_down: f64,
}

impl Scenario {
    /// The default parameterization of a kind.
    pub fn new(kind: ScenarioKind) -> Self {
        Self {
            kind,
            period_events: 250.0,
            burst_factor: 6.0,
            burst_fraction: 0.12,
            pareto_shape: 1.6,
            srlg_count: 4,
            srlg_size: 3,
            srlg_mean_up: 150.0,
            srlg_mean_down: 40.0,
        }
    }

    /// The paper's calibrated regime.
    pub fn baseline() -> Self {
        Self::new(ScenarioKind::Baseline)
    }

    /// The canonical scenario name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// The modulation period in virtual seconds at arrival rate `lambda`.
    pub fn period_time(&self, lambda: f64) -> f64 {
        self.period_events / lambda
    }

    /// The seeded burst window of period `index` as absolute
    /// `(start, end)` times: the offset within the period is a pure hash
    /// of `(seed, index)`, so burst epochs are deterministic per seed and
    /// need no RNG state.
    pub fn burst_window(&self, seed: u64, lambda: f64, index: u64) -> (f64, f64) {
        let period = self.period_time(lambda);
        let len = self.burst_fraction.clamp(0.0, 1.0) * period;
        let offset = hash_fraction(seed, index) * (period - len);
        let start = index as f64 * period + offset;
        (start, start + len)
    }

    /// The instantaneous arrival rate at virtual time `t` for base rate
    /// `lambda`. Flat for every kind except flash-crowd and diurnal.
    pub fn rate_at(&self, seed: u64, lambda: f64, t: f64) -> f64 {
        match self.kind {
            ScenarioKind::FlashCrowd => {
                let index = (t / self.period_time(lambda)).floor().max(0.0) as u64;
                let (start, end) = self.burst_window(seed, lambda, index);
                if t >= start && t < end {
                    lambda * self.burst_factor
                } else {
                    lambda
                }
            }
            ScenarioKind::Diurnal => {
                let period = self.period_time(lambda);
                let phase = (t / period).rem_euclid(1.0);
                let segment = ((phase * DIURNAL_FACTORS.len() as f64) as usize)
                    .min(DIURNAL_FACTORS.len() - 1);
                lambda * DIURNAL_FACTORS[segment]
            }
            _ => lambda,
        }
    }

    /// An upper bound on [`Scenario::rate_at`] over all `t`, used as the
    /// thinning envelope for non-homogeneous arrival sampling.
    pub fn peak_rate(&self, lambda: f64) -> f64 {
        match self.kind {
            ScenarioKind::FlashCrowd => lambda * self.burst_factor.max(1.0),
            ScenarioKind::Diurnal => lambda * DIURNAL_FACTORS.iter().copied().fold(1.0, f64::max),
            _ => lambda,
        }
    }
}

/// Deterministic hash of `(seed, index)` onto `[0, 1)` (splitmix64
/// finalizer): burst-epoch placement without consuming RNG state.
fn hash_fraction(seed: u64, index: u64) -> f64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives `count` shared-risk groups of `size` links each from the seed:
/// a seeded shuffle of the link ids, chunked. Deterministic per
/// `(graph, count, size, seed)`, so every diff-harness side and every
/// daemon replica derives identical groups.
pub fn seeded_srlgs(graph: &Graph, count: usize, size: usize, seed: u64) -> Vec<Vec<LinkId>> {
    let mut ids: Vec<LinkId> = (0..graph.link_count()).map(LinkId).collect();
    let mut rng = Rng::seed_from_u64(seed ^ SRLG_STREAM);
    rng.shuffle(&mut ids);
    ids.chunks(size.max(1))
        .take(count)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// Registers the seeded groups on `net`; returns how many were
/// registered. Registration cannot fail for groups derived from the
/// network's own graph, but the result is checked anyway so callers in
/// panic-free zones can use this directly.
pub fn register_seeded_srlgs(net: &mut Network, count: usize, size: usize, seed: u64) -> usize {
    let groups = seeded_srlgs(net.graph(), count, size, seed);
    let mut registered = 0;
    for group in groups {
        if net.register_srlg(group).is_ok() {
            registered += 1;
        }
    }
    registered
}

#[derive(Debug)]
enum Ev {
    /// A thinned candidate of the non-homogeneous arrival process.
    Candidate,
    /// Memoryless global termination (non-Pareto scenarios).
    Termination,
    /// Per-connection heavy-tailed holding expiry (Pareto scenario).
    Expire(ConnectionId),
    /// Independent link failure (the baseline γ process).
    Failure,
    /// Scheduled repair of an independently-failed link.
    Repair(LinkId),
    /// The next event of the SRLG churn driver is due.
    Srlg,
}

/// Runs the churn experiment under `scenario`. [`ScenarioKind::Baseline`]
/// delegates to [`run_churn`] verbatim — byte-identical results, by
/// construction. The other kinds share the baseline's warm-up and
/// measurement machinery and replace the event processes:
///
/// * arrivals are drawn by thinning against [`Scenario::peak_rate`], so
///   flash-crowd and diurnal modulation are exact (not stepwise);
/// * the Pareto scenario schedules one expiry per accepted connection
///   (mean holding time `target_connections/λ`, preserving the target
///   population) instead of the memoryless global termination process;
/// * the SRLG scenario fires [`Network::fail_srlg`] /
///   [`Network::repair_srlg`] events from the seeded churn driver on top
///   of the baseline processes.
pub fn run_scenario_churn(
    graph: Graph,
    config: &ExperimentConfig,
    scenario: &Scenario,
) -> (ExperimentReport, Network) {
    if scenario.kind == ScenarioKind::Baseline {
        return run_churn(graph, config);
    }
    let checked = crate::experiment::checked_mode();
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut net = Network::new(graph, config.network.clone());
    let workload = Workload::new(config.qos);
    let n_nodes = net.graph().node_count();
    let mut report = ExperimentReport {
        attempted: 0,
        accepted: 0,
        rejected_primary: 0,
        rejected_backup: 0,
        active_end: 0,
        avg_bandwidth_sim: 0.0,
        avg_bandwidth_end: 0.0,
        avg_path_hops: 0.0,
        failures: 0,
        dropped: 0,
        params: None,
        cache: RouteCacheStats::default(),
    };
    net = crate::experiment::warm_up(net, config, &workload, &mut rng, &mut report);

    // A degenerate configuration (non-positive rates or shapes) runs no
    // churn at all rather than panicking: this path is reachable from the
    // daemon. Estimator contract violations abandon parameter estimation
    // for the run (`params: None`) the same way.
    let mut estimator = ParameterEstimator::new(config.qos.num_levels());
    let mut estimation_ok = true;
    let mut sim: Simulator<Ev> = Simulator::new();

    // Non-homogeneous arrivals by thinning: candidates at the peak rate,
    // each accepted with probability rate(t)/peak.
    let peak = scenario.peak_rate(config.lambda);
    let Ok(candidate_dist) = Exponential::new(peak) else {
        return (report, net);
    };
    sim.schedule(
        SimTime::ZERO + candidate_dist.sample(&mut rng),
        Ev::Candidate,
    );

    // Departures: heavy-tailed per-connection expiry for the Pareto
    // scenario, the baseline's memoryless process otherwise.
    let pareto_holding = if scenario.kind == ScenarioKind::ParetoHolding {
        let mean = config.target_connections.max(1) as f64 / config.lambda;
        let Ok(holding) = Pareto::from_mean(mean, scenario.pareto_shape) else {
            return (report, net);
        };
        Some(holding)
    } else {
        None
    };
    let Ok(termination_dist) = Exponential::new(config.lambda) else {
        return (report, net);
    };
    if let Some(holding) = &pareto_holding {
        let live: Vec<ConnectionId> = net.connections().map(|c| c.id()).collect();
        for id in live {
            sim.schedule(SimTime::ZERO + holding.sample(&mut rng), Ev::Expire(id));
        }
    } else {
        sim.schedule(
            SimTime::ZERO + termination_dist.sample(&mut rng),
            Ev::Termination,
        );
    }

    // Independent failures (γ), as in the baseline.
    let failure_dist = (config.gamma > 0.0)
        .then(|| Exponential::new(config.gamma))
        .and_then(Result::ok);
    if let Some(fd) = &failure_dist {
        sim.schedule(SimTime::ZERO + fd.sample(&mut rng), Ev::Failure);
    }
    let Ok(repair_dist) = Exponential::from_mean(config.mean_repair.max(f64::MIN_POSITIVE)) else {
        return (report, net);
    };

    // Correlated failures: seeded groups + the drqos-sim churn driver.
    let mut srlg_churn = if scenario.kind == ScenarioKind::SrlgChurn {
        let registered = register_seeded_srlgs(
            &mut net,
            scenario.srlg_count,
            scenario.srlg_size,
            config.seed,
        );
        let Ok(churn) = SrlgChurn::new(
            registered.max(1),
            scenario.srlg_mean_up / config.lambda,
            scenario.srlg_mean_down / config.lambda,
            config.seed ^ SRLG_STREAM,
        ) else {
            return (report, net);
        };
        Some(churn)
    } else {
        None
    };
    if let Some(churn) = &srlg_churn {
        if let Some(t) = churn.peek_time() {
            sim.schedule(SimTime::ZERO + t, Ev::Srlg);
        }
    }

    let mut total_bw_tracker =
        TimeWeighted::new(SimTime::ZERO, net.total_primary_bandwidth().as_kbps_f64());
    let mut count_tracker = TimeWeighted::new(SimTime::ZERO, net.len() as f64);
    let mut churn_done = 0usize;
    while churn_done < config.churn_events {
        let Some((now, event)) = sim.pop() else { break };
        match event {
            Ev::Candidate => {
                let keep =
                    rng.chance(scenario.rate_at(config.seed, config.lambda, now.as_secs()) / peak);
                if keep {
                    let req = workload.request(&mut rng, n_nodes);
                    report.attempted += 1;
                    match net.plan_establish(req.src, req.dst, req.qos) {
                        Ok(plan) => {
                            let (existing, direct, indirect) =
                                crate::experiment::observe_arrival(&net, &plan);
                            let id = net.commit_establish(plan);
                            let direct_t = crate::experiment::transitions_after(&net, &direct);
                            let indirect_t = crate::experiment::transitions_after(&net, &indirect);
                            estimation_ok &= estimator
                                .record_arrival(existing, &direct_t, &indirect_t)
                                .is_ok();
                            report.accepted += 1;
                            if let Some(holding) = &pareto_holding {
                                sim.schedule_in(holding.sample(&mut rng), Ev::Expire(id));
                            }
                        }
                        Err(e) => crate::experiment::classify_rejection(&mut report, &e),
                    }
                    churn_done += 1;
                }
                sim.schedule_in(candidate_dist.sample(&mut rng), Ev::Candidate);
            }
            Ev::Termination => {
                let ids: Vec<ConnectionId> = net.connections().map(|c| c.id()).collect();
                if let Some(&victim) = rng.choose(&ids) {
                    estimation_ok &=
                        crate::experiment::release_measured(&mut net, &mut estimator, victim);
                }
                sim.schedule_in(termination_dist.sample(&mut rng), Ev::Termination);
                churn_done += 1;
            }
            Ev::Expire(id) => {
                // The connection may have been dropped by a failure since
                // its expiry was scheduled; an expired ghost is a no-op
                // and does not count as a churn event.
                if net.connection(id).is_some() {
                    estimation_ok &=
                        crate::experiment::release_measured(&mut net, &mut estimator, id);
                    churn_done += 1;
                }
            }
            Ev::Failure => {
                for _ in 0..config.failure_burst.max(1) {
                    let up: Vec<LinkId> = net.up_links().collect();
                    let Some(&link) = rng.choose(&up) else { break };
                    let all_before: Vec<(ConnectionId, usize)> =
                        net.connections().map(|c| (c.id(), c.level())).collect();
                    let existing = all_before.len();
                    if net.fail_link(link).is_err() {
                        break; // raced another failure source; stop the burst
                    }
                    let affected_t = crate::experiment::transitions_after(&net, &all_before);
                    estimation_ok &= estimator.record_failure(existing, &affected_t).is_ok();
                    report.failures += 1;
                    sim.schedule_in(repair_dist.sample(&mut rng), Ev::Repair(link));
                }
                if let Some(fd) = &failure_dist {
                    sim.schedule_in(fd.sample(&mut rng), Ev::Failure);
                }
                churn_done += 1;
            }
            Ev::Repair(link) => {
                let _ = net.repair_link(link);
            }
            Ev::Srlg => {
                if let Some(churn) = &mut srlg_churn {
                    if let Some((_, ev)) = churn.next_event() {
                        match ev {
                            SrlgEvent::Fail(group) => {
                                let all_before: Vec<(ConnectionId, usize)> =
                                    net.connections().map(|c| (c.id(), c.level())).collect();
                                let existing = all_before.len();
                                // Already-down members (overlap with other
                                // failure sources) make this a no-op.
                                if let Ok(reports) = net.fail_srlg(group) {
                                    let affected_t =
                                        crate::experiment::transitions_after(&net, &all_before);
                                    estimation_ok &=
                                        estimator.record_failure(existing, &affected_t).is_ok();
                                    report.failures += reports.len() as u64;
                                    churn_done += 1;
                                }
                            }
                            SrlgEvent::Repair(group) => {
                                let _ = net.repair_srlg(group);
                            }
                        }
                    }
                    if let Some(t) = churn.peek_time() {
                        sim.schedule(SimTime::ZERO + t, Ev::Srlg);
                    }
                }
            }
        }
        if checked {
            net.validate();
        }
        total_bw_tracker.update(now, net.total_primary_bandwidth().as_kbps_f64());
        count_tracker.update(now, net.len() as f64);
        estimation_ok &= estimator
            .record_occupancy(net.connections().map(|c| c.level()))
            .is_ok();
    }

    let end = sim.now();
    let channel_time = count_tracker.integral_until(end);
    report.avg_bandwidth_sim = if channel_time > 0.0 {
        total_bw_tracker.integral_until(end) / channel_time
    } else {
        0.0
    };
    report.avg_bandwidth_end = net.average_bandwidth().unwrap_or(0.0);
    report.avg_path_hops = net.average_path_hops().unwrap_or(0.0);
    report.active_end = net.len();
    report.dropped = net.dropped_total();
    report.params = estimation_ok.then(|| estimator.finalize().ok()).flatten();
    report.cache = net.route_cache_stats();
    (report, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::ElasticQos;
    use drqos_topology::waxman;
    use std::collections::BTreeSet;

    fn small_graph(seed: u64) -> Graph {
        waxman::paper_waxman(30)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap()
    }

    fn quick_config(target: usize) -> ExperimentConfig {
        ExperimentConfig {
            churn_events: 300,
            ..ExperimentConfig::paper_default(target, 100)
        }
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
            assert_eq!(ScenarioKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(
            ScenarioKind::parse("flashcrowd"),
            Some(ScenarioKind::FlashCrowd)
        );
        assert_eq!(ScenarioKind::parse(" srlg "), Some(ScenarioKind::SrlgChurn));
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn baseline_delegates_byte_identically_to_run_churn() {
        let cfg = quick_config(40);
        let direct = run_churn(small_graph(2), &cfg).0;
        let via_scenario = run_scenario_churn(small_graph(2), &cfg, &Scenario::baseline()).0;
        assert_eq!(direct, via_scenario);
    }

    #[test]
    fn burst_windows_are_deterministic_per_seed() {
        let s = Scenario::new(ScenarioKind::FlashCrowd);
        let a: Vec<(f64, f64)> = (0..32).map(|i| s.burst_window(7, 0.001, i)).collect();
        let b: Vec<(f64, f64)> = (0..32).map(|i| s.burst_window(7, 0.001, i)).collect();
        assert_eq!(a, b);
        let c: Vec<(f64, f64)> = (0..32).map(|i| s.burst_window(8, 0.001, i)).collect();
        assert_ne!(a, c, "different seeds must place bursts differently");
        let period = s.period_time(0.001);
        for (i, &(start, end)) in a.iter().enumerate() {
            assert!(start >= i as f64 * period && end <= (i + 1) as f64 * period);
            assert!((end - start - s.burst_fraction * period).abs() < 1e-6);
        }
    }

    #[test]
    fn flash_crowd_rate_is_elevated_exactly_inside_the_window() {
        let s = Scenario::new(ScenarioKind::FlashCrowd);
        let (lambda, seed) = (0.001, 11);
        let (start, end) = s.burst_window(seed, lambda, 3);
        let mid = (start + end) / 2.0;
        assert_eq!(s.rate_at(seed, lambda, mid), lambda * s.burst_factor);
        assert_eq!(s.rate_at(seed, lambda, end + 1.0), lambda);
        assert!(s.peak_rate(lambda) >= s.rate_at(seed, lambda, mid));
    }

    #[test]
    fn diurnal_factors_are_load_neutral() {
        let mean: f64 = DIURNAL_FACTORS.iter().sum::<f64>() / DIURNAL_FACTORS.len() as f64;
        assert!(
            (mean - 1.0).abs() < 1e-12,
            "factors must average 1, got {mean}"
        );
        let s = Scenario::new(ScenarioKind::Diurnal);
        // Piecewise segments hit each factor across one period.
        let period = s.period_time(0.001);
        for (i, f) in DIURNAL_FACTORS.iter().enumerate() {
            let t = (i as f64 + 0.5) / DIURNAL_FACTORS.len() as f64 * period;
            assert_eq!(s.rate_at(0, 0.001, t), 0.001 * f);
        }
    }

    #[test]
    fn seeded_srlgs_are_deterministic_and_disjoint() {
        let g = small_graph(5);
        let a = seeded_srlgs(&g, 4, 3, 2001);
        let b = seeded_srlgs(&g, 4, 3, 2001);
        assert_eq!(a, b);
        assert_ne!(a, seeded_srlgs(&g, 4, 3, 2002));
        assert_eq!(a.len(), 4);
        let mut seen = BTreeSet::new();
        for group in &a {
            assert_eq!(group.len(), 3);
            for l in group {
                assert!(seen.insert(*l), "groups must not overlap");
                assert!(l.index() < g.link_count());
            }
        }
    }

    #[test]
    fn register_seeded_srlgs_registers_on_the_network() {
        let mut net = Network::new(small_graph(6), crate::network::NetworkConfig::default());
        let n = register_seeded_srlgs(&mut net, 3, 2, 99);
        assert_eq!(n, 3);
        assert_eq!(net.srlg_count(), 3);
    }

    #[test]
    fn every_scenario_runs_and_conserves_accounting() {
        for kind in ScenarioKind::ALL {
            let (report, net) =
                run_scenario_churn(small_graph(3), &quick_config(50), &Scenario::new(kind));
            assert_eq!(
                report.attempted,
                report.accepted + report.rejected_primary + report.rejected_backup,
                "{kind}"
            );
            assert!(report.accepted > 0, "{kind}");
            assert!(report.avg_bandwidth_sim >= 100.0, "{kind}");
            assert!(report.avg_bandwidth_sim <= 500.0, "{kind}");
            net.validate();
        }
    }

    #[test]
    fn scenarios_are_deterministic_given_seed() {
        for kind in [
            ScenarioKind::FlashCrowd,
            ScenarioKind::ParetoHolding,
            ScenarioKind::SrlgChurn,
        ] {
            let s = Scenario::new(kind);
            let a = run_scenario_churn(small_graph(4), &quick_config(40), &s).0;
            let b = run_scenario_churn(small_graph(4), &quick_config(40), &s).0;
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn srlg_scenario_injects_correlated_failures() {
        let mut cfg = quick_config(60);
        cfg.churn_events = 600;
        let (report, net) = run_scenario_churn(
            small_graph(7),
            &cfg,
            &Scenario::new(ScenarioKind::SrlgChurn),
        );
        assert!(
            report.failures > 1,
            "SRLG churn should fail multiple links, got {}",
            report.failures
        );
        assert!(net.srlg_count() > 0);
        net.validate();
    }

    #[test]
    fn pareto_mean_holding_matches_analytic_mean() {
        let holding = Pareto::from_mean(1000.0, 1.8).unwrap();
        let mut rng = Rng::seed_from_u64(17);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| holding.sample(&mut rng)).sum::<f64>() / n as f64;
        // Heavy tail ⇒ slow convergence: generous 15% band.
        assert!(
            (mean - 1000.0).abs() / 1000.0 < 0.15,
            "sample mean {mean} too far from 1000"
        );
    }

    #[test]
    fn flash_crowd_depresses_bandwidth_versus_baseline() {
        // The burst epochs concentrate arrivals, so contention during the
        // bursts should pull the time-weighted average at least slightly
        // below (or equal to) the flat-Poisson run at the same load.
        let cfg = quick_config(120);
        let base = run_scenario_churn(small_graph(9), &cfg, &Scenario::baseline()).0;
        let flash = run_scenario_churn(
            small_graph(9),
            &cfg,
            &Scenario::new(ScenarioKind::FlashCrowd),
        )
        .0;
        assert!(
            flash.avg_bandwidth_sim <= base.avg_bandwidth_sim + 20.0,
            "flash crowd should not beat baseline meaningfully: {} vs {}",
            flash.avg_bandwidth_sim,
            base.avg_bandwidth_sim
        );
    }

    #[test]
    fn scenario_uses_qos_template() {
        let mut cfg = quick_config(30);
        cfg.qos = ElasticQos::paper_video(50);
        let (report, _) =
            run_scenario_churn(small_graph(8), &cfg, &Scenario::new(ScenarioKind::Diurnal));
        assert!(report.accepted > 0);
    }
}
