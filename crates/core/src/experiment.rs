//! The churn experiment harness: the paper's "detailed simulation".
//!
//! An experiment (Section 4):
//!
//! 1. loads the network by *attempting* a target number of DR-connections
//!    ("we measured the probabilities P_f and P_s after setting up a
//!    certain number of DR-connections");
//! 2. churns — Poisson arrivals and terminations at equal rates λ = μ (and
//!    optionally link failures at rate γ with exponential repair) — "while
//!    maintaining the number of DR-connections in the network close to the
//!    initial number";
//! 3. measures, per event, the chaining probabilities and level transitions
//!    feeding the Markov model, plus the time-weighted average bandwidth
//!    that serves as the simulation ground truth.

use crate::channel::ConnectionId;
use crate::measure::{LevelTransition, MeasuredParams, ParameterEstimator, RouteCacheStats};
use crate::network::{Network, NetworkConfig};
use crate::qos::ElasticQos;
use crate::workload::Workload;
use drqos_sim::dist::{Distribution, Exponential};
use drqos_sim::engine::Simulator;
use drqos_sim::rng::Rng;
use drqos_sim::stats::TimeWeighted;
use drqos_sim::time::SimTime;
use drqos_topology::graph::{Graph, LinkId};
use std::collections::BTreeSet;

/// Configuration of a churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// QoS template for every request.
    pub qos: ElasticQos,
    /// Number of connection requests attempted during warm-up (the paper's
    /// "number of DR-connections"; in congested networks many are
    /// rejected).
    pub target_connections: usize,
    /// Number of churn events to simulate after warm-up.
    pub churn_events: usize,
    /// DR-connection request arrival rate λ (= termination rate μ).
    pub lambda: f64,
    /// Link failure rate γ (network-wide failure event rate; 0 disables
    /// failures).
    pub gamma: f64,
    /// Mean link repair time (seconds of virtual time).
    pub mean_repair: f64,
    /// Links failed per failure event (1 = the paper's single-failure
    /// model; >1 simulates correlated failure bursts such as a conduit
    /// cut taking several fibres down at once).
    pub failure_burst: usize,
    /// Network manager configuration.
    pub network: NetworkConfig,
    /// Admission shards for the warm-up phase: `1` runs the monolithic
    /// per-request path; `> 1` batches warm-up arrivals into waves
    /// through [`crate::ShardedNetwork`]. Results are byte-identical
    /// either way (the shard-differential fuzzer's guarantee) except for
    /// the route-cache counters, which waves mostly bypass.
    pub shards: usize,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's evaluation defaults: λ = μ = 0.001, γ = 0, elastic
    /// 100–500 Kbps QoS with the given increment, 10 Mbps links.
    pub fn paper_default(target_connections: usize, increment_kbps: u64) -> Self {
        Self {
            qos: ElasticQos::paper_video(increment_kbps),
            target_connections,
            churn_events: 2_000,
            lambda: 0.001,
            gamma: 0.0,
            mean_repair: 1_000.0,
            failure_burst: 1,
            network: NetworkConfig::default(),
            shards: crate::env::shards(),
            seed: 2001,
        }
    }
}

/// Outcome of a churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Requests attempted (warm-up + churn arrivals).
    pub attempted: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Rejections for lack of a primary route.
    pub rejected_primary: u64,
    /// Rejections for lack of a backup route.
    pub rejected_backup: u64,
    /// Connections active when the run ended.
    pub active_end: usize,
    /// Time-weighted mean bandwidth per primary channel over the churn
    /// window (Kbps) — the paper's simulation metric.
    pub avg_bandwidth_sim: f64,
    /// Mean bandwidth per channel at the end of the run (Kbps).
    pub avg_bandwidth_end: f64,
    /// Mean primary-path hop count at the end of the run.
    pub avg_path_hops: f64,
    /// Link failures injected.
    pub failures: u64,
    /// Connections dropped by failures.
    pub dropped: u64,
    /// The measured Markov-model parameters (`None` when no churn arrivals
    /// were recorded).
    pub params: Option<MeasuredParams>,
    /// Admission route-cache counters over the whole run (all zero when
    /// the cache is disabled). Deliberately *not* written to the CSV
    /// observable columns: the cache must not change experiment results,
    /// only how fast they are computed.
    pub cache: RouteCacheStats,
}

#[derive(Debug)]
enum Event {
    Arrival,
    Termination,
    Failure,
    Repair(LinkId),
}

/// Warm-up wave width when `shards > 1` — the daemon's batch size.
const WARMUP_WAVE: usize = 16;

/// Whether churn experiments validate the full invariant set after every
/// event. The `DRQOS_CHECKED` environment variable overrides (`1`/`true`/
/// `on`/`yes` to force on, anything else to force off); without it,
/// checking follows `cfg!(debug_assertions)`, so `cargo test` runs fully
/// checked and `--release` experiments stay fast.
pub fn checked_mode() -> bool {
    crate::env::checked().unwrap_or(cfg!(debug_assertions))
}

/// Runs a churn experiment on `graph`.
///
/// Deterministic for a given `(graph, config)`; the graph is moved in, and
/// the final network state is returned alongside the report for further
/// inspection.
pub fn run_churn(graph: Graph, config: &ExperimentConfig) -> (ExperimentReport, Network) {
    let checked = checked_mode();
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut net = Network::new(graph, config.network.clone());
    let workload = Workload::new(config.qos);
    let n_nodes = net.graph().node_count();
    let mut report = ExperimentReport {
        attempted: 0,
        accepted: 0,
        rejected_primary: 0,
        rejected_backup: 0,
        active_end: 0,
        avg_bandwidth_sim: 0.0,
        avg_bandwidth_end: 0.0,
        avg_path_hops: 0.0,
        failures: 0,
        dropped: 0,
        params: None,
        cache: RouteCacheStats::default(),
    };

    net = warm_up(net, config, &workload, &mut rng, &mut report);

    // ---- Churn. ----
    // A degenerate configuration (non-positive rates) runs no churn at
    // all rather than panicking: this path is reachable from the daemon.
    let mut estimator = ParameterEstimator::new(config.qos.num_levels());
    // Estimator updates are contracts ("levels in range by construction");
    // a violated contract abandons parameter estimation for the run
    // (`params: None`) instead of panicking the caller.
    let mut estimation_ok = true;
    let Ok(arrival_dist) = Exponential::new(config.lambda) else {
        return (report, net);
    };
    let termination_dist = arrival_dist; // steady state: λ = μ
    let mut sim: Simulator<Event> = Simulator::new();
    sim.schedule(
        SimTime::ZERO + arrival_dist.sample(&mut rng),
        Event::Arrival,
    );
    sim.schedule(
        SimTime::ZERO + termination_dist.sample(&mut rng),
        Event::Termination,
    );
    let failure_dist = (config.gamma > 0.0)
        .then(|| Exponential::new(config.gamma))
        .and_then(Result::ok);
    if let Some(fd) = &failure_dist {
        sim.schedule(SimTime::ZERO + fd.sample(&mut rng), Event::Failure);
    }
    let Ok(repair_dist) = Exponential::from_mean(config.mean_repair.max(f64::MIN_POSITIVE)) else {
        return (report, net);
    };

    // Average bandwidth per channel over the churn window, weighted by
    // channel-time: ∫ total_bandwidth dt / ∫ channel_count dt. (Weighting
    // by wall time instead would let empty-network stretches drag the
    // average below B_min at light load.)
    let mut total_bw_tracker =
        TimeWeighted::new(SimTime::ZERO, net.total_primary_bandwidth().as_kbps_f64());
    let mut count_tracker = TimeWeighted::new(SimTime::ZERO, net.len() as f64);
    let mut churn_done = 0usize;
    while churn_done < config.churn_events {
        let Some((now, event)) = sim.pop() else { break };
        match event {
            Event::Arrival => {
                let req = workload.request(&mut rng, n_nodes);
                report.attempted += 1;
                match net.plan_establish(req.src, req.dst, req.qos) {
                    Ok(plan) => {
                        let (existing, direct, indirect) = observe_arrival(&net, &plan);
                        net.commit_establish(plan);
                        let direct_t = transitions_after(&net, &direct);
                        let indirect_t = transitions_after(&net, &indirect);
                        estimation_ok &= estimator
                            .record_arrival(existing, &direct_t, &indirect_t)
                            .is_ok();
                        report.accepted += 1;
                    }
                    Err(e) => classify_rejection(&mut report, &e),
                }
                sim.schedule_in(arrival_dist.sample(&mut rng), Event::Arrival);
                churn_done += 1;
            }
            Event::Termination => {
                let ids: Vec<ConnectionId> = net.connections().map(|c| c.id()).collect();
                if let Some(&victim) = rng.choose(&ids) {
                    estimation_ok &= release_measured(&mut net, &mut estimator, victim);
                }
                sim.schedule_in(termination_dist.sample(&mut rng), Event::Termination);
                churn_done += 1;
            }
            Event::Failure => {
                for _ in 0..config.failure_burst.max(1) {
                    let up: Vec<LinkId> = net.up_links().collect();
                    let Some(&link) = rng.choose(&up) else { break };
                    // Measure the failure's effect over the *whole*
                    // population: a failure both forces retreats (channels
                    // sharing links with activated backups) and lets their
                    // neighbours grow in the same re-distribution.
                    // Conditioning only on the retreat set would record the
                    // losers and miss the gainers, biasing the model's
                    // failure term downward (see
                    // `ParameterEstimator::record_failure`).
                    let all_before: Vec<(ConnectionId, usize)> =
                        net.connections().map(|c| (c.id(), c.level())).collect();
                    let existing = all_before.len();
                    if net.fail_link(link).is_err() {
                        break; // raced another failure source; stop the burst
                    }
                    let affected_t = transitions_after(&net, &all_before);
                    estimation_ok &= estimator.record_failure(existing, &affected_t).is_ok();
                    report.failures += 1;
                    sim.schedule_in(repair_dist.sample(&mut rng), Event::Repair(link));
                }
                if let Some(fd) = &failure_dist {
                    sim.schedule_in(fd.sample(&mut rng), Event::Failure);
                }
                churn_done += 1;
            }
            Event::Repair(link) => {
                // Ignore the error if something else repaired it already.
                let _ = net.repair_link(link);
            }
        }
        if checked {
            net.validate();
        }
        total_bw_tracker.update(now, net.total_primary_bandwidth().as_kbps_f64());
        count_tracker.update(now, net.len() as f64);
        estimation_ok &= estimator
            .record_occupancy(net.connections().map(|c| c.level()))
            .is_ok();
    }

    let end = sim.now();
    let channel_time = count_tracker.integral_until(end);
    report.avg_bandwidth_sim = if channel_time > 0.0 {
        total_bw_tracker.integral_until(end) / channel_time
    } else {
        0.0
    };
    report.avg_bandwidth_end = net.average_bandwidth().unwrap_or(0.0);
    report.avg_path_hops = net.average_path_hops().unwrap_or(0.0);
    report.active_end = net.len();
    report.dropped = net.dropped_total();
    report.params = estimation_ok.then(|| estimator.finalize().ok()).flatten();
    report.cache = net.route_cache_stats();
    (report, net)
}

/// Releases `victim` while recording the termination's level transitions.
/// Tolerant of a stale id (a no-op) and of estimator contract violations:
/// the returned flag is `false` when an estimator update failed, which
/// abandons parameter estimation for the run instead of panicking — this
/// path is reachable from the daemon zone.
pub(crate) fn release_measured(
    net: &mut Network,
    estimator: &mut ParameterEstimator,
    victim: ConnectionId,
) -> bool {
    let mut touched: BTreeSet<LinkId> = BTreeSet::new();
    {
        let Some(conn) = net.connection(victim) else {
            return true;
        };
        touched.extend(conn.primary().links().iter().copied());
        for b in conn.backups() {
            touched.extend(b.links().iter().copied());
        }
    }
    let mut direct = snapshot_levels(net, touched.iter().copied());
    direct.retain(|(id, _)| *id != victim);
    if net.release(victim).is_err() {
        return true;
    }
    let direct_t = transitions_after(net, &direct);
    estimator.record_termination(&direct_t).is_ok()
}

/// Warm-up: attempt the target number of connections.
///
/// The request stream is drawn identically on both paths (the workload
/// only consumes the RNG; admission does not), and a wave replays
/// byte-identically to serial establishes in the same order — the
/// shard-differential fuzzer's guarantee — so `shards` changes how the
/// warm-up is computed, never what it computes. Shared with the scenario
/// engine (`crate::scenario`), which swaps only the churn processes.
pub(crate) fn warm_up(
    mut net: Network,
    config: &ExperimentConfig,
    workload: &Workload,
    rng: &mut Rng,
    report: &mut ExperimentReport,
) -> Network {
    let n_nodes = net.graph().node_count();
    if config.shards > 1 {
        let requests: Vec<crate::network::EstablishRequest> = (0..config.target_connections)
            .map(|_| {
                let req = workload.request(rng, n_nodes);
                crate::network::EstablishRequest {
                    src: req.src,
                    dst: req.dst,
                    qos: req.qos,
                }
            })
            .collect();
        let mut sharded = crate::ShardedNetwork::new(net, config.shards);
        for chunk in requests.chunks(WARMUP_WAVE) {
            for result in sharded.establish_wave(chunk) {
                report.attempted += 1;
                match result {
                    Ok(_) => report.accepted += 1,
                    Err(e) => classify_rejection(report, &e),
                }
            }
        }
        net = sharded.into_inner();
    } else {
        for _ in 0..config.target_connections {
            let req = workload.request(rng, n_nodes);
            report.attempted += 1;
            match net.establish(req.src, req.dst, req.qos) {
                Ok(_) => report.accepted += 1,
                Err(e) => classify_rejection(report, &e),
            }
        }
    }
    net
}

pub(crate) fn classify_rejection(report: &mut ExperimentReport, e: &crate::error::AdmissionError) {
    match e {
        crate::error::AdmissionError::NoBackupRoute => report.rejected_backup += 1,
        _ => report.rejected_primary += 1,
    }
}

/// Levels of all primaries crossing `links`, as `(id, level)` pairs.
pub(crate) fn snapshot_levels(
    net: &Network,
    links: impl IntoIterator<Item = LinkId>,
) -> Vec<(ConnectionId, usize)> {
    net.primaries_sharing(links)
        .into_iter()
        .filter_map(|id| net.connection(id).map(|c| (id, c.level())))
        .collect()
}

/// `(id, level)` pairs captured before an event.
type LevelSnapshot = Vec<(ConnectionId, usize)>;

/// Classifies the network before committing an arrival plan: returns
/// (existing channel count, direct `(id, level)` set, indirect set).
pub(crate) fn observe_arrival(
    net: &Network,
    plan: &crate::network::EstablishPlan,
) -> (usize, LevelSnapshot, LevelSnapshot) {
    let mut new_links: BTreeSet<LinkId> = plan.primary().links().iter().copied().collect();
    for b in plan.backups() {
        new_links.extend(b.links().iter().copied());
    }
    let direct_ids = net.primaries_sharing(new_links.iter().copied());
    // Indirectly chained: share a link with a directly-chained channel but
    // not with the new connection itself.
    let direct_links: BTreeSet<LinkId> = direct_ids
        .iter()
        .filter_map(|id| net.connection(*id))
        .flat_map(|c| c.primary().links().iter().copied())
        .collect();
    let indirect_ids: BTreeSet<ConnectionId> = net
        .primaries_sharing(direct_links.iter().copied())
        .difference(&direct_ids)
        .copied()
        .collect();
    let levels = |ids: &BTreeSet<ConnectionId>| {
        ids.iter()
            .filter_map(|&id| net.connection(id).map(|c| (id, c.level())))
            .collect::<Vec<_>>()
    };
    (net.len(), levels(&direct_ids), levels(&indirect_ids))
}

/// Re-reads the levels of previously snapshotted channels, skipping any that
/// no longer exist (dropped by a failure).
pub(crate) fn transitions_after(
    net: &Network,
    before: &[(ConnectionId, usize)],
) -> Vec<LevelTransition> {
    before
        .iter()
        .filter_map(|&(id, old)| net.connection(id).map(|c| (old, c.level())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_sim::rng::Rng;
    use drqos_topology::waxman;

    fn small_graph(seed: u64) -> Graph {
        waxman::paper_waxman(30)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap()
    }

    fn quick_config(target: usize) -> ExperimentConfig {
        ExperimentConfig {
            churn_events: 300,
            ..ExperimentConfig::paper_default(target, 100)
        }
    }

    #[test]
    fn runs_and_reports() {
        let (report, net) = run_churn(small_graph(1), &quick_config(50));
        assert_eq!(
            report.attempted,
            report.accepted + report.rejected_primary + report.rejected_backup
        );
        assert!(report.accepted > 0);
        assert!(report.avg_bandwidth_sim >= 100.0);
        assert!(report.avg_bandwidth_sim <= 500.0);
        assert!(report.params.is_some());
        net.validate();
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_churn(small_graph(2), &quick_config(40)).0;
        let b = run_churn(small_graph(2), &quick_config(40)).0;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_config(40);
        let a = run_churn(small_graph(3), &cfg).0;
        cfg.seed += 1;
        let b = run_churn(small_graph(3), &cfg).0;
        assert_ne!(a, b);
    }

    #[test]
    fn light_load_sits_at_maximum() {
        let (report, _) = run_churn(small_graph(4), &quick_config(3));
        assert!(
            report.avg_bandwidth_sim > 450.0,
            "uncontended channels should be near 500, got {}",
            report.avg_bandwidth_sim
        );
    }

    #[test]
    fn heavy_load_pushes_toward_minimum() {
        let light = run_churn(small_graph(5), &quick_config(3)).0;
        let heavy = run_churn(small_graph(5), &quick_config(600)).0;
        assert!(
            heavy.avg_bandwidth_sim < light.avg_bandwidth_sim,
            "load should depress the average: {} vs {}",
            heavy.avg_bandwidth_sim,
            light.avg_bandwidth_sim
        );
    }

    #[test]
    fn measured_params_are_consistent() {
        let (report, _) = run_churn(small_graph(6), &quick_config(80));
        let params = report.params.expect("churn recorded arrivals");
        assert!(params.is_consistent());
        assert!(params.pf > 0.0, "some channels must overlap");
        assert_eq!(params.n_states, 5);
    }

    #[test]
    fn failures_are_injected_and_survived() {
        let mut cfg = quick_config(60);
        cfg.gamma = 0.002; // comparable to λ: failures will happen
        cfg.mean_repair = 200.0;
        let (report, net) = run_churn(small_graph(7), &cfg);
        assert!(report.failures > 0, "expected failures at γ = 2λ");
        net.validate();
    }

    #[test]
    fn failure_bursts_multiply_failures() {
        let mut single = quick_config(60);
        single.gamma = 0.002;
        single.mean_repair = 200.0;
        let mut burst = single.clone();
        burst.failure_burst = 3;
        let (r1, _) = run_churn(small_graph(9), &single);
        let (r3, n3) = run_churn(small_graph(9), &burst);
        assert!(r1.failures > 0);
        assert!(
            r3.failures > r1.failures,
            "bursts should fail more links: {} vs {}",
            r3.failures,
            r1.failures
        );
        n3.validate();
    }

    #[test]
    fn route_cache_does_not_change_results() {
        let mut on = quick_config(60);
        on.gamma = 0.001; // exercise failure-path eviction too
        on.mean_repair = 300.0;
        on.network.route_cache = true;
        let mut off = on.clone();
        off.network.route_cache = false;
        let (mut report_on, _) = run_churn(small_graph(10), &on);
        let (report_off, _) = run_churn(small_graph(10), &off);
        assert!(report_on.cache.lookups() > 0, "cache must be exercised");
        assert_eq!(report_off.cache, RouteCacheStats::default());
        // Every observable except the counters themselves is identical.
        report_on.cache = report_off.cache;
        assert_eq!(report_on, report_off);
    }

    #[test]
    fn sharding_does_not_change_results() {
        // The sharded warm-up must be invisible in every observable —
        // the same guarantee the route cache makes, proven here the same
        // way. Only the cache counters may differ (waves plan outside
        // the cache), and those are deliberately not observables.
        let mut mono = quick_config(60);
        mono.network.route_cache = true;
        mono.shards = 1;
        let mut sharded = mono.clone();
        sharded.shards = 4;
        let (report_mono, net_mono) = run_churn(small_graph(11), &mono);
        let (mut report_sharded, net_sharded) = run_churn(small_graph(11), &sharded);
        assert!(report_mono.accepted > 0);
        assert_eq!(
            crate::snapshot::NetworkSnapshot::capture(&net_mono),
            crate::snapshot::NetworkSnapshot::capture(&net_sharded)
        );
        report_sharded.cache = report_mono.cache;
        assert_eq!(report_mono, report_sharded);
    }

    #[test]
    fn invariants_hold_after_long_churn() {
        let mut cfg = quick_config(100);
        cfg.churn_events = 800;
        cfg.gamma = 0.0005;
        let (_, net) = run_churn(small_graph(8), &cfg);
        net.validate();
    }
}
