//! Route selection for DR-connections.
//!
//! The paper's network floods connection requests within a bounded region;
//! the destination confirms the first-arriving copy (fewest hops, best
//! bandwidth allowance on ties) as the primary route and a later,
//! link-disjoint copy as the backup route (Section 3.1).
//!
//! Simulating per-message flood traffic would add nothing to the paper's
//! evaluation (which measures bandwidth, not signalling), so
//! [`flood_path`] emulates the *outcome* of bounded flooding: a
//! fewest-hops search that maximizes the bottleneck bandwidth allowance
//! among equal-hop routes, truncated at the flooding bound. Two
//! alternatives are provided for comparison benches:
//!
//! * [`RouterKind::Shortest`] — plain BFS, no allowance tie-break (a
//!   cheaper, less informed baseline);
//! * [`RouterKind::SuurballePair`] — jointly optimal link-disjoint pair via
//!   Suurballe's algorithm, falling back to two-phase search when the
//!   backup's multiplexed reservation does not fit on the optimal pair.

use crate::qos::Bandwidth;
use drqos_topology::graph::{Graph, LinkId, NodeId};
use drqos_topology::paths::{bfs_path_with, BfsScratch, LinkFilter, Path};
use std::collections::HashSet;

/// The route-selection strategy of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Emulated bounded flooding (the paper's scheme). `hop_slack` is how
    /// many hops beyond the primary's length the flood region extends; a
    /// backup is only found if a disjoint route exists within
    /// `primary_hops + hop_slack`.
    BoundedFlooding {
        /// Extra hops allowed for the backup beyond the primary's length.
        hop_slack: usize,
    },
    /// Fewest-hops primary, fewest-hops disjoint backup, no bandwidth
    /// tie-break and no flooding bound.
    Shortest,
    /// Minimum-total-hops link-disjoint pair (Suurballe), with two-phase
    /// fallback when backup reservations do not fit on the optimal pair.
    SuurballePair,
}

impl Default for RouterKind {
    fn default() -> Self {
        RouterKind::BoundedFlooding { hop_slack: 2 }
    }
}

/// How strictly a backup must avoid its primary's links.
///
/// The paper's dependability QoS asks for a backup "which may be totally
/// link-disjoint or *maximally* link-disjoint from its corresponding
/// primary channel, if there does not exist any link-disjoint backup path
/// between the source and destination" (footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackupDisjointness {
    /// Reject the connection when no fully link-disjoint backup exists.
    Strict,
    /// Fall back to the feasible backup sharing the fewest links with the
    /// primary (a backup identical to the primary is still rejected — it
    /// would add no dependability at all).
    #[default]
    MaximallyDisjoint,
}

/// Reusable buffers for [`flood_path_with`].
///
/// A flood search needs four per-node tables plus two frontier vectors;
/// allocating them on every admission attempt dominated the cost of short
/// searches. The tables are generation-stamped (`stamp[v] == gen` marks
/// the entry as belonging to the current search), so beginning a search is
/// O(1). [`FloodScratch::invalidate`] drops everything; callers caching a
/// scratch across topology changes must call it when the link set changes
/// (the `Network` topology epoch automates this).
#[derive(Debug, Clone, Default)]
pub struct FloodScratch {
    gen: u64,
    stamp: Vec<u64>,
    hops: Vec<usize>,
    bottleneck: Vec<Bandwidth>,
    parent: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl FloodScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached search state (call after any topology change).
    pub fn invalidate(&mut self) {
        self.gen = 0;
        self.stamp.clear();
        self.hops.clear();
        self.bottleneck.clear();
        self.parent.clear();
        self.frontier.clear();
        self.next.clear();
    }

    /// Prepares the buffers for a fresh search over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.hops.resize(n, usize::MAX);
            self.bottleneck.resize(n, Bandwidth::ZERO);
            self.parent.resize(n, NodeId(usize::MAX));
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: stale stamps could alias. Reset them all.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        }
        self.frontier.clear();
        self.next.clear();
    }

    fn discovered(&self, v: NodeId) -> bool {
        self.stamp[v.0] == self.gen
    }

    fn discover(&mut self, v: NodeId, level: usize, cand: Bandwidth, from: NodeId) {
        self.stamp[v.0] = self.gen;
        self.hops[v.0] = level;
        self.bottleneck[v.0] = cand;
        self.parent[v.0] = from;
    }
}

/// Fewest-hops path from `src` to `dst` using only links accepted by
/// `filter`, maximizing the minimum `allowance` along the path among
/// equal-hop candidates, and discarding paths longer than `hop_bound`.
///
/// This reproduces what bounded flooding converges to: the first request
/// copy to arrive took a fewest-hops route, and among simultaneous arrivals
/// the destination keeps the copy with the best bandwidth allowance.
///
/// Returns `None` if `dst` is unreachable within the bound.
///
/// # Panics
///
/// Panics if `src` or `dst` is not a node of `graph`.
pub fn flood_path(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    hop_bound: usize,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    flood_path_with(
        &mut FloodScratch::new(),
        graph,
        src,
        dst,
        hop_bound,
        filter,
        allowance,
    )
}

/// [`flood_path`] reusing caller-owned buffers — the allocation-free
/// variant for hot admission paths. Identical results to [`flood_path`].
///
/// # Panics
///
/// Panics if `src` or `dst` is not a node of `graph`.
pub fn flood_path_with(
    scratch: &mut FloodScratch,
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    hop_bound: usize,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    assert!(graph.contains_node(src) && graph.contains_node(dst));
    if src == dst {
        return Path::from_nodes(graph, vec![src]).ok();
    }
    scratch.begin(graph.node_count());
    scratch.discover(src, 0, Bandwidth::kbps(u64::MAX), src);
    let mut frontier = std::mem::take(&mut scratch.frontier);
    let mut next = std::mem::take(&mut scratch.next);
    frontier.push(src);
    for level in 0..hop_bound {
        if frontier.is_empty() {
            break;
        }
        next.clear();
        for &u in &frontier {
            for &(v, l) in graph.neighbors(u) {
                if !filter(l) {
                    continue;
                }
                let cand = scratch.bottleneck[u.0].min(allowance(l));
                if !scratch.discovered(v) {
                    scratch.discover(v, level + 1, cand, u);
                    next.push(v);
                } else if scratch.hops[v.0] == level + 1 && cand > scratch.bottleneck[v.0] {
                    // Same-layer improvement: a simultaneous request copy
                    // with a better allowance.
                    scratch.bottleneck[v.0] = cand;
                    scratch.parent[v.0] = u;
                }
            }
        }
        if scratch.discovered(dst) {
            // Finish updating this layer (done above), then reconstruct.
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    let found = scratch.discovered(dst);
    let path = if found {
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = scratch.parent[cur.0];
            nodes.push(cur);
        }
        nodes.reverse();
        Path::from_nodes(graph, nodes).ok()
    } else {
        None
    };
    // Hand the frontier buffers back for the next search.
    scratch.frontier = frontier;
    scratch.next = next;
    path
}

/// Reusable route-search state for one network: flood and BFS buffers
/// behind a single handle, so the admission path allocates nothing per
/// attempt. `Network` owns one and invalidates it through its topology
/// epoch whenever the link set changes.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    /// Buffers for [`flood_path_with`].
    pub flood: FloodScratch,
    /// Buffers for [`drqos_topology::paths::bfs_path_with`].
    pub bfs: BfsScratch,
}

impl RouteScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached search state (call after any topology change).
    pub fn invalidate(&mut self) {
        self.flood.invalidate();
        self.bfs.invalidate();
    }
}

/// Routes a primary channel according to `kind`.
///
/// `filter` encodes per-link admission feasibility and `allowance` the
/// spare bandwidth used for flooding tie-breaks.
pub fn route_primary(
    kind: RouterKind,
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    route_primary_with(
        &mut RouteScratch::new(),
        kind,
        graph,
        src,
        dst,
        filter,
        allowance,
    )
}

/// [`route_primary`] reusing caller-owned search buffers.
pub fn route_primary_with(
    scratch: &mut RouteScratch,
    kind: RouterKind,
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    match kind {
        RouterKind::BoundedFlooding { .. } => flood_path_with(
            &mut scratch.flood,
            graph,
            src,
            dst,
            graph.node_count(),
            filter,
            allowance,
        ),
        RouterKind::Shortest | RouterKind::SuurballePair => {
            bfs_path_with(&mut scratch.bfs, graph, src, dst, filter)
        }
    }
}

/// Routes a backup channel, link-disjoint from `primary`, according to
/// `kind`.
///
/// `filter` must already encode backup-specific feasibility (multiplexed
/// reservation headroom); this function additionally excludes the primary's
/// links and, for bounded flooding, enforces the flooding bound.
pub fn route_backup(
    kind: RouterKind,
    graph: &Graph,
    primary: &Path,
    disjointness: BackupDisjointness,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    route_backup_with(
        &mut RouteScratch::new(),
        kind,
        graph,
        primary,
        disjointness,
        filter,
        allowance,
    )
}

/// [`route_backup`] reusing caller-owned search buffers.
pub fn route_backup_with(
    scratch: &mut RouteScratch,
    kind: RouterKind,
    graph: &Graph,
    primary: &Path,
    disjointness: BackupDisjointness,
    filter: &LinkFilter,
    allowance: &dyn Fn(LinkId) -> Bandwidth,
) -> Option<Path> {
    let primary_links: HashSet<LinkId> = primary.links().iter().copied().collect();
    let disjoint_filter = |l: LinkId| !primary_links.contains(&l) && filter(l);
    let (src, dst) = (primary.source(), primary.destination());
    let strict = match kind {
        RouterKind::BoundedFlooding { hop_slack } => {
            let bound = primary.hop_count().saturating_add(hop_slack);
            flood_path_with(
                &mut scratch.flood,
                graph,
                src,
                dst,
                bound,
                &disjoint_filter,
                allowance,
            )
        }
        RouterKind::Shortest | RouterKind::SuurballePair => {
            bfs_path_with(&mut scratch.bfs, graph, src, dst, &disjoint_filter)
        }
    };
    if strict.is_some() || disjointness == BackupDisjointness::Strict {
        return strict;
    }
    // Maximally-disjoint fallback: minimize (shared links, then hops) with
    // a lexicographic weight. Any feasible link may be used.
    const SHARE_PENALTY: f64 = 65_536.0; // far above any hop count
    let weight = |l: LinkId| {
        if primary_links.contains(&l) {
            1.0 + SHARE_PENALTY
        } else {
            1.0
        }
    };
    let candidate = drqos_topology::paths::dijkstra_path(graph, src, dst, &weight, filter)?;
    // A backup that *is* the primary protects nothing.
    if candidate.links().iter().all(|l| primary_links.contains(l)) {
        return None;
    }
    Some(candidate)
}

/// Number of links `backup` shares with `primary`.
pub fn shared_links(primary: &Path, backup: &Path) -> usize {
    let primary_links: HashSet<LinkId> = primary.links().iter().copied().collect();
    backup
        .links()
        .iter()
        .filter(|l| primary_links.contains(l))
        .count()
}

/// For [`RouterKind::SuurballePair`]: the jointly optimal link-disjoint
/// pair under the *primary* feasibility filter. The caller must still
/// verify the second path against backup feasibility and fall back to
/// [`route_backup`] if it does not fit.
pub fn route_pair(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    filter: &LinkFilter,
) -> Option<(Path, Path)> {
    drqos_topology::disjoint::suurballe(graph, src, dst, filter)
        .map(|pair| (pair.first, pair.second))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_topology::paths::pass_all;
    use drqos_topology::regular;

    fn no_allowance_bias(_: LinkId) -> Bandwidth {
        Bandwidth::kbps(1_000)
    }

    /// 0-1-2-3 line plus 0-4-3 detour (2 hops).
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)] {
            g.add_link(NodeId(a), NodeId(b)).unwrap();
        }
        g
    }

    #[test]
    fn flood_finds_fewest_hops() {
        let g = diamond();
        let p = flood_path(&g, NodeId(0), NodeId(3), 10, &pass_all, &no_allowance_bias).unwrap();
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn flood_breaks_ties_by_allowance() {
        // Two 2-hop routes 0-1-3 and 0-2-3; make the second fatter.
        let mut g = Graph::with_nodes(4);
        let l01 = g.add_link(NodeId(0), NodeId(1)).unwrap();
        g.add_link(NodeId(1), NodeId(3)).unwrap();
        g.add_link(NodeId(0), NodeId(2)).unwrap();
        g.add_link(NodeId(2), NodeId(3)).unwrap();
        let allowance = |l: LinkId| {
            if l == l01 {
                Bandwidth::kbps(10)
            } else {
                Bandwidth::kbps(100)
            }
        };
        let p = flood_path(&g, NodeId(0), NodeId(3), 10, &pass_all, &allowance).unwrap();
        assert_eq!(p.nodes()[1], NodeId(2), "should avoid the thin link");
    }

    #[test]
    fn flood_respects_hop_bound() {
        let g = regular::grid(1, 5).unwrap(); // line 0-1-2-3-4
        assert!(flood_path(&g, NodeId(0), NodeId(4), 3, &pass_all, &no_allowance_bias).is_none());
        assert!(flood_path(&g, NodeId(0), NodeId(4), 4, &pass_all, &no_allowance_bias).is_some());
    }

    #[test]
    fn flood_respects_filter() {
        let g = diamond();
        let l04 = g.link_between(NodeId(0), NodeId(4)).unwrap();
        let p = flood_path(
            &g,
            NodeId(0),
            NodeId(3),
            10,
            &|l| l != l04,
            &no_allowance_bias,
        )
        .unwrap();
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn flood_src_equals_dst() {
        let g = diamond();
        let p = flood_path(&g, NodeId(1), NodeId(1), 10, &pass_all, &no_allowance_bias).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn backup_is_disjoint() {
        let g = regular::ring(6).unwrap();
        for kind in [
            RouterKind::default(),
            RouterKind::Shortest,
            RouterKind::SuurballePair,
        ] {
            let p = route_primary(
                kind,
                &g,
                NodeId(0),
                NodeId(3),
                &pass_all,
                &no_allowance_bias,
            )
            .unwrap();
            let b = route_backup(
                kind,
                &g,
                &p,
                BackupDisjointness::Strict,
                &pass_all,
                &no_allowance_bias,
            )
            .unwrap();
            assert!(p.is_link_disjoint(&b), "{kind:?}");
        }
    }

    #[test]
    fn flooding_hop_slack_limits_backup() {
        // Primary on the diamond is 2 hops; the only disjoint route is 3
        // hops, needing slack ≥ 1.
        let g = diamond();
        let kind0 = RouterKind::BoundedFlooding { hop_slack: 0 };
        let kind1 = RouterKind::BoundedFlooding { hop_slack: 1 };
        let p = route_primary(
            kind0,
            &g,
            NodeId(0),
            NodeId(3),
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        assert_eq!(p.hop_count(), 2);
        assert!(route_backup(
            kind0,
            &g,
            &p,
            BackupDisjointness::Strict,
            &pass_all,
            &no_allowance_bias
        )
        .is_none());
        assert!(route_backup(
            kind1,
            &g,
            &p,
            BackupDisjointness::Strict,
            &pass_all,
            &no_allowance_bias
        )
        .is_some());
    }

    #[test]
    fn maximal_fallback_minimizes_overlap() {
        // A "lollipop": leaf 0 — 1, then a 1-2-3-4-1 cycle. Every path
        // from 0 must use link 0-1, so no strict backup exists for 0→3,
        // but a maximally-disjoint one shares only that first link.
        let mut g = Graph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)] {
            g.add_link(NodeId(a), NodeId(b)).unwrap();
        }
        let kind = RouterKind::default();
        let p = route_primary(
            kind,
            &g,
            NodeId(0),
            NodeId(3),
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        assert!(route_backup(
            kind,
            &g,
            &p,
            BackupDisjointness::Strict,
            &pass_all,
            &no_allowance_bias
        )
        .is_none());
        let b = route_backup(
            kind,
            &g,
            &p,
            BackupDisjointness::MaximallyDisjoint,
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        assert_eq!(shared_links(&p, &b), 1, "only the leaf link is shared");
        assert_ne!(p, b);
    }

    #[test]
    fn maximal_fallback_rejects_identical_backup() {
        // On a line the only path is the primary itself.
        let g = regular::grid(1, 3).unwrap();
        let kind = RouterKind::default();
        let p = route_primary(
            kind,
            &g,
            NodeId(0),
            NodeId(2),
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        assert!(route_backup(
            kind,
            &g,
            &p,
            BackupDisjointness::MaximallyDisjoint,
            &pass_all,
            &no_allowance_bias
        )
        .is_none());
    }

    #[test]
    fn shared_links_counts() {
        let g = diamond();
        let a = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let b = Path::from_nodes(&g, vec![NodeId(0), NodeId(4), NodeId(3)]).unwrap();
        let c = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(shared_links(&a, &b), 0);
        assert_eq!(shared_links(&a, &c), 2);
    }

    #[test]
    fn route_pair_on_ring() {
        let g = regular::ring(6).unwrap();
        let (a, b) = route_pair(&g, NodeId(0), NodeId(3), &pass_all).unwrap();
        assert!(a.is_link_disjoint(&b));
        assert_eq!(a.hop_count() + b.hop_count(), 6);
    }

    #[test]
    fn route_pair_none_on_line() {
        let g = regular::grid(1, 3).unwrap();
        assert!(route_pair(&g, NodeId(0), NodeId(2), &pass_all).is_none());
    }

    #[test]
    fn flood_scratch_reuse_matches_fresh_searches() {
        let g = regular::torus(4, 4).unwrap();
        let mut scratch = FloodScratch::new();
        for (s, d, bound) in [
            (0, 15, 16),
            (3, 12, 16),
            (5, 5, 16),
            (0, 10, 2),
            (15, 0, 16),
        ] {
            let reused = flood_path_with(
                &mut scratch,
                &g,
                NodeId(s),
                NodeId(d),
                bound,
                &pass_all,
                &no_allowance_bias,
            );
            let fresh = flood_path(
                &g,
                NodeId(s),
                NodeId(d),
                bound,
                &pass_all,
                &no_allowance_bias,
            );
            assert_eq!(reused, fresh, "{s}->{d} bound {bound}");
        }
        // Invalidation keeps the scratch usable.
        scratch.invalidate();
        let p = flood_path_with(
            &mut scratch,
            &g,
            NodeId(0),
            NodeId(15),
            16,
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        assert_eq!(p.hop_count(), 2, "torus corner-to-corner is 2 hops");
    }

    #[test]
    fn route_scratch_backup_matches_fresh() {
        let g = regular::ring(6).unwrap();
        let mut scratch = RouteScratch::new();
        let kind = RouterKind::default();
        let p = route_primary_with(
            &mut scratch,
            kind,
            &g,
            NodeId(0),
            NodeId(3),
            &pass_all,
            &no_allowance_bias,
        )
        .unwrap();
        let b_scratch = route_backup_with(
            &mut scratch,
            kind,
            &g,
            &p,
            BackupDisjointness::Strict,
            &pass_all,
            &no_allowance_bias,
        );
        let b_fresh = route_backup(
            kind,
            &g,
            &p,
            BackupDisjointness::Strict,
            &pass_all,
            &no_allowance_bias,
        );
        assert_eq!(b_scratch, b_fresh);
    }

    #[test]
    fn default_router_is_flooding_with_slack_2() {
        assert_eq!(
            RouterKind::default(),
            RouterKind::BoundedFlooding { hop_slack: 2 }
        );
    }
}
