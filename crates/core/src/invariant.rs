//! Structured invariant violations for [`crate::network::Network`].
//!
//! [`crate::network::Network::check_invariants`] recomputes all per-link
//! accounting from the connection table and returns every discrepancy as an
//! [`InvariantViolation`] instead of panicking on the first one, so a test
//! harness (in particular the `drqos-testkit` fuzzer) can report the whole
//! set of broken properties for one network state at once. The panicking
//! [`crate::network::Network::validate`] wrapper is kept for tests.

use crate::channel::ConnectionId;
use crate::qos::Bandwidth;
use drqos_topology::LinkId;
use std::fmt;

/// One violated network invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// The cached total primary bandwidth differs from the sum over the
    /// connection table.
    TotalBandwidthMismatch {
        /// The incrementally maintained total.
        cached: Bandwidth,
        /// The total recomputed from the connection table.
        recomputed: Bandwidth,
    },
    /// A connection's elastic level exceeds its QoS maximum.
    LevelAboveMax {
        /// The offending connection.
        conn: ConnectionId,
        /// Its current level.
        level: usize,
        /// The highest level its QoS allows.
        max: usize,
    },
    /// A backup path is identical to the connection's primary.
    BackupEqualsPrimary {
        /// The offending connection.
        conn: ConnectionId,
    },
    /// Under strict disjointness, a backup shares a link with its primary.
    BackupNotDisjoint {
        /// The offending connection.
        conn: ConnectionId,
    },
    /// Two backups of one connection share a link.
    BackupsNotMutuallyDisjoint {
        /// The offending connection.
        conn: ConnectionId,
    },
    /// A link's cached primary-minima sum disagrees with the recomputation.
    MinSumMismatch {
        /// The link.
        link: LinkId,
        /// The incrementally maintained sum.
        cached: Bandwidth,
        /// The sum recomputed from the connection table.
        recomputed: Bandwidth,
    },
    /// A link's cached extras sum disagrees with the recomputation.
    ExtraSumMismatch {
        /// The link.
        link: LinkId,
        /// The incrementally maintained sum.
        cached: Bandwidth,
        /// The sum recomputed from the connection table.
        recomputed: Bandwidth,
    },
    /// The set of primaries registered on a link disagrees with the
    /// connection table.
    PrimarySetMismatch {
        /// The link.
        link: LinkId,
    },
    /// The set of backups registered on a link disagrees with the
    /// connection table.
    BackupSetMismatch {
        /// The link.
        link: LinkId,
    },
    /// Allocated bandwidth (minima + extras) exceeds a link's capacity.
    CapacityExceeded {
        /// The link.
        link: LinkId,
        /// Minima + extras currently allocated.
        allocated: Bandwidth,
        /// The link's capacity.
        capacity: Bandwidth,
    },
    /// A link's cached multiplexed backup reservation disagrees with the
    /// recomputation from its conflict map.
    ReservationOutOfSync {
        /// The link.
        link: LinkId,
        /// The cached reservation.
        cached: Bandwidth,
        /// The reservation recomputed from the conflict map.
        recomputed: Bandwidth,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::TotalBandwidthMismatch { cached, recomputed } => {
                write!(
                    f,
                    "total bandwidth out of sync: cached {cached}, recomputed {recomputed}"
                )
            }
            InvariantViolation::LevelAboveMax { conn, level, max } => {
                write!(f, "{conn} at level {level} beyond its QoS maximum {max}")
            }
            InvariantViolation::BackupEqualsPrimary { conn } => {
                write!(f, "{conn} has a backup identical to its primary")
            }
            InvariantViolation::BackupNotDisjoint { conn } => {
                write!(
                    f,
                    "{conn} backup shares a link with its primary under strict disjointness"
                )
            }
            InvariantViolation::BackupsNotMutuallyDisjoint { conn } => {
                write!(f, "{conn} has two backups sharing a link")
            }
            InvariantViolation::MinSumMismatch {
                link,
                cached,
                recomputed,
            } => write!(
                f,
                "min sum on {link} out of sync: cached {cached}, recomputed {recomputed}"
            ),
            InvariantViolation::ExtraSumMismatch {
                link,
                cached,
                recomputed,
            } => write!(
                f,
                "extra sum on {link} out of sync: cached {cached}, recomputed {recomputed}"
            ),
            InvariantViolation::PrimarySetMismatch { link } => {
                write!(f, "primary set on {link} out of sync")
            }
            InvariantViolation::BackupSetMismatch { link } => {
                write!(f, "backup set on {link} out of sync")
            }
            InvariantViolation::CapacityExceeded {
                link,
                allocated,
                capacity,
            } => write!(
                f,
                "allocation exceeds capacity on {link}: {allocated} > {capacity}"
            ),
            InvariantViolation::ReservationOutOfSync {
                link,
                cached,
                recomputed,
            } => write!(
                f,
                "backup reservation on {link} out of sync: cached {cached}, recomputed {recomputed}"
            ),
        }
    }
}

/// Formats a violation list as a panic/report message, one per line.
pub fn format_violations(violations: &[InvariantViolation]) -> String {
    violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        let v = InvariantViolation::CapacityExceeded {
            link: LinkId(3),
            allocated: Bandwidth::kbps(900),
            capacity: Bandwidth::kbps(800),
        };
        let s = v.to_string();
        assert!(s.contains("l3") && s.contains("900") && s.contains("800"));
        let m = InvariantViolation::LevelAboveMax {
            conn: ConnectionId(7),
            level: 9,
            max: 4,
        };
        assert!(m.to_string().contains("c7"));
    }

    #[test]
    fn format_joins_lines() {
        let vs = vec![
            InvariantViolation::PrimarySetMismatch { link: LinkId(0) },
            InvariantViolation::BackupSetMismatch { link: LinkId(1) },
        ];
        let joined = format_violations(&vs);
        assert_eq!(joined.lines().count(), 2);
        assert!(joined.contains("l0") && joined.contains("l1"));
    }
}
