//! Error types for the DR-connection network manager.

use drqos_topology::{LinkId, NodeId};
use std::fmt;

/// Errors raised when constructing QoS specifications.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// The minimum bandwidth was zero.
    ZeroMinimum,
    /// `max < min`.
    MaxBelowMin,
    /// The increment was zero while `max > min`.
    ZeroIncrement,
    /// `(max − min)` is not an integral multiple of the increment, which
    /// the paper assumes ("the interval between the minimum and the maximum
    /// resources is an integral multiple of the increment size").
    IncrementDoesNotDivideRange,
    /// The utility/coefficient was not finite and positive.
    InvalidUtility(f64),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::ZeroMinimum => write!(f, "minimum bandwidth must be positive"),
            QosError::MaxBelowMin => write!(f, "maximum bandwidth is below the minimum"),
            QosError::ZeroIncrement => {
                write!(f, "increment must be positive for an elastic range")
            }
            QosError::IncrementDoesNotDivideRange => {
                write!(
                    f,
                    "bandwidth range is not an integral multiple of the increment"
                )
            }
            QosError::InvalidUtility(u) => {
                write!(f, "utility must be finite and positive, got {u}")
            }
        }
    }
}

impl std::error::Error for QosError {}

/// Why a DR-connection request was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// Source or destination is not a node of the network.
    UnknownNode(NodeId),
    /// Source and destination coincide.
    SameEndpoints(NodeId),
    /// No route with enough bandwidth for the minimum QoS exists.
    NoPrimaryRoute,
    /// A primary route exists but no link-disjoint backup with sufficient
    /// (multiplexed) reservation could be found.
    NoBackupRoute,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownNode(n) => write!(f, "unknown node {n}"),
            AdmissionError::SameEndpoints(n) => {
                write!(f, "source and destination are both {n}")
            }
            AdmissionError::NoPrimaryRoute => {
                write!(f, "no feasible primary route (insufficient bandwidth)")
            }
            AdmissionError::NoBackupRoute => {
                write!(f, "no feasible link-disjoint backup route")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Errors from operations on an existing network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetworkError {
    /// No connection with this id exists.
    UnknownConnection(u64),
    /// The link id is not part of the network graph.
    UnknownLink(LinkId),
    /// The link is already in the requested up/down state.
    LinkStateUnchanged(LinkId),
    /// The node id is not part of the network graph.
    UnknownNode(NodeId),
    /// Every link adjacent to the node is already down, so failing the
    /// node changes nothing.
    NodeAlreadyDown(NodeId),
    /// No shared-risk link group with this id was registered.
    UnknownSrlg(usize),
    /// Every member link of the group is already in the requested up/down
    /// state, so firing the group event changes nothing.
    SrlgStateUnchanged(usize),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownConnection(id) => write!(f, "unknown connection c{id}"),
            NetworkError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetworkError::LinkStateUnchanged(l) => {
                write!(f, "link {l} is already in the requested state")
            }
            NetworkError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetworkError::NodeAlreadyDown(n) => {
                write!(f, "node {n} has no up links left to fail")
            }
            NetworkError::UnknownSrlg(g) => write!(f, "unknown shared-risk group g{g}"),
            NetworkError::SrlgStateUnchanged(g) => {
                write!(
                    f,
                    "shared-risk group g{g} is already in the requested state"
                )
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Errors from the multi-daemon cluster layer (membership and the
/// two-phase inter-daemon commit protocol). Defined here so the wire
/// code table in [`crate::wire`] covers them exhaustively; the cluster
/// engine itself lives in the `drqos-cluster` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The member id is not part of the cluster roster.
    UnknownMember(u64),
    /// A `JOIN` named a member id that is already alive.
    DuplicateMember(u64),
    /// A `LEAVE`/`CRASH` would remove the last live member; a cluster
    /// always keeps at least one admission authority.
    LastMember(u64),
    /// A `COMMIT` named a prepare ticket that is no longer pending (it
    /// was aborted, typically because its member crashed mid-two-phase).
    StalePrepare(u64),
    /// The coordinator's verdict did not arrive within the prepare
    /// timeout (`DRQOS_CLUSTER_PREPARE_TIMEOUT_MS`); the member aborts
    /// the request.
    PrepareTimeout(u64),
    /// A replica asked for oplog records past the coordinator's current
    /// sequence number.
    SequenceGap(u64),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownMember(m) => write!(f, "unknown cluster member m{m}"),
            ClusterError::DuplicateMember(m) => {
                write!(f, "cluster member m{m} is already alive")
            }
            ClusterError::LastMember(m) => {
                write!(f, "member m{m} is the last live member and cannot leave")
            }
            ClusterError::StalePrepare(t) => {
                write!(f, "prepare ticket {t} is no longer pending")
            }
            ClusterError::PrepareTimeout(t) => {
                write!(f, "prepare ticket {t} timed out awaiting the coordinator")
            }
            ClusterError::SequenceGap(s) => {
                write!(f, "requested oplog records past sequence {s}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_error_display() {
        assert!(QosError::ZeroMinimum.to_string().contains("positive"));
        assert!(QosError::MaxBelowMin.to_string().contains("below"));
        assert!(QosError::ZeroIncrement.to_string().contains("increment"));
        assert!(QosError::IncrementDoesNotDivideRange
            .to_string()
            .contains("integral multiple"));
        assert!(QosError::InvalidUtility(f64::NAN)
            .to_string()
            .contains("utility"));
    }

    #[test]
    fn admission_error_display() {
        assert!(AdmissionError::UnknownNode(NodeId(3))
            .to_string()
            .contains("n3"));
        assert!(AdmissionError::SameEndpoints(NodeId(1))
            .to_string()
            .contains("n1"));
        assert!(AdmissionError::NoPrimaryRoute
            .to_string()
            .contains("primary"));
        assert!(AdmissionError::NoBackupRoute.to_string().contains("backup"));
    }

    #[test]
    fn network_error_display() {
        assert!(NetworkError::UnknownConnection(7)
            .to_string()
            .contains("c7"));
        assert!(NetworkError::UnknownLink(LinkId(2))
            .to_string()
            .contains("l2"));
        assert!(NetworkError::LinkStateUnchanged(LinkId(2))
            .to_string()
            .contains("already"));
        assert!(NetworkError::UnknownNode(NodeId(4))
            .to_string()
            .contains("n4"));
        assert!(NetworkError::NodeAlreadyDown(NodeId(5))
            .to_string()
            .contains("n5"));
        assert!(NetworkError::UnknownSrlg(3).to_string().contains("g3"));
        assert!(NetworkError::SrlgStateUnchanged(2)
            .to_string()
            .contains("already"));
    }

    #[test]
    fn cluster_error_display() {
        assert!(ClusterError::UnknownMember(3).to_string().contains("m3"));
        assert!(ClusterError::DuplicateMember(1)
            .to_string()
            .contains("already alive"));
        assert!(ClusterError::LastMember(0).to_string().contains("last"));
        assert!(ClusterError::StalePrepare(9)
            .to_string()
            .contains("no longer pending"));
        assert!(ClusterError::PrepareTimeout(4)
            .to_string()
            .contains("timed out"));
        assert!(ClusterError::SequenceGap(7).to_string().contains("oplog"));
    }
}
