//! Point-in-time views of a network for reporting and export.
//!
//! [`NetworkSnapshot`] freezes the observable state of a [`Network`]
//! (per-link utilization, per-connection QoS levels) into plain rows that
//! benches and examples can tabulate, export as CSV, or aggregate —
//! without holding a borrow on the live network.

use crate::channel::ConnectionId;
use crate::network::Network;
use crate::qos::Bandwidth;
use drqos_topology::LinkId;

/// One link's frozen accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRow {
    /// The link.
    pub link: LinkId,
    /// Whether it was up.
    pub up: bool,
    /// Capacity.
    pub capacity: Bandwidth,
    /// Sum of primary minima.
    pub primary_min: Bandwidth,
    /// Elastic extras lent out.
    pub extras: Bandwidth,
    /// Multiplexed backup reservation.
    pub backup_reservation: Bandwidth,
    /// Primary channels crossing the link.
    pub primary_count: usize,
}

impl LinkRow {
    /// Fraction of capacity committed (minima + extras + reservation).
    pub fn utilization(&self) -> f64 {
        let committed = self.primary_min + self.extras + self.backup_reservation;
        committed.as_kbps_f64() / self.capacity.as_kbps_f64().max(1.0)
    }
}

/// One connection's frozen state.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionRow {
    /// The connection.
    pub id: ConnectionId,
    /// Current bandwidth.
    pub bandwidth: Bandwidth,
    /// Current elastic level.
    pub level: usize,
    /// Maximum level of its QoS range.
    pub max_level: usize,
    /// Primary hop count.
    pub primary_hops: usize,
    /// Whether a backup channel exists.
    pub has_backup: bool,
    /// Number of backup channels currently established.
    pub backup_count: usize,
    /// Failovers so far.
    pub failovers: u32,
}

/// A frozen view of the whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    /// Per-link rows, indexed by link id.
    pub links: Vec<LinkRow>,
    /// Per-connection rows, in id order.
    pub connections: Vec<ConnectionRow>,
}

impl NetworkSnapshot {
    /// Captures the current state of `net`.
    pub fn capture(net: &Network) -> Self {
        let links = net
            .graph()
            .links()
            .map(|l| {
                let u = net.link_usage(l.id());
                LinkRow {
                    link: l.id(),
                    up: u.is_up(),
                    capacity: u.capacity(),
                    primary_min: u.primary_min_sum(),
                    extras: u.extra_sum(),
                    backup_reservation: u.backup_reservation(),
                    primary_count: u.primary_count(),
                }
            })
            .collect();
        let connections = net
            .connections()
            .map(|c| ConnectionRow {
                id: c.id(),
                bandwidth: c.bandwidth(),
                level: c.level(),
                max_level: c.qos().max_level(),
                primary_hops: c.primary().hop_count(),
                has_backup: c.has_backup(),
                backup_count: c.backup_count(),
                failovers: c.failovers(),
            })
            .collect();
        Self { links, connections }
    }

    /// Mean committed-capacity fraction over up links (0 with no links).
    pub fn mean_utilization(&self) -> f64 {
        let up: Vec<&LinkRow> = self.links.iter().filter(|l| l.up).collect();
        if up.is_empty() {
            0.0
        } else {
            up.iter().map(|l| l.utilization()).sum::<f64>() / up.len() as f64
        }
    }

    /// Histogram of connection levels, indexed by level (length =
    /// 1 + max observed max_level; empty with no connections).
    pub fn level_histogram(&self) -> Vec<usize> {
        let Some(max) = self.connections.iter().map(|c| c.max_level).max() else {
            return Vec::new();
        };
        let mut hist = vec![0usize; max + 1];
        for c in &self.connections {
            hist[c.level] += 1;
        }
        hist
    }

    /// Fraction of connections that currently hold a backup channel.
    pub fn backup_coverage(&self) -> f64 {
        if self.connections.is_empty() {
            return 1.0;
        }
        self.connections.iter().filter(|c| c.has_backup).count() as f64
            / self.connections.len() as f64
    }

    /// The most-loaded links, sorted by utilization descending (ties by
    /// link id), truncated to `n`.
    pub fn hottest_links(&self, n: usize) -> Vec<&LinkRow> {
        let mut rows: Vec<&LinkRow> = self.links.iter().collect();
        rows.sort_by(|a, b| {
            b.utilization()
                .total_cmp(&a.utilization())
                .then_with(|| a.link.cmp(&b.link))
        });
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::qos::ElasticQos;
    use drqos_topology::{regular, NodeId};

    fn snapshot_of_loaded_ring() -> (NetworkSnapshot, Network) {
        let g = regular::ring(6).unwrap();
        let mut net = Network::new(
            g,
            NetworkConfig {
                capacity: Bandwidth::kbps(1_000),
                ..NetworkConfig::default()
            },
        );
        net.establish(NodeId(0), NodeId(3), ElasticQos::paper_video(100))
            .unwrap();
        net.establish(NodeId(1), NodeId(4), ElasticQos::paper_video(100))
            .unwrap();
        (NetworkSnapshot::capture(&net), net)
    }

    #[test]
    fn capture_matches_live_state() {
        let (snap, net) = snapshot_of_loaded_ring();
        assert_eq!(snap.links.len(), net.graph().link_count());
        assert_eq!(snap.connections.len(), net.len());
        for row in &snap.connections {
            let live = net.connection(row.id).unwrap();
            assert_eq!(row.bandwidth, live.bandwidth());
            assert_eq!(row.level, live.level());
            assert_eq!(row.has_backup, live.has_backup());
        }
        for row in &snap.links {
            let live = net.link_usage(row.link);
            assert_eq!(row.primary_min, live.primary_min_sum());
            assert_eq!(row.extras, live.extra_sum());
            assert_eq!(row.backup_reservation, live.backup_reservation());
        }
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (snap, _) = snapshot_of_loaded_ring();
        for row in &snap.links {
            assert!((0.0..=1.0 + 1e-9).contains(&row.utilization()));
        }
        assert!(snap.mean_utilization() > 0.0);
    }

    #[test]
    fn level_histogram_counts_all_connections() {
        let (snap, _) = snapshot_of_loaded_ring();
        let hist = snap.level_histogram();
        assert_eq!(hist.iter().sum::<usize>(), snap.connections.len());
    }

    #[test]
    fn empty_network_edge_cases() {
        let g = regular::ring(4).unwrap();
        let net = Network::new(g, NetworkConfig::default());
        let snap = NetworkSnapshot::capture(&net);
        assert!(snap.level_histogram().is_empty());
        assert_eq!(snap.backup_coverage(), 1.0);
        assert_eq!(snap.mean_utilization(), 0.0);
    }

    #[test]
    fn backup_coverage_full_on_ring() {
        let (snap, _) = snapshot_of_loaded_ring();
        assert_eq!(snap.backup_coverage(), 1.0);
    }

    #[test]
    fn hottest_links_sorted_and_truncated() {
        let (snap, _) = snapshot_of_loaded_ring();
        let hot = snap.hottest_links(3);
        assert_eq!(hot.len(), 3);
        for w in hot.windows(2) {
            assert!(w[0].utilization() >= w[1].utilization());
        }
        // Asking for more than exists returns everything.
        assert_eq!(snap.hottest_links(100).len(), snap.links.len());
    }
}
