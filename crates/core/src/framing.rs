//! Length-prefixed binary framing primitives.
//!
//! The transport-agnostic half of the service's binary wire mode
//! (`DRQOS_WIRE=binary`), hoisted into the core so the inter-daemon
//! cluster protocol (`drqos-cluster`) can share the exact same framing
//! without depending on the service crate. A frame is:
//!
//! ```text
//! [u32 LE len] [body: len bytes]
//! ```
//!
//! `len` counts the bytes after the length field and is capped at
//! [`MAX_FRAME_BYTES`]; a larger announced length is unrecoverable (the
//! stream cannot be resynchronized) and closes the connection. What the
//! body *means* is the caller's business: `drqos_service::frame` layers
//! the client request/response opcodes on top, `drqos_cluster::proto`
//! layers the coordinator/member messages.

use std::io::{self, Read};

/// Hard cap on a frame body; a larger announced length is unrecoverable
/// (the stream cannot be resynchronized) and closes the connection.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Prepends the little-endian length field to a frame body, yielding a
/// complete frame ready to write.
pub fn finish(body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend(body);
    frame
}

/// Appends a little-endian `u64` to a frame body.
pub fn put_u64(body: &mut Vec<u8>, v: u64) {
    body.extend_from_slice(&v.to_le_bytes());
}

/// Reads the little-endian `u64` at byte offset `at` (`None` if the body
/// is too short).
pub fn get_u64(body: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = body.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Reads the `u64` at byte offset `at` as a `usize` index (`None` if the
/// body is too short or the value does not fit).
pub fn get_index(body: &[u8], at: usize) -> Option<usize> {
    usize::try_from(get_u64(body, at)?).ok()
}

/// What one [`FrameReader::fill`] call observed on the stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Fill {
    /// Bytes arrived (there may now be a complete frame).
    Data,
    /// Clean end of stream.
    Eof,
    /// The read timed out or would block; poll again.
    Idle,
}

/// Incremental frame accumulator for a non-blocking (timeout-polled)
/// stream: bytes are buffered across short reads, and complete frames
/// pop out as they close — a frame split across any number of packets
/// reassembles exactly.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the accumulator is holding any buffered bytes (a partial
    /// frame awaiting its remainder).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the announced length exceeds
    /// [`MAX_FRAME_BYTES`] — the connection cannot be resynchronized.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let Some(len_bytes) = self.buf.get(..4).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let mut frame: Vec<u8> = self.buf.drain(..4 + len).collect();
        frame.drain(..4);
        Ok(Some(frame))
    }

    /// Reads once from `r` into the buffer.
    ///
    /// # Errors
    ///
    /// Hard I/O errors; timeouts and `WouldBlock` surface as
    /// [`Fill::Idle`].
    pub fn fill(&mut self, r: &mut impl Read) -> io::Result<Fill> {
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf
                    .extend_from_slice(chunk.get(..n).unwrap_or_default());
                Ok(Fill::Data)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Fill::Idle)
            }
            Err(e) => Err(e),
        }
    }
}

/// Reads one complete frame body from a blocking stream (client side).
///
/// # Errors
///
/// `UnexpectedEof` on a torn frame, `InvalidData` past the length cap,
/// plus any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_and_short_reads() {
        let mut body = Vec::new();
        put_u64(&mut body, 7);
        put_u64(&mut body, u64::MAX);
        assert_eq!(get_u64(&body, 0), Some(7));
        assert_eq!(get_u64(&body, 8), Some(u64::MAX));
        assert_eq!(get_u64(&body, 9), None, "short read must not panic");
        assert_eq!(get_index(&body, 0), Some(7));
    }

    #[test]
    fn finish_prefixes_the_body_length() {
        let frame = finish(vec![1, 2, 3]);
        assert_eq!(&frame[..4], &3u32.to_le_bytes());
        assert_eq!(&frame[4..], &[1, 2, 3]);
        let mut stream = &frame[..];
        assert_eq!(read_frame(&mut stream).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn reader_reassembles_byte_by_byte() {
        let mut bytes = Vec::new();
        for body in [vec![9u8; 5], vec![], vec![1, 2]] {
            bytes.extend(finish(body));
        }
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        for b in bytes {
            let mut one = &[b][..];
            assert_eq!(reader.fill(&mut one).unwrap(), Fill::Data);
            while let Some(body) = reader.next_frame().unwrap() {
                frames.push(body);
            }
        }
        assert_eq!(frames, vec![vec![9u8; 5], vec![], vec![1, 2]]);
        assert!(reader.is_empty());
    }

    #[test]
    fn oversized_announcements_are_rejected_on_both_paths() {
        let huge = ((MAX_FRAME_BYTES as u32) + 1).to_le_bytes();
        let mut reader = FrameReader::new();
        let mut stream = &huge[..];
        assert_eq!(reader.fill(&mut stream).unwrap(), Fill::Data);
        assert!(reader.next_frame().is_err());
        let mut stream = &huge[..];
        assert!(read_frame(&mut stream).is_err());
    }
}
