//! DR-connections and their channels.
//!
//! A *dependable real-time connection* (DR-connection) owns one primary
//! channel carrying traffic and (normally) one link-disjoint backup channel
//! reserved for failure recovery. The primary's reservation is elastic: its
//! current *level* counts increments of extra bandwidth above the minimum.
//! Backups always reserve exactly the minimum — "only minimum required, or
//! less, resources are reserved and remain unchanged for backup channels"
//! (paper, footnote 4).

use crate::qos::{Bandwidth, ElasticQos};
use drqos_topology::Path;
use std::fmt;

/// Identifier of a DR-connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionId(pub u64);

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The role of a channel within its DR-connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelRole {
    /// Carries traffic; holds the elastic reservation.
    Primary,
    /// Inactive spare; reserves (multiplexed) minimum bandwidth only.
    Backup,
}

/// A dependable real-time connection: elastic QoS, a primary path, zero
/// or more backup paths, and the current elastic level.
///
/// The paper's analysis allocates exactly one backup per connection; the
/// scheme it builds on (Han & Shin) supports "one or more", which this
/// type models as an ordered list — the first usable backup is activated
/// on failover.
#[derive(Debug, Clone, PartialEq)]
pub struct DrConnection {
    id: ConnectionId,
    qos: ElasticQos,
    primary: Path,
    backups: Vec<Path>,
    level: usize,
    failovers: u32,
}

impl DrConnection {
    /// Creates a connection at the minimum level.
    ///
    /// # Panics
    ///
    /// Panics if `backup` is present but identical to `primary` (a backup
    /// may share links when only a maximally-disjoint one exists, but an
    /// identical one protects nothing).
    pub(crate) fn new(
        id: ConnectionId,
        qos: ElasticQos,
        primary: Path,
        backups: Vec<Path>,
    ) -> Self {
        for b in &backups {
            assert!(
                b != &primary,
                "backups must differ from the primary channel"
            );
        }
        Self {
            id,
            qos,
            primary,
            backups,
            level: 0,
            failovers: 0,
        }
    }

    /// This connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The QoS contract.
    pub fn qos(&self) -> &ElasticQos {
        &self.qos
    }

    /// The primary channel's route.
    pub fn primary(&self) -> &Path {
        &self.primary
    }

    /// The first backup channel's route, if any is established (the one a
    /// failover would activate first).
    pub fn backup(&self) -> Option<&Path> {
        self.backups.first()
    }

    /// All backup channels, in activation order.
    pub fn backups(&self) -> &[Path] {
        &self.backups
    }

    /// The current elastic level (increments above the minimum).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The bandwidth currently reserved for the primary channel:
    /// `min + level·Δ`.
    pub fn bandwidth(&self) -> Bandwidth {
        self.qos.level_bandwidth(self.level)
    }

    /// Extra bandwidth above the minimum (`level·Δ`).
    pub fn extra(&self) -> Bandwidth {
        self.bandwidth() - self.qos.min()
    }

    /// How many times this connection has failed over to a backup.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Whether this connection currently has at least one backup channel.
    pub fn has_backup(&self) -> bool {
        !self.backups.is_empty()
    }

    /// Number of backup channels currently established.
    pub fn backup_count(&self) -> usize {
        self.backups.len()
    }

    pub(crate) fn set_level(&mut self, level: usize) {
        assert!(level <= self.qos.max_level(), "level beyond QoS maximum");
        self.level = level;
    }

    pub(crate) fn push_backup(&mut self, backup: Path) {
        assert!(
            backup != self.primary,
            "backup must differ from the primary channel"
        );
        self.backups.push(backup);
    }

    /// Removes the backup at `index`, returning it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub(crate) fn remove_backup(&mut self, index: usize) -> Path {
        self.backups.remove(index)
    }

    pub(crate) fn clear_backups(&mut self) -> Vec<Path> {
        std::mem::take(&mut self.backups)
    }

    /// Whether every backup shares no link with the primary (always true
    /// under [`crate::routing::BackupDisjointness::Strict`], and vacuously
    /// true without backups).
    pub fn backup_fully_disjoint(&self) -> bool {
        self.backups
            .iter()
            .all(|b| self.primary.is_link_disjoint(b))
    }

    /// Promotes the backup at `index` to primary (failover). The
    /// connection drops to the minimum level; the remaining backups are
    /// returned alongside being kept (they now protect the new primary,
    /// whose registration the network re-keys).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the chosen backup equals the
    /// current primary.
    pub(crate) fn activate_backup(&mut self, index: usize) {
        let new_primary = self.backups.remove(index);
        self.primary = new_primary;
        // A surviving backup identical to the new primary is useless; drop
        // it (possible only under maximal disjointness).
        let primary = self.primary.clone();
        self.backups.retain(|b| b != &primary);
        self.level = 0;
        self.failovers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_topology::{regular, NodeId};

    fn ring_paths() -> (Path, Path) {
        let g = regular::ring(6).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let b = Path::from_nodes(&g, vec![NodeId(0), NodeId(5), NodeId(4), NodeId(3)]).unwrap();
        (p, b)
    }

    fn qos() -> ElasticQos {
        ElasticQos::paper_video(50)
    }

    #[test]
    fn new_connection_starts_at_minimum() {
        let (p, b) = ring_paths();
        let c = DrConnection::new(ConnectionId(1), qos(), p, vec![b]);
        assert_eq!(c.level(), 0);
        assert_eq!(c.bandwidth(), Bandwidth::kbps(100));
        assert_eq!(c.extra(), Bandwidth::ZERO);
        assert!(c.has_backup());
        assert_eq!(c.backup_count(), 1);
        assert_eq!(c.failovers(), 0);
        assert_eq!(c.id().to_string(), "c1");
    }

    #[test]
    fn level_changes_bandwidth() {
        let (p, b) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![b]);
        c.set_level(4);
        assert_eq!(c.bandwidth(), Bandwidth::kbps(300));
        assert_eq!(c.extra(), Bandwidth::kbps(200));
    }

    #[test]
    #[should_panic(expected = "beyond QoS maximum")]
    fn level_cannot_exceed_max() {
        let (p, b) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![b]);
        c.set_level(9);
    }

    #[test]
    #[should_panic(expected = "differ from the primary")]
    fn identical_backup_rejected() {
        let g = regular::ring(6).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        DrConnection::new(ConnectionId(1), qos(), p.clone(), vec![p]);
    }

    #[test]
    fn partially_overlapping_backup_accepted() {
        // Maximally-disjoint backups may share links with the primary.
        let g = regular::ring(6).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let b = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let c = DrConnection::new(ConnectionId(1), qos(), b, vec![p]);
        assert!(!c.backup_fully_disjoint());
    }

    #[test]
    fn activate_backup_swaps_routes() {
        let (p, b) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![b.clone()]);
        c.set_level(3);
        c.activate_backup(0);
        assert_eq!(c.primary(), &b);
        assert!(!c.has_backup());
        assert_eq!(c.level(), 0);
        assert_eq!(c.failovers(), 1);
    }

    #[test]
    fn activation_keeps_other_backups() {
        let g = regular::complete(4).unwrap();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1)]).unwrap();
        let b1 = Path::from_nodes(&g, vec![NodeId(0), NodeId(2), NodeId(1)]).unwrap();
        let b2 = Path::from_nodes(&g, vec![NodeId(0), NodeId(3), NodeId(1)]).unwrap();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![b1.clone(), b2.clone()]);
        assert_eq!(c.backup_count(), 2);
        c.activate_backup(0);
        assert_eq!(c.primary(), &b1);
        assert_eq!(c.backups(), &[b2]);
    }

    #[test]
    #[should_panic]
    fn activate_without_backup_panics() {
        let (p, _) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![]);
        c.activate_backup(0);
    }

    #[test]
    fn push_and_remove_backups() {
        let (p, b) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![]);
        assert!(!c.has_backup());
        c.push_backup(b.clone());
        assert_eq!(c.backup(), Some(&b));
        let removed = c.remove_backup(0);
        assert_eq!(removed, b);
        assert!(!c.has_backup());
    }

    #[test]
    fn clear_backups_returns_all() {
        let (p, b) = ring_paths();
        let mut c = DrConnection::new(ConnectionId(1), qos(), p, vec![b.clone()]);
        assert_eq!(c.clear_backups(), vec![b]);
        assert!(!c.has_backup());
    }
}
