//! Sharded admission over topology partitions.
//!
//! The paper's dependable-channel manager is a single sequential admission
//! authority; [`crate::network::Network`] reproduces that limit. A
//! [`ShardedNetwork`] splits the admission *planning* problem by region —
//! each shard of a [`Partition`] is the single-writer owner of its links —
//! while keeping results **byte-identical** to the monolith:
//!
//! 1. **Parallel plan.** A wave of requests is grouped by home shard
//!    (the shard owning the source node). One planning thread per
//!    non-empty shard routes its requests against the frozen network via
//!    [`crate::network::Network::plan_establish_traced`], which records
//!    the admission *footprint*: every link the search probed, with its
//!    plan digest at planning time.
//! 2. **Two-phase reserve/commit.** A single committer walks the wave in
//!    original request order. For each request it acquires the ledgers of
//!    exactly the shards the footprint touches — **in ascending shard
//!    order** ([`Partition::touched_shards`]), so the lock order is a
//!    total order and deadlock is impossible by construction — inserts a
//!    pending reservation per touched shard, and revalidates every
//!    footprint digest. If every probed link is unchanged, the plan (or
//!    planned rejection) is exactly what serial planning would produce
//!    now, and it commits. If any digest moved, the reservation is
//!    aborted (released) and the request is re-planned serially at its
//!    sequential point — the monolith's own path.
//!
//! The equivalence argument is the route cache's (proven by
//! `fuzz --diff-cache`): the route search is a deterministic function of
//! the digests of the links it probes, so "all probed digests unchanged"
//! implies "the serial search would make the same decisions". It covers
//! *rejections* too — footprints are recorded even for failed plans,
//! because intervening commits can change which error a request gets.
//! Commits go through [`crate::network::Network::batch_commit`], the same
//! deferred-fill machinery as `establish_batch` (proven by
//! `fuzz --diff-batch`). The remaining gap — a sharded wave versus the
//! monolith replaying the same ops one at a time — is closed by
//! `fuzz --diff-shard` in `drqos-testkit`.

use crate::error::AdmissionError;
use crate::network::{EstablishRequest, Network};
use crate::routing::RouteScratch;
use drqos_topology::{LinkId, Partition};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Seed for the default [`Partition::seeded_bfs`] partition, fixed so a
/// daemon restarted on the same topology shards it identically.
pub const DEFAULT_PARTITION_SEED: u64 = 0x5EED_2001;

/// Fault injection for the differential harness's mutation self-test: a
/// deliberately broken sharded engine the `fuzz --diff-shard` harness must
/// catch, proving the comparison has teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardFault {
    /// Behave correctly.
    #[default]
    None,
    /// Skip releasing one two-phase reservation after its commit, leaking
    /// a pending-ledger entry (caught by the harness's
    /// [`ShardedNetwork::pending_reservations`] check).
    LoseReservationRelease,
}

/// Per-shard reservation ledger: the links of in-flight two-phase tickets
/// that this shard owns. Emptied again as each ticket commits or aborts;
/// non-empty between waves means a committer leaked a reservation.
#[derive(Debug, Default)]
struct ShardLedger {
    pending: BTreeMap<u64, Vec<LinkId>>,
}

/// A [`Network`] fronted by partition-sharded admission planning.
///
/// All non-establish operations (release, failures, repairs, snapshots)
/// go straight to the inner monolith via [`ShardedNetwork::inner_mut`] —
/// sharding accelerates admission, the measured bottleneck, and leaves
/// every other path untouched.
#[derive(Debug)]
pub struct ShardedNetwork {
    net: Network,
    partition: Partition,
    ledgers: Vec<Mutex<ShardLedger>>,
    next_ticket: u64,
    stale_replans: u64,
    fault: ShardFault,
    fault_fired: bool,
}

fn lock_ledger(m: &Mutex<ShardLedger>) -> MutexGuard<'_, ShardLedger> {
    // Ledger operations cannot panic, so a poisoned lock is unreachable;
    // the daemon zone forbids `unwrap`, so shrug poison off regardless.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShardedNetwork {
    /// Shards `net` into (up to) `shards` regions using the deterministic
    /// seeded-BFS partition of its graph.
    pub fn new(net: Network, shards: usize) -> Self {
        let partition = Partition::seeded_bfs(net.graph(), shards, DEFAULT_PARTITION_SEED);
        Self::with_partition(net, partition)
    }

    /// Shards `net` by an explicit partition (the transit-stub natural
    /// cut, or a fuzzer-chosen one).
    pub fn with_partition(net: Network, partition: Partition) -> Self {
        let ledgers = (0..partition.shards())
            .map(|_| Mutex::new(ShardLedger::default()))
            .collect();
        Self {
            net,
            partition,
            ledgers,
            next_ticket: 0,
            stale_replans: 0,
            fault: ShardFault::None,
            fault_fired: false,
        }
    }

    /// The inner monolith, read-only.
    pub fn inner(&self) -> &Network {
        &self.net
    }

    /// The inner monolith, for all non-establish operations.
    pub fn inner_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Unwraps the inner monolith.
    pub fn into_inner(self) -> Network {
        self.net
    }

    /// Number of shards (after clamping to the node count).
    pub fn shards(&self) -> usize {
        self.partition.shards()
    }

    /// The node/link partition in force.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Arms (or clears) fault injection for the mutation self-test.
    pub fn set_fault(&mut self, fault: ShardFault) {
        self.fault = fault;
        self.fault_fired = false;
    }

    /// Two-phase reservations currently pending across all shard ledgers.
    /// Zero between waves on a correct engine; a leak here is how the
    /// differential harness catches [`ShardFault::LoseReservationRelease`].
    pub fn pending_reservations(&self) -> usize {
        self.ledgers
            .iter()
            .map(|l| lock_ledger(l).pending.len())
            .sum()
    }

    /// Wave commits that found a stale footprint and re-planned serially.
    /// Purely observational (contention telemetry for benches and tests).
    pub fn stale_replans(&self) -> u64 {
        self.stale_replans
    }

    /// Admits a wave of establish requests: parallel per-shard planning
    /// against the frozen network, then a deterministic two-phase
    /// reserve/commit in original request order. Returns one result per
    /// request, in request order, byte-identical to what
    /// [`Network::establish`] would return replaying the wave serially.
    pub fn establish_wave(
        &mut self,
        requests: &[EstablishRequest],
    ) -> Vec<Result<crate::channel::ConnectionId, AdmissionError>> {
        type Planned = (
            Result<crate::network::EstablishPlan, AdmissionError>,
            Vec<(LinkId, u64)>,
        );
        // Phase 1: group by home shard and plan in parallel. Each worker
        // owns a fresh route scratch; the network is frozen (`&Network`),
        // so planning threads share it without coordination. Workers
        // deposit results into index-addressed slots, so the commit phase
        // below is independent of thread scheduling.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.partition.shards()];
        for (i, req) in requests.iter().enumerate() {
            groups[self.partition.shard_of_node(req.src)].push(i);
        }
        let net = &self.net;
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let active = groups.iter().filter(|g| !g.is_empty()).count();
        let mut planned: Vec<Option<Planned>> = if workers <= 1 || active <= 1 {
            // No parallelism to exploit (single core, or one home shard):
            // plan inline, skipping per-wave thread spawns. Same plans in
            // the same slots — planning is a pure function of the frozen
            // network — so the commit phase cannot tell the difference.
            let mut scratch = RouteScratch::new();
            let mut slots: Vec<Option<Planned>> = requests.iter().map(|_| None).collect();
            for group in groups.iter().filter(|g| !g.is_empty()) {
                for &i in group {
                    let r = &requests[i];
                    slots[i] = Some(net.plan_establish_traced(&mut scratch, r.src, r.dst, r.qos));
                }
            }
            slots
        } else {
            let planned: Mutex<Vec<Option<Planned>>> =
                Mutex::new(requests.iter().map(|_| None).collect());
            std::thread::scope(|scope| {
                for group in groups.iter().filter(|g| !g.is_empty()) {
                    scope.spawn(|| {
                        let mut scratch = RouteScratch::new();
                        let local: Vec<(usize, Planned)> = group
                            .iter()
                            .map(|&i| {
                                let r = &requests[i];
                                (
                                    i,
                                    net.plan_establish_traced(&mut scratch, r.src, r.dst, r.qos),
                                )
                            })
                            .collect();
                        let mut slots = planned.lock().unwrap_or_else(|e| e.into_inner());
                        for (i, p) in local {
                            slots[i] = Some(p);
                        }
                    });
                }
            });
            planned.into_inner().unwrap_or_else(|e| e.into_inner())
        };

        // Phase 2: single committer, original request order.
        let mut results = Vec::with_capacity(requests.len());
        let mut pending_fill = None;
        for (i, req) in requests.iter().enumerate() {
            let Some((plan_res, footprint)) = planned[i].take() else {
                // Unreachable (every index has exactly one home shard),
                // but degrade to the serial path rather than panic.
                results.push(self.replan_serially(req, &mut pending_fill));
                continue;
            };
            // Reserve: lock exactly the touched shards, ascending — the
            // canonical total order, so no two committers (present or
            // future concurrent ones) can deadlock.
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            let touched = self
                .partition
                .touched_shards(footprint.iter().map(|&(l, _)| l));
            let mut guards: Vec<(usize, MutexGuard<'_, ShardLedger>)> = Vec::new();
            for &s in &touched {
                let mut guard = lock_ledger(&self.ledgers[s]);
                let owned: Vec<LinkId> = footprint
                    .iter()
                    .map(|&(l, _)| l)
                    .filter(|&l| self.partition.shard_of_link(l) == s)
                    .collect();
                guard.pending.insert(ticket, owned);
                guards.push((s, guard));
            }
            // Validate: every link the planner probed must be unchanged,
            // for rejections as much as for admissions.
            let valid = footprint
                .iter()
                .all(|&(l, d)| self.net.link_usage(l).plan_digest() == d);
            // Release reservations (commit and abort both release; the
            // injected fault "forgets" one release to prove the harness
            // notices).
            let lose_one = self.fault == ShardFault::LoseReservationRelease
                && !self.fault_fired
                && !guards.is_empty();
            if lose_one {
                self.fault_fired = true;
            }
            for (n, (_, guard)) in guards.iter_mut().enumerate() {
                if lose_one && n == 0 {
                    continue;
                }
                guard.pending.remove(&ticket);
            }
            drop(guards);
            let result = if valid {
                match plan_res {
                    Ok(plan) => Ok(self.net.batch_commit(plan, &mut pending_fill)),
                    Err(e) => Err(e),
                }
            } else {
                // Abort: the wave plan observed state that has since
                // moved; replay this request at its sequential point.
                self.stale_replans += 1;
                self.replan_serially(req, &mut pending_fill)
            };
            results.push(result);
        }
        self.net.batch_flush(pending_fill);
        results
    }

    /// The monolith's own plan-and-commit, at the request's sequential
    /// point in the wave (deferred-fill protocol preserved).
    fn replan_serially(
        &mut self,
        req: &EstablishRequest,
        pending_fill: &mut Option<std::collections::BTreeSet<crate::channel::ConnectionId>>,
    ) -> Result<crate::channel::ConnectionId, AdmissionError> {
        let plan = self.net.plan_establish(req.src, req.dst, req.qos)?;
        Ok(self.net.batch_commit(plan, pending_fill))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::qos::ElasticQos;
    use crate::snapshot::NetworkSnapshot;
    use drqos_sim::rng::Rng;
    use drqos_topology::regular::ring;
    use drqos_topology::waxman;
    use drqos_topology::NodeId;

    fn waxman_net(seed: u64) -> Network {
        let graph = waxman::paper_waxman(40)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap();
        Network::new(graph, NetworkConfig::default())
    }

    fn random_wave(seed: u64, n_nodes: usize, count: usize) -> Vec<EstablishRequest> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let s = rng.range_usize(n_nodes);
                let mut d = rng.range_usize(n_nodes - 1);
                if d >= s {
                    d += 1;
                }
                EstablishRequest {
                    src: NodeId(s),
                    dst: NodeId(d),
                    qos: ElasticQos::paper_video(25),
                }
            })
            .collect()
    }

    fn assert_matches_serial(net: Network, wave: &[EstablishRequest], shards: usize) -> u64 {
        let mut serial = net.clone();
        let mut sharded = ShardedNetwork::new(net, shards);
        let got = sharded.establish_wave(wave);
        let want: Vec<_> = wave
            .iter()
            .map(|r| serial.establish(r.src, r.dst, r.qos))
            .collect();
        assert_eq!(got, want, "per-request results diverged");
        assert_eq!(
            NetworkSnapshot::capture(sharded.inner()),
            NetworkSnapshot::capture(&serial),
            "post-wave state diverged"
        );
        assert_eq!(sharded.pending_reservations(), 0, "leaked reservations");
        sharded.stale_replans()
    }

    #[test]
    fn a_quiet_wave_matches_serial_replay() {
        for seed in 0..5u64 {
            let net = waxman_net(seed);
            let n = net.graph().node_count();
            assert_matches_serial(net, &random_wave(seed ^ 0x77, n, 24), 4);
        }
    }

    #[test]
    fn a_contended_wave_replans_stale_footprints_and_still_matches() {
        // Antipodal requests on a small ring all fight for the same links,
        // so wave plans go stale and the two-phase validation must abort
        // into serial replans — and the result must still match.
        let net = Network::new(ring(6).unwrap(), NetworkConfig::default());
        let wave: Vec<EstablishRequest> = (0..12)
            .map(|i| EstablishRequest {
                src: NodeId(i % 6),
                dst: NodeId((i + 3) % 6),
                qos: ElasticQos::paper_video(25),
            })
            .collect();
        let stale = assert_matches_serial(net, &wave, 3);
        assert!(stale > 0, "contended ring wave should hit the stale path");
    }

    #[test]
    fn waves_compose_with_interleaved_monolith_operations() {
        let net = waxman_net(9);
        let n = net.graph().node_count();
        let mut serial = net.clone();
        let mut sharded = ShardedNetwork::new(net, 4);
        for round in 0..4u64 {
            let wave = random_wave(round ^ 0x1CE, n, 10);
            let got = sharded.establish_wave(&wave);
            let want: Vec<_> = wave
                .iter()
                .map(|r| serial.establish(r.src, r.dst, r.qos))
                .collect();
            assert_eq!(got, want, "round {round}");
            // Interleave non-establish traffic through the monolith path.
            let first = sharded.inner().connections().next().map(|c| c.id());
            if let Some(id) = first {
                sharded.inner_mut().release(id).unwrap();
                serial.release(id).unwrap();
            }
            let link = drqos_topology::LinkId(round as usize);
            sharded.inner_mut().fail_link(link).unwrap();
            serial.fail_link(link).unwrap();
            assert_eq!(
                NetworkSnapshot::capture(sharded.inner()),
                NetworkSnapshot::capture(&serial),
                "round {round}"
            );
        }
        assert_eq!(sharded.pending_reservations(), 0);
    }

    #[test]
    fn the_injected_fault_leaks_a_reservation() {
        let net = waxman_net(2);
        let n = net.graph().node_count();
        let mut sharded = ShardedNetwork::new(net, 4);
        sharded.set_fault(ShardFault::LoseReservationRelease);
        sharded.establish_wave(&random_wave(5, n, 8));
        assert!(
            sharded.pending_reservations() > 0,
            "LoseReservationRelease must leak a pending-ledger entry"
        );
    }

    #[test]
    fn one_shard_degenerates_to_the_monolith() {
        let net = waxman_net(4);
        let n = net.graph().node_count();
        let stale = assert_matches_serial(net, &random_wave(11, n, 16), 1);
        // Single shard ⇒ single planning thread, but the two-phase commit
        // machinery still runs (and still must be invisible).
        let _ = stale;
    }
}
