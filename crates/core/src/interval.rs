//! Interval (k-out-of-M) QoS — the paper's *other* elastic model
//! (Section 2.2).
//!
//! Where the range model adapts at channel-establishment time, interval
//! QoS adapts at *run time*: "QoS is expressed in the form of k-out-of-M
//! within a fixed time interval, meaning that at least k but less than or
//! equal to M packets should arrive within a fixed time interval. The link
//! manager can selectively ignore a packet as long as it can satisfy the
//! minimum k-out-of-M requirement."
//!
//! [`DropController`] is that link-manager decision procedure over a
//! sliding window of the last `M` packets: [`DropController::may_drop`]
//! answers whether dropping the next packet still leaves the contract
//! satisfiable, and the controller tracks the actual outcome so the
//! guarantee holds continuously (every window of `M` consecutive packets
//! delivers at least `k`).

use std::collections::VecDeque;
use std::fmt;

/// Errors constructing an interval QoS contract.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IntervalQosError {
    /// `k` was zero (a contract that guarantees nothing).
    ZeroK,
    /// `k > M` (an unsatisfiable contract).
    KExceedsM {
        /// The minimum required.
        k: usize,
        /// The window size.
        m: usize,
    },
}

impl fmt::Display for IntervalQosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalQosError::ZeroK => write!(f, "k must be at least 1"),
            IntervalQosError::KExceedsM { k, m } => {
                write!(f, "k ({k}) must not exceed M ({m})")
            }
        }
    }
}

impl std::error::Error for IntervalQosError {}

/// A k-out-of-M interval QoS contract.
///
/// # Examples
///
/// ```
/// use drqos_core::interval::IntervalQos;
///
/// // A voice codec tolerating 2 losses in every 10 packets.
/// let qos = IntervalQos::new(8, 10)?;
/// assert_eq!(qos.max_drops(), 2);
/// # Ok::<(), drqos_core::interval::IntervalQosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalQos {
    k: usize,
    m: usize,
}

impl IntervalQos {
    /// Creates a contract requiring at least `k` of every `m` consecutive
    /// packets to be delivered.
    ///
    /// # Errors
    ///
    /// * [`IntervalQosError::ZeroK`] if `k == 0`.
    /// * [`IntervalQosError::KExceedsM`] if `k > m`.
    pub fn new(k: usize, m: usize) -> Result<Self, IntervalQosError> {
        if k == 0 {
            return Err(IntervalQosError::ZeroK);
        }
        if k > m {
            return Err(IntervalQosError::KExceedsM { k, m });
        }
        Ok(Self { k, m })
    }

    /// The minimum deliveries per window.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The window size `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The largest number of drops any window may contain (`M − k`).
    pub fn max_drops(&self) -> usize {
        self.m - self.k
    }

    /// The guaranteed long-run delivery ratio (`k / M`).
    pub fn min_delivery_ratio(&self) -> f64 {
        self.k as f64 / self.m as f64
    }
}

/// The outcome recorded for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// The packet was forwarded.
    Delivered,
    /// The packet was dropped (skipped) by the link manager.
    Dropped,
}

/// A sliding-window enforcement engine for one channel's [`IntervalQos`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropController {
    qos: IntervalQos,
    /// Outcomes of the most recent `< M` packets (front = oldest).
    window: VecDeque<PacketOutcome>,
    drops_in_window: usize,
    delivered_total: u64,
    dropped_total: u64,
}

impl DropController {
    /// Creates a controller for the given contract.
    pub fn new(qos: IntervalQos) -> Self {
        Self {
            qos,
            window: VecDeque::with_capacity(qos.m()),
            drops_in_window: 0,
            delivered_total: 0,
            dropped_total: 0,
        }
    }

    /// The contract being enforced.
    pub fn qos(&self) -> &IntervalQos {
        &self.qos
    }

    /// Whether the *next* packet may be dropped without ever violating the
    /// k-out-of-M guarantee (i.e. the window that would end at the next
    /// packet still contains at most `M − k` drops).
    pub fn may_drop(&self) -> bool {
        let drops = if self.window.len() == self.qos.m() {
            // The oldest outcome falls out of the window.
            let expiring = matches!(self.window.front(), Some(PacketOutcome::Dropped));
            self.drops_in_window - usize::from(expiring)
        } else {
            self.drops_in_window
        };
        drops < self.qos.max_drops()
    }

    /// Records that the next packet was dropped.
    ///
    /// # Panics
    ///
    /// Panics if dropping would violate the contract (callers must consult
    /// [`DropController::may_drop`] first); the guarantee is the whole
    /// point of the mechanism.
    pub fn record_drop(&mut self) {
        assert!(
            self.may_drop(),
            "drop would violate the k-out-of-M contract"
        );
        self.push(PacketOutcome::Dropped);
        self.dropped_total += 1;
    }

    /// Records that the next packet was delivered.
    pub fn record_delivery(&mut self) {
        self.push(PacketOutcome::Delivered);
        self.delivered_total += 1;
    }

    /// Convenience: drops the packet if permitted, else delivers it.
    /// Returns the outcome.
    pub fn offer_drop(&mut self) -> PacketOutcome {
        if self.may_drop() {
            self.record_drop();
            PacketOutcome::Dropped
        } else {
            self.record_delivery();
            PacketOutcome::Delivered
        }
    }

    fn push(&mut self, outcome: PacketOutcome) {
        if self.window.len() == self.qos.m() {
            if let Some(PacketOutcome::Dropped) = self.window.pop_front() {
                self.drops_in_window -= 1;
            }
        }
        if outcome == PacketOutcome::Dropped {
            self.drops_in_window += 1;
        }
        self.window.push_back(outcome);
    }

    /// Total packets delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total packets dropped so far.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Delivered fraction over the whole history (1.0 before any packet).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered_total + self.dropped_total;
        if total == 0 {
            1.0
        } else {
            self.delivered_total as f64 / total as f64
        }
    }

    /// Drops inside the current window (diagnostics).
    pub fn drops_in_window(&self) -> usize {
        self.drops_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_validation() {
        assert_eq!(IntervalQos::new(0, 5), Err(IntervalQosError::ZeroK));
        assert_eq!(
            IntervalQos::new(6, 5),
            Err(IntervalQosError::KExceedsM { k: 6, m: 5 })
        );
        let q = IntervalQos::new(3, 5).unwrap();
        assert_eq!(q.k(), 3);
        assert_eq!(q.m(), 5);
        assert_eq!(q.max_drops(), 2);
        assert!((q.min_delivery_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_must_deliver_when_k_equals_m() {
        let mut ctl = DropController::new(IntervalQos::new(5, 5).unwrap());
        for _ in 0..100 {
            assert!(!ctl.may_drop());
            assert_eq!(ctl.offer_drop(), PacketOutcome::Delivered);
        }
        assert_eq!(ctl.dropped_total(), 0);
    }

    #[test]
    fn drops_allowed_up_to_budget() {
        let mut ctl = DropController::new(IntervalQos::new(3, 5).unwrap());
        assert!(ctl.may_drop());
        ctl.record_drop();
        assert!(ctl.may_drop());
        ctl.record_drop();
        // Two drops in the (incomplete) window: a third would break 3-of-5.
        assert!(!ctl.may_drop());
    }

    #[test]
    #[should_panic(expected = "violate the k-out-of-M")]
    fn forced_drop_panics() {
        let mut ctl = DropController::new(IntervalQos::new(5, 5).unwrap());
        ctl.record_drop();
    }

    #[test]
    fn budget_replenishes_as_window_slides() {
        let mut ctl = DropController::new(IntervalQos::new(4, 5).unwrap());
        ctl.record_drop(); // drop #1
        assert!(!ctl.may_drop());
        for _ in 0..4 {
            ctl.record_delivery();
        }
        // The drop is about to fall out of the 5-packet window.
        assert!(ctl.may_drop());
        ctl.record_drop();
        assert_eq!(ctl.dropped_total(), 2);
    }

    #[test]
    fn greedy_dropping_respects_contract_in_every_window() {
        // Drop as aggressively as allowed for a long run, then verify every
        // window of M consecutive outcomes delivered at least k.
        let qos = IntervalQos::new(7, 10).unwrap();
        let mut ctl = DropController::new(qos);
        let mut outcomes = Vec::new();
        for _ in 0..1000 {
            outcomes.push(ctl.offer_drop());
        }
        for w in outcomes.windows(qos.m()) {
            let delivered = w
                .iter()
                .filter(|o| matches!(o, PacketOutcome::Delivered))
                .count();
            assert!(
                delivered >= qos.k(),
                "a window fell to {delivered} deliveries"
            );
        }
        // Greedy dropping should actually use the whole budget in the limit.
        let ratio = ctl.delivery_ratio();
        assert!(
            (ratio - qos.min_delivery_ratio()).abs() < 0.02,
            "greedy controller wasted budget: {ratio}"
        );
    }

    #[test]
    fn delivery_ratio_tracks_history() {
        let mut ctl = DropController::new(IntervalQos::new(1, 2).unwrap());
        assert_eq!(ctl.delivery_ratio(), 1.0);
        ctl.record_delivery();
        ctl.record_drop();
        assert_eq!(ctl.delivery_ratio(), 0.5);
        assert_eq!(ctl.delivered_total(), 1);
        assert_eq!(ctl.dropped_total(), 1);
        assert_eq!(ctl.drops_in_window(), 1);
    }

    #[test]
    fn error_display() {
        assert!(IntervalQosError::ZeroK.to_string().contains("at least 1"));
        assert!(IntervalQosError::KExceedsM { k: 9, m: 5 }
            .to_string()
            .contains("9"));
    }
}
