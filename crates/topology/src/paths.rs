//! Paths and shortest-path algorithms.
//!
//! Provides the [`Path`] type (a validated walk through the graph) plus
//! breadth-first and Dijkstra searches with per-link feasibility filters —
//! the building blocks of the route-selection schemes in `drqos-core`.

use crate::error::TopologyError;
use crate::graph::{Graph, LinkId, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// A simple path through a graph: a node sequence plus the links between
/// consecutive nodes.
///
/// Invariants (enforced by [`Path::from_nodes`]):
/// * at least one node;
/// * consecutive nodes are adjacent in the graph;
/// * no repeated nodes (simple path).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from a node sequence, validating adjacency against `graph`.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::InvalidParameter`] if the sequence is empty,
    ///   repeats a node, or two consecutive nodes are not adjacent.
    pub fn from_nodes(graph: &Graph, nodes: Vec<NodeId>) -> Result<Self, TopologyError> {
        if nodes.is_empty() {
            return Err(TopologyError::InvalidParameter(
                "path must contain at least one node".into(),
            ));
        }
        let distinct: HashSet<NodeId> = nodes.iter().copied().collect();
        if distinct.len() != nodes.len() {
            return Err(TopologyError::InvalidParameter(
                "path must not repeat nodes".into(),
            ));
        }
        let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
        for w in nodes.windows(2) {
            let link = graph.link_between(w[0], w[1]).ok_or_else(|| {
                TopologyError::InvalidParameter(format!("{} and {} are not adjacent", w[0], w[1]))
            })?;
            links.push(link);
        }
        Ok(Self { nodes, links })
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty") // lint:allow(panic-reachability): Path construction guarantees a non-empty node list
    }

    /// Number of links (hops).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Whether this path traverses `link`.
    pub fn crosses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Whether this path and `other` share at least one link.
    pub fn shares_link_with(&self, other: &Path) -> bool {
        if self.links.len() > other.links.len() {
            return other.shares_link_with(self);
        }
        let mine: HashSet<LinkId> = self.links.iter().copied().collect();
        other.links.iter().any(|l| mine.contains(l))
    }

    /// Whether this path and `other` have no link in common.
    pub fn is_link_disjoint(&self, other: &Path) -> bool {
        !self.shares_link_with(other)
    }
}

/// A per-link admission filter used by the searches: return `false` to make
/// a link impassable (down, or without enough spare bandwidth).
pub type LinkFilter<'a> = dyn Fn(LinkId) -> bool + 'a;

/// Reusable breadth-first search buffers.
///
/// A BFS over an `n`-node graph needs a predecessor table and a queue;
/// allocating them per call dominates the cost of short searches on the
/// admission path. A scratch is generation-stamped: `stamp[v] == gen`
/// marks `prev[v]` as belonging to the current search, so starting a new
/// search is O(1) — just bump the generation. [`BfsScratch::invalidate`]
/// drops everything; callers that cache a scratch across topology changes
/// (see `Network`'s topology epoch in `drqos-core`) call it whenever the
/// graph's link set changes.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    gen: u64,
    stamp: Vec<u64>,
    prev: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl BfsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached search state (call after any topology change).
    pub fn invalidate(&mut self) {
        self.gen = 0;
        self.stamp.clear();
        self.prev.clear();
        self.queue.clear();
    }

    /// Prepares the buffers for a fresh search over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.prev.resize(n, NodeId(usize::MAX));
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: stale stamps could alias. Reset them all.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        }
        self.queue.clear();
    }

    fn visited(&self, v: NodeId) -> bool {
        self.stamp[v.0] == self.gen
    }

    fn visit(&mut self, v: NodeId, from: NodeId) {
        self.stamp[v.0] = self.gen;
        self.prev[v.0] = from;
    }
}

/// Breadth-first (fewest-hops) shortest path from `src` to `dst`, traversing
/// only links accepted by `filter`.
///
/// Returns `None` if `dst` is unreachable. With equal hop counts the path
/// found follows adjacency-list order, which is deterministic for a given
/// graph construction order.
///
/// # Panics
///
/// Panics if `src` or `dst` are not nodes of `graph`.
pub fn bfs_path(graph: &Graph, src: NodeId, dst: NodeId, filter: &LinkFilter) -> Option<Path> {
    bfs_path_with(&mut BfsScratch::new(), graph, src, dst, filter)
}

/// [`bfs_path`] reusing caller-owned buffers — the allocation-free variant
/// for hot admission paths. Identical results to [`bfs_path`].
///
/// # Panics
///
/// Panics if `src` or `dst` are not nodes of `graph`.
pub fn bfs_path_with(
    scratch: &mut BfsScratch,
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    filter: &LinkFilter,
) -> Option<Path> {
    assert!(graph.contains_node(src) && graph.contains_node(dst));
    if src == dst {
        return Path::from_nodes(graph, vec![src]).ok();
    }
    scratch.begin(graph.node_count());
    scratch.queue.push_back(src);
    scratch.visit(src, src);
    while let Some(u) = scratch.queue.pop_front() {
        for &(v, l) in graph.neighbors(u) {
            if !filter(l) {
                continue;
            }
            if !scratch.visited(v) {
                scratch.visit(v, u);
                if v == dst {
                    return Some(reconstruct(graph, &scratch.prev, src, dst));
                }
                scratch.queue.push_back(v);
            }
        }
    }
    None
}

fn reconstruct(graph: &Graph, prev: &[NodeId], src: NodeId, dst: NodeId) -> Path {
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.0];
        nodes.push(cur);
    }
    nodes.reverse();
    // lint:allow(panic-reachability): prev chain from a completed BFS forms a valid simple path
    Path::from_nodes(graph, nodes).expect("BFS reconstruction yields a valid simple path")
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; tie-break on node id for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra shortest path with a per-link weight function and feasibility
/// filter.
///
/// `weight` must return a non-negative, finite cost for each link; links
/// rejected by `filter` are skipped entirely. Returns `None` if `dst` is
/// unreachable.
///
/// # Panics
///
/// Panics if `src`/`dst` are invalid, or if `weight` returns a negative or
/// non-finite cost (checked per traversed link).
pub fn dijkstra_path(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: &dyn Fn(LinkId) -> f64,
    filter: &LinkFilter,
) -> Option<Path> {
    assert!(graph.contains_node(src) && graph.contains_node(dst));
    if src == dst {
        return Path::from_nodes(graph, vec![src]).ok();
    }
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapItem {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapItem { cost, node: u }) = heap.pop() {
        if cost > dist[u.0] {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, l) in graph.neighbors(u) {
            if !filter(l) {
                continue;
            }
            let w = weight(l);
            assert!(
                w.is_finite() && w >= 0.0,
                "link weight must be finite and non-negative, got {w} for {l}"
            );
            let next = cost + w;
            if next < dist[v.0] {
                dist[v.0] = next;
                prev[v.0] = Some(u);
                heap.push(HeapItem {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    if dist[dst.0].is_infinite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[cur.0] {
        nodes.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    nodes.reverse();
    Path::from_nodes(graph, nodes).ok()
}

/// Yen's algorithm: the `k` shortest loop-free paths by hop count.
///
/// Paths are returned in non-decreasing hop order; fewer than `k` paths are
/// returned if the graph does not contain that many. Useful for modelling
/// the "destination waits for more request copies over different routes"
/// step of the bounded-flooding protocol.
pub fn k_shortest_paths(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    filter: &LinkFilter,
) -> Vec<Path> {
    let mut found: Vec<Path> = Vec::new();
    let Some(first) = bfs_path(graph, src, dst, filter) else {
        return found;
    };
    found.push(first);
    let mut candidates: Vec<Path> = Vec::new();
    while found.len() < k {
        let last = found.last().expect("found is non-empty").clone();
        for i in 0..last.hop_count() {
            let spur_node = last.nodes()[i];
            let root_nodes = &last.nodes()[..=i];
            let root_links: HashSet<LinkId> = last.links()[..i].iter().copied().collect();
            // Links removed: any link that a previously found path with the
            // same root takes out of the spur node.
            let mut banned_links: HashSet<LinkId> = HashSet::new();
            for p in &found {
                if p.nodes().len() > i && p.nodes()[..=i] == *root_nodes {
                    if let Some(&l) = p.links().get(i) {
                        banned_links.insert(l);
                    }
                }
            }
            // Nodes in the root (except the spur node) must not be revisited.
            let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();
            let spur_filter = |l: LinkId| {
                if banned_links.contains(&l) || root_links.contains(&l) || !filter(l) {
                    return false;
                }
                let link = graph.link(l);
                !banned_nodes.contains(&link.a()) && !banned_nodes.contains(&link.b())
            };
            if let Some(spur) = bfs_path(graph, spur_node, dst, &spur_filter) {
                let mut nodes: Vec<NodeId> = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes()[1..]);
                if let Ok(total) = Path::from_nodes(graph, nodes) {
                    if !found.contains(&total) && !candidates.contains(&total) {
                        candidates.push(total);
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the shortest candidate (stable for determinism).
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.hop_count())
            .map(|(i, _)| i)
            .expect("candidates is non-empty");
        found.push(candidates.swap_remove(best));
    }
    found
}

/// Accept-everything link filter.
pub fn pass_all(_: LinkId) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular;

    /// 0-1-2-3 line plus a 0-4-3 detour.
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)] {
            g.add_link(NodeId(a), NodeId(b)).unwrap();
        }
        g
    }

    #[test]
    fn path_from_nodes_validates_adjacency() {
        let g = diamond();
        assert!(Path::from_nodes(&g, vec![NodeId(0), NodeId(2)]).is_err());
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(2));
    }

    #[test]
    fn path_rejects_empty_and_repeats() {
        let g = diamond();
        assert!(Path::from_nodes(&g, vec![]).is_err());
        assert!(Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(0)]).is_err());
    }

    #[test]
    fn singleton_path_is_valid() {
        let g = diamond();
        let p = Path::from_nodes(&g, vec![NodeId(2)]).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.source(), p.destination());
    }

    #[test]
    fn bfs_finds_fewest_hops() {
        let g = diamond();
        let p = bfs_path(&g, NodeId(0), NodeId(3), &pass_all).unwrap();
        assert_eq!(p.hop_count(), 2); // 0-4-3
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(4), NodeId(3)]);
    }

    #[test]
    fn bfs_respects_filter() {
        let g = diamond();
        let l04 = g.link_between(NodeId(0), NodeId(4)).unwrap();
        let p = bfs_path(&g, NodeId(0), NodeId(3), &|l| l != l04).unwrap();
        assert_eq!(p.hop_count(), 3); // forced onto 0-1-2-3
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut g = diamond();
        let iso = g.add_node();
        assert!(bfs_path(&g, NodeId(0), iso, &pass_all).is_none());
    }

    #[test]
    fn bfs_src_equals_dst() {
        let g = diamond();
        let p = bfs_path(&g, NodeId(1), NodeId(1), &pass_all).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs_length() {
        let g = regular::grid(4, 4).unwrap();
        let src = NodeId(0);
        let dst = NodeId(15);
        let b = bfs_path(&g, src, dst, &pass_all).unwrap();
        let d = dijkstra_path(&g, src, dst, &|_| 1.0, &pass_all).unwrap();
        assert_eq!(b.hop_count(), d.hop_count());
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let g = diamond();
        let l04 = g.link_between(NodeId(0), NodeId(4)).unwrap();
        // Make the 2-hop detour expensive.
        let w = |l: LinkId| if l == l04 { 10.0 } else { 1.0 };
        let p = dijkstra_path(&g, NodeId(0), NodeId(3), &w, &pass_all).unwrap();
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut g = diamond();
        let iso = g.add_node();
        assert!(dijkstra_path(&g, NodeId(0), iso, &|_| 1.0, &pass_all).is_none());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn dijkstra_rejects_negative_weight() {
        let g = diamond();
        dijkstra_path(&g, NodeId(0), NodeId(3), &|_| -1.0, &pass_all);
    }

    #[test]
    fn shares_link_detection() {
        let g = diamond();
        let a = Path::from_nodes(&g, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let b = Path::from_nodes(&g, vec![NodeId(0), NodeId(4), NodeId(3)]).unwrap();
        let c = Path::from_nodes(&g, vec![NodeId(1), NodeId(2)]).unwrap();
        assert!(a.is_link_disjoint(&b));
        assert!(a.shares_link_with(&c));
        assert!(!b.shares_link_with(&c));
    }

    #[test]
    fn crosses_detects_membership() {
        let g = diamond();
        let p = Path::from_nodes(&g, vec![NodeId(0), NodeId(1)]).unwrap();
        let l01 = g.link_between(NodeId(0), NodeId(1)).unwrap();
        let l12 = g.link_between(NodeId(1), NodeId(2)).unwrap();
        assert!(p.crosses(l01));
        assert!(!p.crosses(l12));
    }

    #[test]
    fn k_shortest_finds_both_diamond_routes() {
        let g = diamond();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 5, &pass_all);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].hop_count(), 2);
        assert_eq!(ps[1].hop_count(), 3);
    }

    #[test]
    fn k_shortest_orders_by_hops() {
        let g = regular::grid(3, 3).unwrap();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(8), 6, &pass_all);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count());
        }
        // All distinct.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn bfs_scratch_reuse_matches_fresh_searches() {
        let g = regular::grid(4, 4).unwrap();
        let mut scratch = BfsScratch::new();
        for (s, d) in [(0, 15), (3, 12), (5, 5), (0, 1), (15, 0)] {
            let reused = bfs_path_with(&mut scratch, &g, NodeId(s), NodeId(d), &pass_all);
            let fresh = bfs_path(&g, NodeId(s), NodeId(d), &pass_all);
            assert_eq!(reused, fresh, "{s}->{d}");
        }
        // Invalidation keeps the scratch usable.
        scratch.invalidate();
        let p = bfs_path_with(&mut scratch, &g, NodeId(0), NodeId(15), &pass_all).unwrap();
        assert_eq!(p.hop_count(), 6);
    }

    #[test]
    fn k_shortest_unreachable_empty() {
        let mut g = diamond();
        let iso = g.add_node();
        assert!(k_shortest_paths(&g, NodeId(0), iso, 3, &pass_all).is_empty());
    }
}
