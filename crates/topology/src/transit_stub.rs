//! Transit-stub hierarchical topologies — the "Tier" network model of the
//! paper's Table 1 (Zegura, Calvert & Bhattacharjee, INFOCOM 1996; the
//! GT-ITM package).
//!
//! A transit-stub internetwork has a small core of *transit* domains whose
//! routers are well connected, and many *stub* domains (campus/edge
//! networks) that hang off individual transit nodes. Traffic between stubs
//! must cross the transit core, which is why the paper's Table 1 finds the
//! tiered network saturating much earlier than the flat random network: the
//! thin stub→transit uplinks are the bottleneck.

use crate::error::TopologyError;
use crate::graph::{Graph, NodeId};
use crate::metrics;
use crate::partition::Partition;
use drqos_sim::rng::Rng;

/// Configuration for the transit-stub generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit domains (≥ 1).
    pub transit_domains: usize,
    /// Routers per transit domain (≥ 1).
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit router (≥ 1).
    pub stubs_per_transit_node: usize,
    /// Routers per stub domain (≥ 1).
    pub stub_nodes_per_domain: usize,
    /// Probability of each extra intra-domain edge beyond the spanning tree,
    /// for transit domains.
    pub transit_extra_edge_prob: f64,
    /// Probability of each extra intra-domain edge beyond the spanning tree,
    /// for stub domains.
    pub stub_extra_edge_prob: f64,
}

impl TransitStubConfig {
    /// A ~100-node configuration comparable to the paper's Tier network:
    /// one transit domain of 4 routers, 3 stubs per transit router,
    /// 8 routers per stub → 4 + 96 = 100 nodes.
    pub fn paper_default() -> Self {
        Self {
            transit_domains: 1,
            transit_nodes_per_domain: 4,
            stubs_per_transit_node: 3,
            stub_nodes_per_domain: 8,
            transit_extra_edge_prob: 0.6,
            stub_extra_edge_prob: 0.25,
        }
    }

    /// Total node count this configuration produces.
    pub fn total_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes_per_domain
    }

    fn validate(&self) -> Result<(), TopologyError> {
        if self.transit_domains == 0
            || self.transit_nodes_per_domain == 0
            || self.stubs_per_transit_node == 0
            || self.stub_nodes_per_domain == 0
        {
            return Err(TopologyError::InvalidParameter(
                "all transit-stub counts must be positive".into(),
            ));
        }
        for (name, p) in [
            ("transit_extra_edge_prob", self.transit_extra_edge_prob),
            ("stub_extra_edge_prob", self.stub_extra_edge_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(TopologyError::InvalidParameter(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        Ok(())
    }

    /// Generates a connected transit-stub graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if any count is zero or
    /// a probability is out of range.
    pub fn generate(&self, rng: &mut Rng) -> Result<TransitStub, TopologyError> {
        self.validate()?;
        let mut g = Graph::new();
        let mut transit_nodes: Vec<NodeId> = Vec::new();
        let mut domains: Vec<Vec<NodeId>> = Vec::new();

        // Transit domains: each a random connected subgraph.
        for d in 0..self.transit_domains {
            let base_x = d as f64;
            let members = random_connected_subgraph(
                &mut g,
                self.transit_nodes_per_domain,
                self.transit_extra_edge_prob,
                (base_x, 0.0),
                rng,
            );
            transit_nodes.extend(&members);
            domains.push(members);
        }
        // Interconnect transit domains in a chain plus one random extra edge
        // per adjacent pair (simplified GT-ITM inter-domain wiring).
        for w in 0..self.transit_domains.saturating_sub(1) {
            let a = *rng.choose(&domains[w]).expect("domains are non-empty");
            let b = *rng.choose(&domains[w + 1]).expect("domains are non-empty");
            let _ = g.add_link(a, b);
        }

        // Stub domains hanging off each transit node.
        let mut stub_nodes: Vec<NodeId> = Vec::new();
        let mut stub_domains: Vec<StubDomain> = Vec::new();
        for (t_idx, &t) in transit_nodes.iter().enumerate() {
            for s in 0..self.stubs_per_transit_node {
                let members = random_connected_subgraph(
                    &mut g,
                    self.stub_nodes_per_domain,
                    self.stub_extra_edge_prob,
                    (t_idx as f64, 1.0 + s as f64),
                    rng,
                );
                let gateway = *rng.choose(&members).expect("stub is non-empty");
                g.add_link(t, gateway)
                    .expect("stub gateway link cannot duplicate");
                stub_nodes.extend(&members);
                stub_domains.push(StubDomain {
                    transit_index: t_idx,
                    members,
                });
            }
        }
        debug_assert!(metrics::is_connected(&g));
        Ok(TransitStub {
            graph: g,
            transit_nodes,
            stub_nodes,
            stub_domains,
        })
    }
}

/// One stub domain and the transit router it hangs off.
#[derive(Debug, Clone)]
pub struct StubDomain {
    /// Index into [`TransitStub::transit_nodes`] of the attachment router.
    pub transit_index: usize,
    /// The stub domain's routers.
    pub members: Vec<NodeId>,
}

/// A generated transit-stub topology with its node classification.
#[derive(Debug, Clone)]
pub struct TransitStub {
    /// The network graph.
    pub graph: Graph,
    /// Transit (core) routers.
    pub transit_nodes: Vec<NodeId>,
    /// Stub (edge) routers.
    pub stub_nodes: Vec<NodeId>,
    /// Stub domains, each tagged with its transit attachment router — the
    /// hierarchy the natural partition cuts along.
    pub stub_domains: Vec<StubDomain>,
}

impl TransitStub {
    /// Whether `n` is a transit router.
    pub fn is_transit(&self, n: NodeId) -> bool {
        self.transit_nodes.contains(&n)
    }

    /// The hierarchy's natural cut into `shards` regions: transit router
    /// `t` and every stub domain hanging off it form region `t % shards`.
    /// Intra-stub traffic stays inside one shard; only paths crossing the
    /// transit core touch several. Deterministic — no RNG involved.
    ///
    /// `shards` is clamped to at least 1; asking for more shards than
    /// transit routers leaves the excess shards empty of nodes, so it is
    /// clamped to the transit-router count too.
    pub fn natural_partition(&self, shards: usize) -> Partition {
        let shards = shards.clamp(1, self.transit_nodes.len().max(1));
        let mut node_shard = vec![0usize; self.graph.node_count()];
        for (t_idx, &t) in self.transit_nodes.iter().enumerate() {
            node_shard[t.index()] = t_idx % shards;
        }
        for domain in &self.stub_domains {
            let s = domain.transit_index % shards;
            for &n in &domain.members {
                node_shard[n.index()] = s;
            }
        }
        Partition::from_node_assignment(&self.graph, shards, node_shard)
            .expect("assignment is total and in range by construction")
    }
}

/// Adds `n` new nodes (placed near `origin` for display), wires a random
/// spanning tree over them, and adds each remaining pair with probability
/// `extra_prob`. Returns the member list.
fn random_connected_subgraph(
    g: &mut Graph,
    n: usize,
    extra_prob: f64,
    origin: (f64, f64),
    rng: &mut Rng,
) -> Vec<NodeId> {
    let members: Vec<NodeId> = (0..n)
        .map(|_| {
            g.add_node_at(
                origin.0 + 0.5 * rng.next_f64(),
                origin.1 + 0.5 * rng.next_f64(),
            )
        })
        .collect();
    // Random spanning tree: attach each node (after the first) to a random
    // earlier node.
    for i in 1..n {
        let j = rng.range_usize(i);
        g.add_link(members[i], members[j])
            .expect("tree edges are fresh");
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if g.link_between(members[i], members[j]).is_none() && rng.chance(extra_prob) {
                g.add_link(members[i], members[j])
                    .expect("checked for duplicates");
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(777)
    }

    #[test]
    fn paper_default_has_100_nodes() {
        let cfg = TransitStubConfig::paper_default();
        assert_eq!(cfg.total_nodes(), 100);
        let ts = cfg.generate(&mut rng()).unwrap();
        assert_eq!(ts.graph.node_count(), 100);
        assert_eq!(ts.transit_nodes.len(), 4);
        assert_eq!(ts.stub_nodes.len(), 96);
        assert!(metrics::is_connected(&ts.graph));
    }

    #[test]
    fn classification_is_consistent() {
        let ts = TransitStubConfig::paper_default()
            .generate(&mut rng())
            .unwrap();
        for &t in &ts.transit_nodes {
            assert!(ts.is_transit(t));
        }
        for &s in &ts.stub_nodes {
            assert!(!ts.is_transit(s));
        }
    }

    #[test]
    fn multi_transit_domains_connect() {
        let cfg = TransitStubConfig {
            transit_domains: 3,
            transit_nodes_per_domain: 2,
            stubs_per_transit_node: 1,
            stub_nodes_per_domain: 3,
            transit_extra_edge_prob: 0.5,
            stub_extra_edge_prob: 0.5,
        };
        let ts = cfg.generate(&mut rng()).unwrap();
        assert_eq!(ts.graph.node_count(), cfg.total_nodes());
        assert!(metrics::is_connected(&ts.graph));
    }

    #[test]
    fn rejects_zero_counts_and_bad_probs() {
        let mut cfg = TransitStubConfig::paper_default();
        cfg.transit_domains = 0;
        assert!(cfg.generate(&mut rng()).is_err());

        let mut cfg = TransitStubConfig::paper_default();
        cfg.stub_nodes_per_domain = 0;
        assert!(cfg.generate(&mut rng()).is_err());

        let mut cfg = TransitStubConfig::paper_default();
        cfg.stub_extra_edge_prob = 1.5;
        assert!(cfg.generate(&mut rng()).is_err());
    }

    #[test]
    fn stub_traffic_must_cross_transit() {
        // In a 1-transit-domain graph, remove the transit nodes and stubs
        // from *different* transit routers should be disconnected.
        let ts = TransitStubConfig::paper_default()
            .generate(&mut rng())
            .unwrap();
        let g = &ts.graph;
        // BFS from a stub of transit node 0, forbidding links that touch any
        // transit node: should reach at most its own stub domain.
        let first_stub = ts.stub_nodes[0];
        let transit: std::collections::HashSet<NodeId> = ts.transit_nodes.iter().copied().collect();
        let filter = |l: crate::graph::LinkId| {
            let link = g.link(l);
            !transit.contains(&link.a()) && !transit.contains(&link.b())
        };
        let reached = g
            .nodes()
            .filter(|&n| crate::paths::bfs_path(g, first_stub, n, &filter).is_some())
            .count();
        assert!(
            reached <= ts.stub_nodes.len() / 2,
            "stub reached {reached} nodes without crossing transit"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TransitStubConfig::paper_default();
        let a = cfg.generate(&mut Rng::seed_from_u64(9)).unwrap();
        let b = cfg.generate(&mut Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a.graph.link_count(), b.graph.link_count());
    }

    #[test]
    fn natural_partition_follows_the_hierarchy() {
        let ts = TransitStubConfig::paper_default()
            .generate(&mut rng())
            .unwrap();
        let p = ts.natural_partition(4);
        assert_eq!(p.shards(), 4);
        // Each stub router shares its shard with its attachment transit
        // router: intra-stub traffic never crosses shards.
        for domain in &ts.stub_domains {
            let t = ts.transit_nodes[domain.transit_index];
            for &n in &domain.members {
                assert_eq!(
                    p.shard_of_node(n),
                    p.shard_of_node(t),
                    "stub router split from its transit region"
                );
            }
        }
        // The cut is balanced: 1 transit router + 24 stub routers each.
        assert_eq!(p.shard_sizes(), vec![25, 25, 25, 25]);
        // Deterministic (no RNG involved).
        assert_eq!(ts.natural_partition(4), ts.natural_partition(4));
        // Clamped to the transit-router count.
        assert_eq!(ts.natural_partition(64).shards(), 4);
        assert_eq!(ts.natural_partition(0).shards(), 1);
    }
}
