//! Graph partitions for sharded admission.
//!
//! A [`Partition`] assigns every node and every link of a graph to exactly
//! one shard. The sharded network engine (`drqos-core`) uses it to decide
//! which shard owns which links, which shard a request "belongs" to, and —
//! critically — the **lock order** for cross-shard two-phase commits:
//! [`Partition::touched_shards`] returns shard indices sorted ascending,
//! and every committer acquires shard locks in exactly that order, so the
//! lock order is a total order and deadlock is impossible by construction.
//!
//! Two constructions are provided:
//!
//! * [`Partition::seeded_bfs`] — a deterministic round-robin multi-source
//!   BFS that works on any graph (the fuzzer's Waxman scenarios use it);
//! * [`crate::transit_stub::TransitStub::natural_partition`] — the
//!   transit-stub hierarchy's natural cut: each transit router and the stub
//!   domains hanging off it form a region.
//!
//! Link ownership is derived from node ownership: a link belongs to the
//! shard of its lower-indexed endpoint. This is a deterministic total
//! function of the node assignment, so two partitions built from the same
//! assignment agree on every link.

use crate::error::TopologyError;
use crate::graph::{Graph, LinkId, NodeId};
use drqos_sim::rng::Rng;
use std::collections::VecDeque;

/// A total assignment of a graph's nodes and links to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    node_shard: Vec<usize>,
    link_shard: Vec<usize>,
}

impl Partition {
    /// Builds a partition from an explicit node assignment. Link ownership
    /// is derived: each link goes to the shard of its lower-indexed
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if `shards` is zero, the
    /// assignment length does not match the graph's node count, or any
    /// entry names a shard `>= shards`.
    pub fn from_node_assignment(
        graph: &Graph,
        shards: usize,
        node_shard: Vec<usize>,
    ) -> Result<Self, TopologyError> {
        if shards == 0 {
            return Err(TopologyError::InvalidParameter(
                "partition needs at least one shard".into(),
            ));
        }
        if node_shard.len() != graph.node_count() {
            return Err(TopologyError::InvalidParameter(format!(
                "node assignment covers {} nodes but the graph has {}",
                node_shard.len(),
                graph.node_count()
            )));
        }
        if let Some(&bad) = node_shard.iter().find(|&&s| s >= shards) {
            return Err(TopologyError::InvalidParameter(format!(
                "node assigned to shard {bad} but only {shards} shard(s) exist"
            )));
        }
        let link_shard = graph
            .links()
            .map(|l| {
                let (a, b) = l.endpoints();
                let owner = if a.index() <= b.index() { a } else { b };
                node_shard[owner.index()]
            })
            .collect();
        Ok(Partition {
            shards,
            node_shard,
            link_shard,
        })
    }

    /// A deterministic balanced partition of any graph: `shards` seed nodes
    /// are drawn from a seeded RNG, then grown breadth-first in round-robin
    /// order (shard 0 claims one frontier node, then shard 1, ...) until
    /// every reachable node is claimed. Nodes unreachable from every seed
    /// (disconnected graphs) fall back to `index % shards`. The result is a
    /// pure function of `(graph, shards, seed)`.
    ///
    /// `shards` is clamped to the node count (an empty graph yields the
    /// trivial one-shard partition).
    pub fn seeded_bfs(graph: &Graph, shards: usize, seed: u64) -> Self {
        let n = graph.node_count();
        let shards = shards.clamp(1, n.max(1));
        let mut node_shard = vec![usize::MAX; n];
        let mut queues: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); shards];
        let mut rng = Rng::seed_from_u64(seed);
        // Distinct seed nodes, chosen deterministically.
        let mut unclaimed: Vec<NodeId> = graph.nodes().collect();
        for (s, queue) in queues.iter_mut().enumerate() {
            if unclaimed.is_empty() {
                break;
            }
            let pick = rng.range_usize(unclaimed.len());
            let node = unclaimed.swap_remove(pick);
            node_shard[node.index()] = s;
            queue.push_back(node);
        }
        // Round-robin BFS growth: each shard claims at most one node per
        // turn, so shard sizes stay balanced on connected graphs.
        let mut active = true;
        while active {
            active = false;
            for (s, queue) in queues.iter_mut().enumerate() {
                let Some(node) = queue.pop_front() else {
                    continue;
                };
                active = true;
                for &(next, _) in graph.neighbors(node) {
                    if node_shard[next.index()] == usize::MAX {
                        node_shard[next.index()] = s;
                        queue.push_back(next);
                    }
                }
                // Keep expanding from this node next turn until all of its
                // neighbours are claimed (one claim per turn would also
                // work; re-queueing keeps the loop simple and still fair).
                if graph
                    .neighbors(node)
                    .iter()
                    .any(|&(m, _)| node_shard[m.index()] == usize::MAX)
                {
                    queue.push_front(node);
                }
            }
        }
        for (i, s) in node_shard.iter_mut().enumerate() {
            if *s == usize::MAX {
                *s = i % shards;
            }
        }
        Self::from_node_assignment(graph, shards, node_shard)
            .expect("constructed assignment is total and in range") // lint:allow(panic-reachability): node_shard was just filled to be total and in range
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node` (`0` for out-of-range ids, which the engine
    /// rejects before consulting the partition).
    pub fn shard_of_node(&self, node: NodeId) -> usize {
        self.node_shard.get(node.index()).copied().unwrap_or(0)
    }

    /// The shard owning `link` (`0` for out-of-range ids).
    pub fn shard_of_link(&self, link: LinkId) -> usize {
        self.link_shard.get(link.index()).copied().unwrap_or(0)
    }

    /// Nodes per shard, for balance inspection.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.node_shard {
            sizes[s] += 1;
        }
        sizes
    }

    /// The set of shards a set of links touches, **sorted ascending and
    /// deduplicated** — this is the canonical cross-shard lock order. Every
    /// two-phase committer acquires shard locks in exactly this order;
    /// because the order is a total order over shard indices, no two
    /// committers can ever wait on each other in a cycle.
    pub fn touched_shards(&self, links: impl IntoIterator<Item = LinkId>) -> Vec<usize> {
        let mut shards: Vec<usize> = links.into_iter().map(|l| self.shard_of_link(l)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waxman;

    fn waxman_graph(seed: u64) -> Graph {
        waxman::paper_waxman(40)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap()
    }

    /// Satellite property: every link is owned by exactly one shard, for
    /// many seeds and shard counts. (Ownership is a total function, so
    /// "exactly one" means: defined for every link and always in range.)
    #[test]
    fn every_link_owned_by_exactly_one_shard() {
        for seed in 0..20u64 {
            let g = waxman_graph(seed);
            for shards in [1usize, 2, 3, 4, 7] {
                let p = Partition::seeded_bfs(&g, shards, seed ^ 0xD5);
                for l in g.links() {
                    let s = p.shard_of_link(l.id());
                    assert!(s < shards, "link {:?} -> shard {s} of {shards}", l.id());
                    // The owner must be the shard of one of the endpoints —
                    // a link cannot belong to a shard touching neither end.
                    let (a, b) = l.endpoints();
                    assert!(
                        s == p.shard_of_node(a) || s == p.shard_of_node(b),
                        "link {:?} owned by a shard touching neither endpoint",
                        l.id()
                    );
                }
            }
        }
    }

    /// Satellite property: the partition is a pure function of
    /// `(graph, shards, seed)`.
    #[test]
    fn partitions_are_stable_under_a_fixed_seed() {
        for seed in 0..10u64 {
            let g1 = waxman_graph(seed);
            let g2 = waxman_graph(seed);
            let a = Partition::seeded_bfs(&g1, 4, 99);
            let b = Partition::seeded_bfs(&g2, 4, 99);
            assert_eq!(a, b, "seed {seed}: partition must be deterministic");
            let c = Partition::seeded_bfs(&g1, 4, 100);
            // Different seeds are allowed to agree on tiny graphs, but on a
            // 40-node Waxman at least one node should move.
            assert_ne!(a, c, "seed {seed}: partition ignored its seed");
        }
    }

    /// Satellite property: the cross-shard lock order is a total order —
    /// `touched_shards` is sorted, duplicate-free, and agrees for any two
    /// link sets on their common shards, so no two committers can acquire
    /// a pair of shard locks in opposite orders.
    #[test]
    fn cross_shard_lock_order_is_a_total_order() {
        for seed in 0..10u64 {
            let g = waxman_graph(seed);
            let p = Partition::seeded_bfs(&g, 4, seed);
            let all: Vec<LinkId> = g.links().map(|l| l.id()).collect();
            let mut rng = Rng::seed_from_u64(seed ^ 0xAB);
            for _ in 0..50 {
                let take_a = 1 + rng.range_usize(all.len());
                let take_b = 1 + rng.range_usize(all.len());
                let set_a: Vec<LinkId> = (0..take_a)
                    .map(|_| all[rng.range_usize(all.len())])
                    .collect();
                let set_b: Vec<LinkId> = (0..take_b)
                    .map(|_| all[rng.range_usize(all.len())])
                    .collect();
                let order_a = p.touched_shards(set_a.iter().copied());
                let order_b = p.touched_shards(set_b.iter().copied());
                for order in [&order_a, &order_b] {
                    assert!(
                        order.windows(2).all(|w| w[0] < w[1]),
                        "not sorted: {order:?}"
                    );
                }
                // Total order: the shared shards appear in the same relative
                // order in both acquisition sequences.
                let common: Vec<usize> = order_a
                    .iter()
                    .copied()
                    .filter(|s| order_b.contains(s))
                    .collect();
                let common_b: Vec<usize> = order_b
                    .iter()
                    .copied()
                    .filter(|s| order_a.contains(s))
                    .collect();
                assert_eq!(common, common_b, "lock orders disagree");
            }
        }
    }

    #[test]
    fn seeded_bfs_balances_connected_graphs() {
        let g = waxman_graph(3);
        let p = Partition::seeded_bfs(&g, 4, 1);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), g.node_count());
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every shard should claim nodes on a connected graph: {sizes:?}"
        );
    }

    #[test]
    fn shard_count_is_clamped_to_node_count() {
        let g = waxman_graph(5);
        let p = Partition::seeded_bfs(&g, 1_000, 1);
        assert!(p.shards() <= g.node_count());
        let p1 = Partition::seeded_bfs(&g, 1, 1);
        assert_eq!(p1.shards(), 1);
        assert!(g.links().all(|l| p1.shard_of_link(l.id()) == 0));
    }

    #[test]
    fn from_node_assignment_rejects_bad_inputs() {
        let g = waxman_graph(6);
        assert!(Partition::from_node_assignment(&g, 0, vec![0; g.node_count()]).is_err());
        assert!(Partition::from_node_assignment(&g, 2, vec![0; g.node_count() - 1]).is_err());
        let mut bad = vec![0usize; g.node_count()];
        bad[3] = 2;
        assert!(Partition::from_node_assignment(&g, 2, bad).is_err());
    }
}
