//! Graph metrics reported by the paper: edge count, average degree,
//! diameter, and average hop count.
//!
//! The paper characterizes its headline topology as "100 nodes, 354 edges,
//! average degree of connection 3.48, average diameter 8"; these functions
//! let the benches verify the calibrated generators reproduce those
//! statistics.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Average node degree, `2·E / N`. Zero for an empty graph.
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        0.0
    } else {
        2.0 * graph.link_count() as f64 / graph.node_count() as f64
    }
}

/// Hop distances from `src` to every node (`None` = unreachable).
pub fn bfs_distances(graph: &Graph, src: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[src.0] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.0].expect("queued nodes have distances");
        for &(v, _) in graph.neighbors(u) {
            if dist[v.0].is_none() {
                dist[v.0] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected (vacuously true when empty).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    bfs_distances(graph, NodeId(0)).iter().all(Option::is_some)
}

/// The connected components, each a sorted list of nodes.
pub fn components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; graph.node_count()];
    let mut out = Vec::new();
    for start in graph.nodes() {
        if seen[start.0] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.0] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &(v, _) in graph.neighbors(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// The diameter (longest shortest path, in hops).
///
/// Returns `None` for an empty or disconnected graph.
pub fn diameter(graph: &Graph) -> Option<usize> {
    if graph.node_count() == 0 {
        return None;
    }
    let mut max = 0;
    for src in graph.nodes() {
        for d in bfs_distances(graph, src) {
            max = max.max(d?);
        }
    }
    Some(max)
}

/// Average shortest-path hop count over all ordered node pairs.
///
/// Returns `None` for a disconnected graph or fewer than two nodes.
pub fn average_hop_count(graph: &Graph) -> Option<f64> {
    let n = graph.node_count();
    if n < 2 {
        return None;
    }
    let mut total = 0usize;
    for src in graph.nodes() {
        for (i, d) in bfs_distances(graph, src).iter().enumerate() {
            if i != src.0 {
                total += (*d)?;
            }
        }
    }
    Some(total as f64 / (n * (n - 1)) as f64)
}

/// A compact statistical summary of a topology, as the paper reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Node count.
    pub nodes: usize,
    /// Link (edge) count.
    pub edges: usize,
    /// Average degree `2E/N`.
    pub average_degree: f64,
    /// Diameter in hops (`None` if disconnected).
    pub diameter: Option<usize>,
    /// Mean shortest-path hops (`None` if disconnected).
    pub average_hops: Option<f64>,
}

/// Computes a [`TopologySummary`] (O(N·E); fine for the ≤500-node graphs
/// used in the experiments).
pub fn summarize(graph: &Graph) -> TopologySummary {
    TopologySummary {
        nodes: graph.node_count(),
        edges: graph.link_count(),
        average_degree: average_degree(graph),
        diameter: diameter(graph),
        average_hops: average_hop_count(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular;

    #[test]
    fn average_degree_ring() {
        let g = regular::ring(10).unwrap();
        assert_eq!(average_degree(&g), 2.0);
    }

    #[test]
    fn average_degree_empty() {
        assert_eq!(average_degree(&Graph::new()), 0.0);
    }

    #[test]
    fn bfs_distances_line() {
        let g = regular::grid(1, 4).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn connectivity() {
        let g = regular::ring(4).unwrap();
        assert!(is_connected(&g));
        let mut h = Graph::with_nodes(2);
        assert!(!is_connected(&h));
        h.add_link(NodeId(0), NodeId(1)).unwrap();
        assert!(is_connected(&h));
        assert!(is_connected(&Graph::new()));
    }

    #[test]
    fn components_split() {
        let mut g = Graph::with_nodes(5);
        g.add_link(NodeId(0), NodeId(1)).unwrap();
        g.add_link(NodeId(2), NodeId(3)).unwrap();
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }

    #[test]
    fn diameter_ring() {
        let g = regular::ring(8).unwrap();
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn diameter_disconnected_none() {
        let g = Graph::with_nodes(3);
        assert_eq!(diameter(&g), None);
        assert_eq!(average_hop_count(&g), None);
    }

    #[test]
    fn average_hops_complete() {
        let g = regular::complete(6).unwrap();
        assert_eq!(average_hop_count(&g), Some(1.0));
    }

    #[test]
    fn average_hops_line3() {
        // 0-1-2: distances 1,2,1,1,2,1 → avg 8/6.
        let g = regular::grid(1, 3).unwrap();
        let avg = average_hop_count(&g).unwrap();
        assert!((avg - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn summary_consistency() {
        let g = regular::torus(3, 3).unwrap();
        let s = summarize(&g);
        assert_eq!(s.nodes, 9);
        assert_eq!(s.edges, 18);
        assert_eq!(s.average_degree, 4.0);
        assert_eq!(s.diameter, Some(2));
        assert!(s.average_hops.unwrap() > 1.0);
    }
}
