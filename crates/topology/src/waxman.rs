//! Waxman random topology generation (Waxman, JSAC 1988), the "Random"
//! network model of the paper's evaluation (via the GT-ITM package).
//!
//! Nodes are placed uniformly at random in the unit square; a link between
//! `u` and `v` is created with probability
//!
//! ```text
//! P(u, v) = α · exp( −d(u, v) / (β · L) )
//! ```
//!
//! where `d` is Euclidean distance and `L` is the diagonal of the domain
//! (the maximum possible distance).
//!
//! ## Parameter calibration vs. the paper
//!
//! The paper states "Waxman distribution with parameters α = 0.33 and β = 0"
//! and reports the resulting graph as 100 nodes / 354 edges / average degree
//! 3.48. Under the standard formula above, `β = 0` yields *no* edges, so the
//! paper's GT-ITM build evidently used a different parameter convention.
//! Rather than guess the convention, [`calibrate_beta`] searches for the
//! `β` that reproduces the paper's *reported graph statistics* (354 edges at
//! `α = 0.33`, which lands near `β ≈ 0.24`). The benches use the calibrated
//! value so that the substrate matches the paper's actual evaluation
//! network, which is what matters for the results.

use crate::error::TopologyError;
use crate::graph::Graph;
use crate::metrics;
use drqos_sim::rng::Rng;

/// Configuration for the Waxman generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WaxmanConfig {
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// Edge-probability scale `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Distance decay `β ∈ (0, 1]`; larger values weaken the distance bias.
    /// The decay length is `β·√2` in *reference* units (the diagonal of a
    /// unit domain) regardless of `domain_side`, so growing the domain at
    /// constant node density keeps the local link structure fixed — this is
    /// what produces the paper's near-linear edge growth in Figure 3.
    pub beta: f64,
    /// Side length of the square placement domain (default 1.0). Set to
    /// `sqrt(nodes / 100)` to grow a 100-node reference network at constant
    /// density (see [`paper_waxman_scaled`]).
    pub domain_side: f64,
    /// If true (default), bridge disconnected components with extra links
    /// between their closest node pairs so the result is connected.
    pub ensure_connected: bool,
}

impl WaxmanConfig {
    /// Creates a config over the unit square with connectivity patching
    /// enabled.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if `nodes < 2` or either
    /// parameter is outside `(0, 1]`.
    pub fn new(nodes: usize, alpha: f64, beta: f64) -> Result<Self, TopologyError> {
        let cfg = Self {
            nodes,
            alpha,
            beta,
            domain_side: 1.0,
            ensure_connected: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), TopologyError> {
        if self.nodes < 2 {
            return Err(TopologyError::InvalidParameter(format!(
                "Waxman graph needs at least 2 nodes, got {}",
                self.nodes
            )));
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(TopologyError::InvalidParameter(format!(
                    "Waxman {name} must be in (0, 1], got {v}"
                )));
            }
        }
        if !self.domain_side.is_finite() || self.domain_side <= 0.0 {
            return Err(TopologyError::InvalidParameter(format!(
                "Waxman domain_side must be finite and positive, got {}",
                self.domain_side
            )));
        }
        Ok(())
    }

    /// Generates a graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if the configuration is
    /// invalid (see [`WaxmanConfig::new`]).
    pub fn generate(&self, rng: &mut Rng) -> Result<Graph, TopologyError> {
        self.validate()?;
        let mut g = Graph::new();
        for _ in 0..self.nodes {
            g.add_node_at(
                self.domain_side * rng.next_f64(),
                self.domain_side * rng.next_f64(),
            );
        }
        // Decay length in reference units — see the `beta` field docs.
        let l = 2f64.sqrt();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                let a = crate::graph::NodeId(i);
                let b = crate::graph::NodeId(j);
                let d = g.distance(a, b).expect("generator assigns positions");
                let p = self.alpha * (-d / (self.beta * l)).exp();
                if rng.chance(p) {
                    g.add_link(a, b).expect("pairs are visited once");
                }
            }
        }
        if self.ensure_connected {
            bridge_components(&mut g);
        }
        Ok(g)
    }
}

/// Connects a graph by repeatedly adding a link between the geometrically
/// closest pair of nodes in different components.
///
/// A cheap stand-in for GT-ITM's "regenerate until connected" loop that
/// perturbs the degree distribution by at most (#components − 1) links.
pub fn bridge_components(g: &mut Graph) {
    loop {
        let comps = metrics::components(g);
        if comps.len() <= 1 {
            return;
        }
        // Join the first component to its nearest other component.
        let mut best: Option<(f64, crate::graph::NodeId, crate::graph::NodeId)> = None;
        for &u in &comps[0] {
            for comp in &comps[1..] {
                for &v in comp {
                    let d = g.distance(u, v).unwrap_or(1.0);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
        }
        let (_, u, v) = best.expect("at least two components");
        g.add_link(u, v)
            .expect("cross-component link cannot duplicate");
    }
}

/// Finds a `β` such that Waxman graphs with the given `nodes`/`alpha`
/// produce approximately `target_edges` edges (averaged over `trials`
/// sample graphs per probe).
///
/// Used to match the paper's reported topology statistics (see the module
/// docs). Returns the calibrated β.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] for nonsensical inputs
/// (fewer than 2 nodes, zero target, zero trials, or `alpha` out of range).
pub fn calibrate_beta(
    nodes: usize,
    alpha: f64,
    target_edges: usize,
    trials: usize,
    rng: &mut Rng,
) -> Result<f64, TopologyError> {
    if nodes < 2 || target_edges == 0 || trials == 0 {
        return Err(TopologyError::InvalidParameter(
            "calibration requires nodes ≥ 2, target_edges ≥ 1, trials ≥ 1".into(),
        ));
    }
    if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
        return Err(TopologyError::InvalidParameter(format!(
            "alpha must be in (0, 1], got {alpha}"
        )));
    }
    let mean_edges = |beta: f64, rng: &mut Rng| -> f64 {
        let mut cfg = WaxmanConfig::new(nodes, alpha, beta).expect("validated above");
        cfg.ensure_connected = false; // bridging would bias the count
        let total: usize = (0..trials)
            .map(|_| cfg.generate(rng).expect("valid config").link_count())
            .sum();
        total as f64 / trials as f64
    };
    // Edge count is monotonically increasing in β; bisect on (0, 1].
    let (mut lo, mut hi) = (1e-3, 1.0);
    if mean_edges(hi, rng) < target_edges as f64 {
        return Ok(hi); // best achievable at this alpha
    }
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if mean_edges(mid, rng) < target_edges as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The Waxman configuration used throughout the paper's evaluation,
/// calibrated against the paper's reported topology statistics for the
/// 100-node network (354 edges / E÷N "degree of connection" ≈ 3.5):
/// `α = 1.0`, `β = 0.0903` (fixed rather than re-calibrated per run so
/// experiments are reproducible). We choose the most-local parameterization
/// that matches the edge count because the paper's diameter of 8 indicates
/// strongly distance-biased links; a unit square caps our diameter near 6,
/// which EXPERIMENTS.md records as a known (minor) deviation.
pub fn paper_waxman(nodes: usize) -> WaxmanConfig {
    WaxmanConfig {
        nodes,
        alpha: 1.0,
        beta: 0.0903,
        domain_side: 1.0,
        ensure_connected: true,
    }
}

/// The paper's Waxman model grown to `nodes` at *constant node density*
/// (domain side `sqrt(nodes / 100)`), matching Figure 3's near-linear edge
/// growth ("the number of edges increases rapidly with the number of nodes
/// when the parameters of the Waxman distribution remain unchanged").
pub fn paper_waxman_scaled(nodes: usize) -> WaxmanConfig {
    WaxmanConfig {
        domain_side: (nodes as f64 / 100.0).sqrt(),
        ..paper_waxman(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(20010425)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(WaxmanConfig::new(1, 0.5, 0.5).is_err());
        assert!(WaxmanConfig::new(10, 0.0, 0.5).is_err());
        assert!(WaxmanConfig::new(10, 0.5, 0.0).is_err());
        assert!(WaxmanConfig::new(10, 1.5, 0.5).is_err());
        assert!(WaxmanConfig::new(10, 0.5, f64::NAN).is_err());
    }

    #[test]
    fn generates_requested_node_count() {
        let g = WaxmanConfig::new(50, 0.5, 0.5)
            .unwrap()
            .generate(&mut rng())
            .unwrap();
        assert_eq!(g.node_count(), 50);
        assert!(g.nodes().all(|n| g.position(n).is_some()));
    }

    #[test]
    fn connectivity_patch_connects() {
        let cfg = WaxmanConfig::new(60, 0.1, 0.05).unwrap(); // sparse
        let g = cfg.generate(&mut rng()).unwrap();
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn without_patch_can_be_disconnected() {
        let mut cfg = WaxmanConfig::new(60, 0.05, 0.05).unwrap();
        cfg.ensure_connected = false;
        // With these parameters, essentially certain to be disconnected.
        let g = cfg.generate(&mut rng()).unwrap();
        assert!(!metrics::is_connected(&g));
    }

    #[test]
    fn denser_beta_gives_more_edges() {
        let mut r = rng();
        let sparse = WaxmanConfig {
            ensure_connected: false,
            ..WaxmanConfig::new(80, 0.33, 0.1).unwrap()
        }
        .generate(&mut r)
        .unwrap();
        let dense = WaxmanConfig {
            ensure_connected: false,
            ..WaxmanConfig::new(80, 0.33, 0.9).unwrap()
        }
        .generate(&mut r)
        .unwrap();
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = WaxmanConfig::new(40, 0.3, 0.3).unwrap();
        let g1 = cfg.generate(&mut Rng::seed_from_u64(5)).unwrap();
        let g2 = cfg.generate(&mut Rng::seed_from_u64(5)).unwrap();
        assert_eq!(g1.link_count(), g2.link_count());
        assert_eq!(
            g1.links().map(|l| l.endpoints()).collect::<Vec<_>>(),
            g2.links().map(|l| l.endpoints()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_waxman_matches_reported_statistics() {
        // The paper's graph: 100 nodes, 354 edges, "degree of connection"
        // (E/N) 3.48.
        let mut r = rng();
        let mut edges = 0usize;
        let runs = 8;
        for _ in 0..runs {
            let g = paper_waxman(100).generate(&mut r).unwrap();
            assert!(metrics::is_connected(&g));
            edges += g.link_count();
        }
        let mean = edges as f64 / runs as f64;
        assert!(
            (mean - 354.0).abs() < 45.0,
            "mean edge count {mean} too far from the paper's 354"
        );
    }

    #[test]
    fn scaled_waxman_grows_edges_near_linearly() {
        // Figure 3's dotted line: edges grow roughly linearly with nodes at
        // constant density, not quadratically.
        let mut r = rng();
        let e100 = paper_waxman_scaled(100)
            .generate(&mut r)
            .unwrap()
            .link_count() as f64;
        let e400 = paper_waxman_scaled(400)
            .generate(&mut r)
            .unwrap()
            .link_count() as f64;
        let ratio = e400 / e100;
        assert!(
            (2.5..7.0).contains(&ratio),
            "edge growth ratio {ratio} not near-linear (expected ≈4)"
        );
    }

    #[test]
    fn domain_side_rejected_if_not_positive() {
        let mut cfg = WaxmanConfig::new(10, 0.5, 0.5).unwrap();
        cfg.domain_side = 0.0;
        assert!(cfg.generate(&mut rng()).is_err());
    }

    #[test]
    fn calibrate_beta_hits_target() {
        let mut r = rng();
        let beta = calibrate_beta(100, 0.33, 354, 3, &mut r).unwrap();
        let mut cfg = WaxmanConfig::new(100, 0.33, beta).unwrap();
        cfg.ensure_connected = false;
        let mean: f64 = (0..6)
            .map(|_| cfg.generate(&mut r).unwrap().link_count() as f64)
            .sum::<f64>()
            / 6.0;
        assert!(
            (mean - 354.0).abs() < 40.0,
            "calibrated beta {beta} gives mean edges {mean}"
        );
    }

    #[test]
    fn calibrate_beta_rejects_bad_inputs() {
        let mut r = rng();
        assert!(calibrate_beta(1, 0.3, 10, 1, &mut r).is_err());
        assert!(calibrate_beta(10, 0.3, 0, 1, &mut r).is_err());
        assert!(calibrate_beta(10, 0.3, 10, 0, &mut r).is_err());
        assert!(calibrate_beta(10, 0.0, 10, 1, &mut r).is_err());
    }

    #[test]
    fn calibrate_beta_saturates_at_one() {
        // Target far above what alpha can ever produce → returns 1.0.
        let mut r = rng();
        let beta = calibrate_beta(10, 0.01, 1000, 1, &mut r).unwrap();
        assert_eq!(beta, 1.0);
    }

    #[test]
    fn bridge_components_noop_on_connected() {
        let mut g = crate::regular::ring(5).unwrap();
        let before = g.link_count();
        bridge_components(&mut g);
        assert_eq!(g.link_count(), before);
    }
}
