//! The undirected network graph at the heart of the workspace.
//!
//! Nodes model routers/switches; links model bidirectional physical links.
//! (Real-time channels are unidirectional virtual circuits, but they reserve
//! bandwidth on the underlying physical links, which the paper treats as a
//! single shared capacity — so an undirected multigraph-free simple graph is
//! the right substrate.)

use crate::error::TopologyError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (index into the graph's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected link (index into the graph's link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An undirected link between two distinct nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    id: LinkId,
    a: NodeId,
    b: NodeId,
}

impl Link {
    /// This link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// One endpoint (the lower-numbered one).
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The other endpoint (the higher-numbered one).
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Both endpoints as a pair.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n} is not an endpoint of {}", self.id)
        }
    }

    /// Whether `n` is one of this link's endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }
}

/// An undirected simple graph with optional 2-D node coordinates.
///
/// Coordinates are set by the random-topology generators (Waxman placement)
/// and used only to compute edge probabilities and for display; all routing
/// is hop- or weight-based.
///
/// # Examples
///
/// ```
/// use drqos_topology::graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let l = g.add_link(a, b)?;
/// assert_eq!(g.link(l).endpoints(), (a, b));
/// assert_eq!(g.degree(a), 1);
/// # Ok::<(), drqos_topology::error::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    positions: Vec<Option<(f64, f64)>>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    /// Fast lookup of the link between an (ordered) node pair (derived
    /// state; rebuilt on deserialization).
    pair_index: HashMap<(NodeId, NodeId), LinkId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated, position-less nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Adds a node with no position; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.positions.push(None);
        self.adjacency.push(Vec::new());
        NodeId(self.positions.len() - 1)
    }

    /// Adds a node at coordinates `(x, y)`; returns its id.
    pub fn add_node_at(&mut self, x: f64, y: f64) -> NodeId {
        let id = self.add_node();
        self.positions[id.0] = Some((x, y));
        id
    }

    /// The position of `node`, if one was assigned.
    pub fn position(&self, node: NodeId) -> Option<(f64, f64)> {
        self.positions.get(node.0).copied().flatten()
    }

    /// Euclidean distance between two positioned nodes.
    ///
    /// Returns `None` if either node lacks a position.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let (ax, ay) = self.position(a)?;
        let (bx, by) = self.position(b)?;
        Some(((ax - bx).powi(2) + (ay - by).powi(2)).sqrt())
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownNode`] if either endpoint is out of range.
    /// * [`TopologyError::SelfLoop`] if `a == b`.
    /// * [`TopologyError::DuplicateLink`] if the link already exists.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkId, TopologyError> {
        if a.0 >= self.node_count() {
            return Err(TopologyError::UnknownNode(a.0));
        }
        if b.0 >= self.node_count() {
            return Err(TopologyError::UnknownNode(b.0));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a.0));
        }
        let (lo, hi) = if a.0 < b.0 { (a, b) } else { (b, a) };
        if self.pair_index.contains_key(&(lo, hi)) {
            return Err(TopologyError::DuplicateLink(lo.0, hi.0));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link { id, a: lo, b: hi });
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        self.pair_index.insert((lo, hi), id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// The link between `a` and `b`, if it exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.pair_index.get(&key).copied()
    }

    /// The `(neighbor, link)` pairs adjacent to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[node.0]
    }

    /// The degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0].len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// Whether `node` is a valid id in this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.0 < self.node_count()
    }

    /// Whether `link` is a valid id in this graph.
    pub fn contains_link(&self, link: LinkId) -> bool {
        link.0 < self.link_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [LinkId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_link(a, b).unwrap();
        let bc = g.add_link(b, c).unwrap();
        let ca = g.add_link(c, a).unwrap();
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.links().count(), 0);
    }

    #[test]
    fn with_nodes_creates_isolated_nodes() {
        let g = Graph::with_nodes(5);
        assert_eq!(g.node_count(), 5);
        assert!(g.nodes().all(|n| g.degree(n) == 0));
    }

    #[test]
    fn add_link_updates_adjacency_both_ways() {
        let (g, [a, b, c], [ab, ..]) = triangle();
        assert!(g.neighbors(a).contains(&(b, ab)));
        assert!(g.neighbors(b).contains(&(a, ab)));
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(c), 2);
    }

    #[test]
    fn link_endpoints_are_normalized() {
        let mut g = Graph::with_nodes(2);
        let l = g.add_link(NodeId(1), NodeId(0)).unwrap();
        let link = g.link(l);
        assert_eq!(link.a(), NodeId(0));
        assert_eq!(link.b(), NodeId(1));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::with_nodes(1);
        assert_eq!(
            g.add_link(NodeId(0), NodeId(0)),
            Err(TopologyError::SelfLoop(0))
        );
    }

    #[test]
    fn duplicate_link_rejected_in_both_orders() {
        let mut g = Graph::with_nodes(2);
        g.add_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            g.add_link(NodeId(0), NodeId(1)),
            Err(TopologyError::DuplicateLink(0, 1))
        );
        assert_eq!(
            g.add_link(NodeId(1), NodeId(0)),
            Err(TopologyError::DuplicateLink(0, 1))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = Graph::with_nodes(1);
        assert_eq!(
            g.add_link(NodeId(0), NodeId(7)),
            Err(TopologyError::UnknownNode(7))
        );
    }

    #[test]
    fn link_between_finds_either_order() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.link_between(a, b), Some(ab));
        assert_eq!(g.link_between(b, a), Some(ab));
    }

    #[test]
    fn link_between_missing_is_none() {
        let g = Graph::with_nodes(3);
        assert_eq!(g.link_between(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn other_endpoint() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.link(ab).other(a), b);
        assert_eq!(g.link(ab).other(b), a);
        assert!(g.link(ab).touches(a));
        assert!(!g.link(ab).touches(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let (g, [_, _, c], [ab, ..]) = triangle();
        g.link(ab).other(c);
    }

    #[test]
    fn positions_and_distance() {
        let mut g = Graph::new();
        let a = g.add_node_at(0.0, 0.0);
        let b = g.add_node_at(3.0, 4.0);
        let c = g.add_node();
        assert_eq!(g.distance(a, b), Some(5.0));
        assert_eq!(g.distance(a, c), None);
        assert_eq!(g.position(c), None);
    }

    #[test]
    fn contains_checks() {
        let (g, ..) = triangle();
        assert!(g.contains_node(NodeId(2)));
        assert!(!g.contains_node(NodeId(3)));
        assert!(g.contains_link(LinkId(2)));
        assert!(!g.contains_link(LinkId(3)));
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(9).to_string(), "l9");
    }
}
