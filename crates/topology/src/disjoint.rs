//! Link-disjoint path pairs (Suurballe's algorithm).
//!
//! The backup-channel scheme needs, for each DR-connection, a primary route
//! and a *link-disjoint* backup route. The simple two-phase approach
//! (shortest path, then shortest path avoiding its links) can fail on
//! "trap" topologies where a disjoint pair exists but the shortest primary
//! blocks it. Suurballe's algorithm finds the pair with minimum *total*
//! length whenever one exists, so `drqos-core` offers it as an alternative
//! router and the benches compare the two.
//!
//! This implementation works on the directed expansion of the undirected
//! graph (each link becomes two arcs) with unit arc costs filtered by a
//! caller-supplied feasibility predicate.

use crate::graph::{Graph, LinkId, NodeId};
use crate::paths::{LinkFilter, Path};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

/// A pair of link-disjoint paths between the same endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointPair {
    /// The shorter (or equal) path — used as the primary channel route.
    pub first: Path,
    /// The other path — used as the backup channel route.
    pub second: Path,
}

impl DisjointPair {
    /// Total hop count of both paths.
    pub fn total_hops(&self) -> usize {
        self.first.hop_count() + self.second.hop_count()
    }
}

/// Directed arc: (from, to, link).
type Arc = (NodeId, NodeId, LinkId);

#[derive(Debug, PartialEq)]
struct Item {
    cost: u64,
    node: NodeId,
}

impl Eq for Item {}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra over explicit arcs with unit costs; returns (dist, parent-arc).
fn dijkstra_arcs(
    n: usize,
    src: NodeId,
    out_arcs: &dyn Fn(NodeId) -> Vec<Arc>,
) -> (Vec<u64>, Vec<Option<Arc>>) {
    let mut dist = vec![u64::MAX; n];
    let mut parent: Vec<Option<Arc>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0;
    heap.push(Item { cost: 0, node: src });
    while let Some(Item { cost, node: u }) = heap.pop() {
        if cost > dist[u.0] {
            continue;
        }
        for (from, to, link) in out_arcs(u) {
            debug_assert_eq!(from, u);
            let next = cost + 1;
            if next < dist[to.0] {
                dist[to.0] = next;
                parent[to.0] = Some((from, to, link));
                heap.push(Item {
                    cost: next,
                    node: to,
                });
            }
        }
    }
    (dist, parent)
}

/// Finds the minimum-total-hops pair of link-disjoint paths from `src` to
/// `dst`, traversing only links accepted by `filter`.
///
/// Returns `None` when no link-disjoint pair exists (including when `src`
/// and `dst` coincide or are disconnected).
///
/// # Panics
///
/// Panics if `src` or `dst` is not a node of `graph`.
pub fn suurballe(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    filter: &LinkFilter,
) -> Option<DisjointPair> {
    assert!(graph.contains_node(src) && graph.contains_node(dst));
    if src == dst {
        return None;
    }
    let n = graph.node_count();
    let base_arcs = |u: NodeId| -> Vec<Arc> {
        graph
            .neighbors(u)
            .iter()
            .filter(|&&(_, l)| filter(l))
            .map(|&(v, l)| (u, v, l))
            .collect()
    };

    // Pass 1: plain shortest path.
    let (dist1, parent1) = dijkstra_arcs(n, src, &base_arcs);
    if dist1[dst.0] == u64::MAX {
        return None;
    }
    let mut p1_arcs: Vec<Arc> = Vec::new();
    {
        let mut cur = dst;
        while cur != src {
            let arc = parent1[cur.0].expect("reachable nodes have parents"); // lint:allow(panic-reachability): dist[dst] != MAX above proves every walked node has a parent
            p1_arcs.push(arc);
            cur = arc.0;
        }
        p1_arcs.reverse();
    }
    let p1_links: HashSet<LinkId> = p1_arcs.iter().map(|&(_, _, l)| l).collect();
    let p1_forward: HashSet<(NodeId, NodeId)> = p1_arcs.iter().map(|&(a, b, _)| (a, b)).collect();

    // Pass 2: shortest path in the residual graph — forward arcs of P1
    // removed, all other arcs kept. Unit costs suffice: with the reverse
    // arcs of P1 available, any augmenting path found is still shortest in
    // arc count, and cancellation below restores feasibility. (This is the
    // standard two-iteration successive-shortest-paths formulation of
    // Suurballe for unit capacities.)
    let residual_arcs = |u: NodeId| -> Vec<Arc> {
        graph
            .neighbors(u)
            .iter()
            .filter(|&&(v, l)| {
                if !filter(l) {
                    return false;
                }
                // Remove the forward arcs of P1; its links may only be
                // traversed backwards (cancellation).
                if p1_links.contains(&l) {
                    return !p1_forward.contains(&(u, v));
                }
                true
            })
            .map(|&(v, l)| (u, v, l))
            .collect()
    };
    let (dist2, parent2) = dijkstra_arcs(n, src, &residual_arcs);
    if dist2[dst.0] == u64::MAX {
        return None;
    }
    let mut p2_arcs: Vec<Arc> = Vec::new();
    {
        let mut cur = dst;
        while cur != src {
            let arc = parent2[cur.0].expect("reachable nodes have parents"); // lint:allow(panic-reachability): dist[dst] != MAX above proves every walked node has a parent
            p2_arcs.push(arc);
            cur = arc.0;
        }
        p2_arcs.reverse();
    }

    // Cancellation: drop arc pairs used in opposite directions.
    let mut arc_multiset: Vec<Arc> = Vec::new();
    let p2_set: HashSet<(NodeId, NodeId, LinkId)> = p2_arcs.iter().copied().collect();
    for &(a, b, l) in &p1_arcs {
        if !p2_set.contains(&(b, a, l)) {
            arc_multiset.push((a, b, l));
        }
    }
    let p1_set: HashSet<(NodeId, NodeId, LinkId)> = p1_arcs.iter().copied().collect();
    for &(a, b, l) in &p2_arcs {
        if !p1_set.contains(&(b, a, l)) {
            arc_multiset.push((a, b, l));
        }
    }

    // Decompose the remaining arcs into two link-disjoint s→t walks, then
    // strip any loops to obtain simple paths.
    let mut adj: BTreeMap<NodeId, Vec<(NodeId, LinkId)>> = BTreeMap::new();
    for &(a, b, l) in &arc_multiset {
        adj.entry(a).or_default().push((b, l));
    }
    // Deterministic traversal order.
    for v in adj.values_mut() {
        v.sort_unstable();
    }
    let mut extract_walk = || -> Option<Vec<NodeId>> {
        let mut nodes = vec![src];
        let mut cur = src;
        while cur != dst {
            let nexts = adj.get_mut(&cur)?;
            let (next, _l) = nexts.pop()?;
            nodes.push(next);
            cur = next;
        }
        Some(nodes)
    };
    let w1 = extract_walk()?;
    let w2 = extract_walk()?;
    let path_a = Path::from_nodes(graph, strip_loops(w1)).ok()?;
    let path_b = Path::from_nodes(graph, strip_loops(w2)).ok()?;
    debug_assert!(path_a.is_link_disjoint(&path_b));
    let (first, second) = if path_a.hop_count() <= path_b.hop_count() {
        (path_a, path_b)
    } else {
        (path_b, path_a)
    };
    Some(DisjointPair { first, second })
}

/// Removes loops from a walk, keeping the portion outside each cycle.
fn strip_loops(walk: Vec<NodeId>) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::with_capacity(walk.len());
    for node in walk {
        if let Some(pos) = out.iter().position(|&n| n == node) {
            out.truncate(pos);
        }
        out.push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::pass_all;
    use crate::regular;

    #[test]
    fn ring_has_two_disjoint_routes() {
        let g = regular::ring(6).unwrap();
        let pair = suurballe(&g, NodeId(0), NodeId(3), &pass_all).unwrap();
        assert!(pair.first.is_link_disjoint(&pair.second));
        assert_eq!(pair.total_hops(), 6); // 3 + 3 around the ring
    }

    #[test]
    fn line_has_no_disjoint_pair() {
        let g = regular::grid(1, 4).unwrap();
        assert!(suurballe(&g, NodeId(0), NodeId(3), &pass_all).is_none());
    }

    #[test]
    fn src_equals_dst_is_none() {
        let g = regular::ring(4).unwrap();
        assert!(suurballe(&g, NodeId(0), NodeId(0), &pass_all).is_none());
    }

    #[test]
    fn trap_topology_where_greedy_fails() {
        // The classic trap: the unique shortest path uses the middle edge,
        // after which greedy removal disconnects the pair, but a disjoint
        // pair exists.
        //
        //   0 - 1 - 2 - 5          shortest: 0-1-2-5? no: build so that
        //   |       |   |          shortest path blocks greedy.
        //   3 ------4---+
        //
        // Construct explicitly: edges 0-1, 1-2, 2-5, 0-3, 3-4, 4-5, 1-4.
        // Shortest 0→5 is 0-1-2-5 (3 hops) or 0-3-4-5 (3 hops). Make the
        // trap sharper: remove 0-3 so greedy's first path must be 0-1-2-5,
        // and the only other route 0-1-4-5 shares link 0-1 → no pair via
        // greedy or Suurballe. Then re-add 0-3 and both must succeed.
        let mut g = Graph::with_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (2, 5), (3, 4), (4, 5), (1, 4)] {
            g.add_link(NodeId(a), NodeId(b)).unwrap();
        }
        assert!(suurballe(&g, NodeId(0), NodeId(5), &pass_all).is_none());
        g.add_link(NodeId(0), NodeId(3)).unwrap();
        let pair = suurballe(&g, NodeId(0), NodeId(5), &pass_all).unwrap();
        assert!(pair.first.is_link_disjoint(&pair.second));
    }

    #[test]
    fn suurballe_beats_greedy_on_trap() {
        // Trap where the unique shortest path P uses edges that every other
        // route needs, yet rerouting P slightly yields a disjoint pair.
        //
        //      1 --- 2
        //     /|     |\
        //    0 |     | 5
        //     \|     |/
        //      3 --- 4
        //
        // Edges: 0-1, 0-3, 1-2, 3-4, 2-5, 4-5, 1-3 ... choose: shortest path
        // 0-1-2-5 and 0-3-4-5 are disjoint (both 3 hops) — fine for
        // Suurballe. For the greedy trap add a shortcut 1-4 making
        // 0-1-4-5 shortest (3 hops)… still ties. Use a 2-hop shortcut:
        // central node 6: 0-6, 6-5 → shortest 0-6-5 (2 hops); greedy then
        // finds 0-1-2-5 fine. To actually break greedy, the shortcut must
        // overlap both alternatives: 0-1, 1-5 shortcut via node1:
        // path 0-1-5? add edge 1-5. Then shortest is 0-1-5? no wait 0-1-5
        // = 2 hops; remaining graph minus {0-1, 1-5}: 0-3-4-5 exists →
        // greedy works too. Constructing a true greedy-failure: classic
        // example needs the shortest path to "zig-zag" across both
        // candidate corridors.
        //
        //   0 - a - b - t      corridor 1: 0-a-b-t
        //   0 - c - d - t      corridor 2: 0-c-d-t
        //   a - d              zig-zag: 0-a-d-t is shortest (3 hops, tie)…
        //
        // Force uniqueness by lengthening corridors: corridor1 = 0-a-b-e-t,
        // corridor2 = 0-c-d-f-t, zigzag 0-a, a-d, d-t? then shortest
        // 0-a-d-t = 3 hops and removing it kills a and d links…
        // remaining: corridor pieces 0-c,c-d (d used? only link a-d and
        // d-t removed; c-d intact) → 0-c-d-f-t exists! and
        // 0-a-b-e-t exists → greedy finds disjoint pair anyway. The trap:
        // zigzag must consume links whose removal separates the graph.
        // Use: 0-a, a-t' style… Keep it simple: verify only that Suurballe
        // returns the *minimum total* pair here while greedy's pair is
        // longer or equal.
        let mut g = Graph::with_nodes(8);
        let (s, a, b, e, t, c, d, f) = (0, 1, 2, 3, 4, 5, 6, 7);
        for (x, y) in [
            (s, a),
            (a, b),
            (b, e),
            (e, t),
            (s, c),
            (c, d),
            (d, f),
            (f, t),
            (a, d),
        ] {
            g.add_link(NodeId(x), NodeId(y)).unwrap();
        }
        let pair = suurballe(&g, NodeId(s), NodeId(t), &pass_all).unwrap();
        assert!(pair.first.is_link_disjoint(&pair.second));
        // Optimal pair: the two 4-hop corridors, total 8.
        assert_eq!(pair.total_hops(), 8);
    }

    #[test]
    fn respects_filter() {
        let g = regular::ring(6).unwrap();
        // Break the ring by filtering one link: no disjoint pair remains.
        let l = g.link_between(NodeId(2), NodeId(3)).unwrap();
        assert!(suurballe(&g, NodeId(0), NodeId(3), &|x| x != l).is_none());
    }

    #[test]
    fn dense_graph_pair_is_short() {
        let g = regular::complete(6).unwrap();
        let pair = suurballe(&g, NodeId(0), NodeId(5), &pass_all).unwrap();
        // 1-hop direct + 2-hop detour.
        assert_eq!(pair.first.hop_count(), 1);
        assert_eq!(pair.second.hop_count(), 2);
    }

    #[test]
    fn torus_always_has_pairs() {
        let g = regular::torus(4, 4).unwrap();
        for dst in 1..16 {
            let pair = suurballe(&g, NodeId(0), NodeId(dst), &pass_all);
            let pair = pair.unwrap_or_else(|| panic!("no pair 0→{dst}"));
            assert!(pair.first.is_link_disjoint(&pair.second));
        }
    }

    #[test]
    fn strip_loops_removes_cycles() {
        let walk = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(1), NodeId(3)];
        assert_eq!(strip_loops(walk), vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn strip_loops_identity_on_simple() {
        let walk = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(strip_loops(walk.clone()), walk);
    }
}
