//! Error types for topology construction and algorithms.

use std::fmt;

/// Errors produced by graph construction and topology generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An endpoint referred to a node that does not exist.
    UnknownNode(usize),
    /// A link's two endpoints were the same node.
    SelfLoop(usize),
    /// A link between the two nodes already exists.
    DuplicateLink(usize, usize),
    /// A generator or algorithm parameter was out of range.
    InvalidParameter(String),
    /// An operation that requires a connected graph was given a
    /// disconnected one.
    Disconnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node index {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "link between nodes {a} and {b} already exists")
            }
            TopologyError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            TopologyError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TopologyError::UnknownNode(3).to_string(),
            "unknown node index 3"
        );
        assert_eq!(
            TopologyError::SelfLoop(1).to_string(),
            "self-loop at node 1 is not allowed"
        );
        assert_eq!(
            TopologyError::DuplicateLink(1, 2).to_string(),
            "link between nodes 1 and 2 already exists"
        );
        assert!(TopologyError::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        assert_eq!(
            TopologyError::Disconnected.to_string(),
            "graph is not connected"
        );
    }
}
