//! Regular (deterministic) topologies.
//!
//! These are not used by the paper's experiments (which use random Waxman
//! and transit-stub graphs) but are invaluable for unit tests, examples, and
//! the regular-topology case the paper mentions in Section 3.3, where the
//! chaining probabilities "depend solely on the network topology".

use crate::error::TopologyError;
use crate::graph::{Graph, NodeId};

/// A ring of `n ≥ 3` nodes.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph, TopologyError> {
    if n < 3 {
        return Err(TopologyError::InvalidParameter(format!(
            "ring requires at least 3 nodes, got {n}"
        )));
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_link(NodeId(i), NodeId((i + 1) % n))?;
    }
    Ok(g)
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Err(TopologyError::InvalidParameter(format!(
            "star requires at least 2 nodes, got {n}"
        )));
    }
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_link(NodeId(0), NodeId(i))?;
    }
    Ok(g)
}

/// An `rows × cols` grid (mesh). Node `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, TopologyError> {
    if rows == 0 || cols == 0 {
        return Err(TopologyError::InvalidParameter(
            "grid dimensions must be positive".into(),
        ));
    }
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = NodeId(r * cols + c);
            if c + 1 < cols {
                g.add_link(id, NodeId(r * cols + c + 1))?;
            }
            if r + 1 < rows {
                g.add_link(id, NodeId((r + 1) * cols + c))?;
            }
        }
    }
    Ok(g)
}

/// An `rows × cols` torus (grid with wrap-around links).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] unless both dimensions are
/// at least 3 (smaller tori would create duplicate links).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, TopologyError> {
    if rows < 3 || cols < 3 {
        return Err(TopologyError::InvalidParameter(
            "torus dimensions must be at least 3".into(),
        ));
    }
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = NodeId(r * cols + c);
            g.add_link(id, NodeId(r * cols + (c + 1) % cols))?;
            g.add_link(id, NodeId(((r + 1) % rows) * cols + c))?;
        }
    }
    Ok(g)
}

/// A hypercube of dimension `dim` (so `2^dim` nodes).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if `dim == 0` or `dim > 20`.
pub fn hypercube(dim: u32) -> Result<Graph, TopologyError> {
    if dim == 0 || dim > 20 {
        return Err(TopologyError::InvalidParameter(format!(
            "hypercube dimension must be in 1..=20, got {dim}"
        )));
    }
    let n = 1usize << dim;
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if j > i {
                g.add_link(NodeId(i), NodeId(j))?;
            }
        }
    }
    Ok(g)
}

/// The complete graph on `n ≥ 2` nodes.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Err(TopologyError::InvalidParameter(format!(
            "complete graph requires at least 2 nodes, got {n}"
        )));
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_link(NodeId(i), NodeId(j))?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn ring_counts() {
        let g = ring(5).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.link_count(), 5);
        assert!(g.nodes().all(|n| g.degree(n) == 2));
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn ring_too_small() {
        assert!(ring(2).is_err());
    }

    #[test]
    fn star_counts() {
        let g = star(6).unwrap();
        assert_eq!(g.link_count(), 5);
        assert_eq!(g.degree(NodeId(0)), 5);
        assert!(g.nodes().skip(1).all(|n| g.degree(n) == 1));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        // Horizontal: 3*3, vertical: 2*4.
        assert_eq!(g.link_count(), 9 + 8);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn grid_rejects_zero() {
        assert!(grid(0, 3).is_err());
        assert!(grid(3, 0).is_err());
    }

    #[test]
    fn torus_is_regular_degree_4() {
        let g = torus(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.link_count(), 24);
        assert!(g.nodes().all(|n| g.degree(n) == 4));
    }

    #[test]
    fn torus_rejects_small() {
        assert!(torus(2, 3).is_err());
        assert!(torus(3, 2).is_err());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.link_count(), 12);
        assert!(g.nodes().all(|n| g.degree(n) == 3));
        assert_eq!(metrics::diameter(&g), Some(3));
    }

    #[test]
    fn hypercube_rejects_extremes() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(21).is_err());
    }

    #[test]
    fn complete_counts() {
        let g = complete(5).unwrap();
        assert_eq!(g.link_count(), 10);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn complete_too_small() {
        assert!(complete(1).is_err());
    }
}
