//! # drqos-topology
//!
//! Network topologies and graph algorithms for the `drqos` workspace — the
//! in-repo replacement for the GT-ITM internetwork topology package the
//! paper uses to generate its evaluation networks.
//!
//! * [`graph`] — the undirected network [`graph::Graph`] with node
//!   coordinates.
//! * [`waxman`] — Waxman random graphs (the paper's "Random" networks),
//!   including calibration helpers that match the paper's reported
//!   statistics (100 nodes / 354 edges / average degree 3.48).
//! * [`transit_stub`] — hierarchical transit-stub networks (the paper's
//!   "Tier" model).
//! * [`regular`] — rings, grids, tori, hypercubes, stars for tests and
//!   examples.
//! * [`paths`] — validated [`paths::Path`], BFS / Dijkstra / Yen searches
//!   with per-link feasibility filters.
//! * [`disjoint`] — Suurballe's algorithm for minimum link-disjoint path
//!   pairs (primary + backup routes).
//! * [`metrics`] — degree / diameter / average-hop statistics.
//!
//! # Example
//!
//! ```
//! use drqos_sim::rng::Rng;
//! use drqos_topology::{metrics, waxman};
//!
//! let mut rng = Rng::seed_from_u64(1);
//! let graph = waxman::paper_waxman(100).generate(&mut rng)?;
//! let summary = metrics::summarize(&graph);
//! assert_eq!(summary.nodes, 100);
//! assert!(metrics::is_connected(&graph));
//! # Ok::<(), drqos_topology::error::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjoint;
pub mod error;
pub mod graph;
pub mod metrics;
pub mod partition;
pub mod paths;
pub mod regular;
pub mod transit_stub;
pub mod waxman;

pub use disjoint::{suurballe, DisjointPair};
pub use error::TopologyError;
pub use graph::{Graph, Link, LinkId, NodeId};
pub use metrics::TopologySummary;
pub use partition::Partition;
pub use paths::Path;
pub use transit_stub::{TransitStub, TransitStubConfig};
pub use waxman::WaxmanConfig;
