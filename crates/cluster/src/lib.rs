//! # drqos-cluster
//!
//! Multi-daemon federation for the dependable real-time communication
//! stack: N `drqosd`-style daemons form one logical network with a
//! single admission authority, partitioned planning, and daemon-level
//! churn (JOIN / LEAVE / CRASH).
//!
//! The paper's D-connection model assumes one manager admitting every
//! channel. This crate scales that manager out the same way
//! [`drqos_core::shard`] scales it across threads: each **member** owns
//! one partition of the topology ([`rebalance::Assignment`], reusing
//! [`drqos_topology::Partition`]), plans admissions for its own sources
//! locally against a full replica of the network, and commits through
//! the **coordinator**'s two-phase ledger — reserve the footprint,
//! revalidate its digests, commit or replan serially. Every committed
//! operation lands in an oplog that replicas replay
//! ([`coordinator::apply_committed`]), keeping them byte-identical to
//! the authority; `fuzz --diff-cluster` proves a whole fuzzed cluster
//! run equals the monolithic oracle, and the mutation self-tests prove
//! the harness would catch a lost prepare.
//!
//! Modules:
//!
//! - [`rebalance`] — deterministic survivor partitioning after churn.
//! - [`coordinator`] — the commit authority, ledger, and oplog.
//! - [`member`] — a replica: local planning plus oplog replay.
//! - [`sim`] — the in-process N-member cluster (tests and benches).
//! - [`proto`] — the inter-daemon wire messages (framing shared with
//!   the service's binary mode via [`drqos_core::framing`]).
//!
//! The TCP daemons themselves (`drqos-clusterd`) live in the service
//! crate, which layers sockets, timeouts, and the client protocol on
//! top of these clock-free, deterministic parts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod member;
pub mod proto;
pub mod rebalance;
pub mod sim;

pub use coordinator::{
    apply_committed, ApplyOutcome, CommittedOp, Coordinator, MemberOp, Prepared,
};
pub use member::Member;
pub use proto::{ClusterMsg, CoordMsg, ProtoError, WireRequest};
pub use rebalance::Assignment;
pub use sim::{ClusterFault, ClusterSim};

/// Default partition seed for cluster assignments (distinct from the
/// sharded engine's [`drqos_core::shard::DEFAULT_PARTITION_SEED`] so the
/// two layers never accidentally share a cut).
pub const DEFAULT_CLUSTER_SEED: u64 = 0x5EED_C105;
