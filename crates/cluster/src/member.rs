//! A cluster member's replica of the federated network.
//!
//! Every member holds a *full* copy of the network, kept current by
//! replaying the coordinator's oplog ([`Member::apply`]). Planning for an
//! admission whose source node the member owns runs here, against the
//! replica, with no coordinator round-trip; only the reserve/commit
//! handshake crosses the wire. Because replay is the exact serial
//! operation sequence the authoritative network executed, a synced
//! replica is byte-identical to the authority — `fuzz --diff-cluster`
//! compares full [`drqos_core::network::NetworkSnapshot`]s to prove it —
//! and a member daemon can therefore answer its clients *from its own
//! replay outcome* of the committed record.

use crate::coordinator::{apply_committed, ApplyOutcome, CommittedOp};
use drqos_core::error::AdmissionError;
use drqos_core::network::{EstablishPlan, EstablishRequest, Network};
use drqos_core::routing::RouteScratch;
use drqos_topology::LinkId;

/// One member's replica state: the network copy, a reusable routing
/// scratch for local planning, and the oplog sequence already applied.
#[derive(Debug)]
pub struct Member {
    id: u64,
    net: Network,
    scratch: RouteScratch,
    applied: u64,
}

impl Member {
    /// Creates a member from the genesis network (the empty network every
    /// daemon constructs from the shared topology arguments). A joining
    /// member catches up by replaying the full oplog from sequence 0.
    pub fn new(id: u64, genesis: Network) -> Self {
        Self {
            id,
            net: genesis,
            scratch: RouteScratch::new(),
            applied: 0,
        }
    }

    /// This member's cluster id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Oplog records applied so far (the sequence to sync from).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The replica network, read-only.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Plans an admission locally against the replica, returning the plan
    /// (or rejection) plus the footprint digests to ship in the PREPARE.
    pub fn plan(
        &mut self,
        req: &EstablishRequest,
    ) -> (Result<EstablishPlan, AdmissionError>, Vec<(LinkId, u64)>) {
        self.net
            .plan_establish_traced(&mut self.scratch, req.src, req.dst, req.qos)
    }

    /// Replays committed records in sequence order, returning the outcome
    /// of each (the last one is typically this member's own operation,
    /// whose outcome it renders to the requesting client).
    pub fn apply(&mut self, records: &[CommittedOp]) -> Vec<ApplyOutcome> {
        records
            .iter()
            .map(|op| {
                self.applied += 1;
                apply_committed(&mut self.net, op)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_core::qos::ElasticQos;
    use drqos_core::NetworkSnapshot;
    use drqos_topology::regular::ring;
    use drqos_topology::NodeId;

    fn genesis() -> Network {
        Network::new(ring(6).unwrap(), NetworkConfig::default())
    }

    #[test]
    fn replay_tracks_the_authority_byte_for_byte() {
        let mut authority = genesis();
        let mut member = Member::new(0, genesis());
        let ops = vec![
            CommittedOp::Establish {
                src: NodeId(0),
                dst: NodeId(3),
                qos: ElasticQos::paper_video(100),
            },
            CommittedOp::Establish {
                src: NodeId(1),
                dst: NodeId(4),
                qos: ElasticQos::paper_video(100),
            },
            CommittedOp::FailLink {
                link: authority.graph().links().next().unwrap().id(),
            },
            CommittedOp::Release {
                id: drqos_core::ConnectionId(0),
            },
        ];
        let direct: Vec<ApplyOutcome> = ops
            .iter()
            .map(|op| apply_committed(&mut authority, op))
            .collect();
        let replayed = member.apply(&ops);
        assert_eq!(direct, replayed, "replay outcomes must match the authority");
        assert_eq!(member.applied(), ops.len() as u64);
        assert_eq!(
            NetworkSnapshot::capture(&authority),
            NetworkSnapshot::capture(member.net()),
            "replica must be byte-identical after replay"
        );
    }

    #[test]
    fn a_local_plan_matches_the_serial_plan_on_equal_state() {
        let mut member = Member::new(1, genesis());
        let req = EstablishRequest {
            src: NodeId(2),
            dst: NodeId(5),
            qos: ElasticQos::paper_video(100),
        };
        let (planned, footprint) = member.plan(&req);
        assert!(planned.is_ok());
        assert!(!footprint.is_empty(), "planning must trace its footprint");
        let serial = member.net().plan_establish(req.src, req.dst, req.qos);
        assert_eq!(planned, serial, "traced plan must equal the serial plan");
    }
}
