//! The cluster coordinator: commit authority and oplog sequencer.
//!
//! A federation keeps exactly one authoritative [`Network`]; the
//! coordinator owns it. Members hold full replicas, plan admissions
//! locally against their replica (that is what "intra-partition ESTABLISH
//! runs locally" means — the planning work happens on the member owning
//! the source node), and send the coordinator a **PREPARE** carrying the
//! admission footprint: every link the member's planner probed, with its
//! plan digest at planning time. The coordinator then runs the same
//! two-phase reserve/commit as [`drqos_core::shard::ShardedNetwork`]:
//!
//! 1. **Reserve** — insert a pending reservation into the ledger of every
//!    partition the footprint touches, in ascending compact-shard order
//!    (the canonical total order; see [`Partition::touched_shards`]).
//! 2. **Validate** — recheck every footprint digest against the
//!    authoritative network. All unchanged ⇒ the member's plan is exactly
//!    what serial planning would produce now, and **COMMIT** applies it.
//!    Any digest moved ⇒ the reservation aborts into a serial replan at
//!    the request's sequential point — the monolith's own path (counted
//!    in [`Coordinator::stale_replans`]).
//!
//! Every committed operation — admissions, releases, failures, repairs,
//! and membership rebalances — is appended to an **oplog**. Replicas pull
//! records they have not yet applied ([`Coordinator::records_since`]) and
//! replay them serially; because replay order equals commit order and
//! every operation is deterministic, each replica is byte-identical to
//! the authoritative network at the same sequence number (proven by
//! `fuzz --diff-cluster`).
//!
//! Membership churn (JOIN/LEAVE/CRASH) is ownership-only: the topology
//! partition is recomputed over the survivors
//! ([`crate::rebalance::Assignment`]) while the replicated network state
//! is untouched, the same way the paper's connections survive link
//! failures without re-admission. A CRASH additionally aborts the
//! member's in-flight prepares, releasing their reservations.
//!
//! [`Partition::touched_shards`]: drqos_topology::Partition::touched_shards

use crate::rebalance::Assignment;
use drqos_core::channel::ConnectionId;
use drqos_core::env::RebalancePolicy;
use drqos_core::error::{AdmissionError, ClusterError, NetworkError};
use drqos_core::invariant::InvariantViolation;
use drqos_core::network::{EstablishPlan, EstablishRequest, FailureReport, Network};
use drqos_core::qos::ElasticQos;
use drqos_topology::{LinkId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// One committed operation in the coordinator's oplog. Replaying the log
/// serially from the genesis network reconstructs the authoritative
/// state exactly; [`Rebalance`](CommittedOp::Rebalance) records carry
/// membership epochs and leave the network untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum CommittedOp {
    /// An admission (committed result may still be a rejection — replay
    /// reproduces it deterministically).
    Establish {
        /// Source endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
        /// Requested elastic QoS.
        qos: ElasticQos,
    },
    /// A connection release.
    Release {
        /// The connection id.
        id: ConnectionId,
    },
    /// A link failure injection.
    FailLink {
        /// The failed link.
        link: LinkId,
    },
    /// A link repair.
    RepairLink {
        /// The repaired link.
        link: LinkId,
    },
    /// A node failure (all adjacent up links fail).
    FailNode {
        /// The failed node.
        node: NodeId,
    },
    /// A shared-risk group failure (all up member links fail).
    FailSrlg {
        /// The shared-risk group index.
        group: usize,
    },
    /// A shared-risk group repair (all down member links heal).
    RepairSrlg {
        /// The shared-risk group index.
        group: usize,
    },
    /// A membership change; `alive` is the post-change roster.
    Rebalance {
        /// Liveness by member id after the change.
        alive: Vec<bool>,
    },
}

/// A non-establish operation forwarded by a member (establishes go
/// through the two-phase [`Coordinator::prepare`] /
/// [`Coordinator::commit_prepared`] path instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberOp {
    /// Release a connection.
    Release {
        /// The connection id.
        id: ConnectionId,
    },
    /// Fail a link.
    FailLink {
        /// The link.
        link: LinkId,
    },
    /// Repair a link.
    RepairLink {
        /// The link.
        link: LinkId,
    },
    /// Fail a node.
    FailNode {
        /// The node.
        node: NodeId,
    },
    /// Fail a shared-risk group.
    FailSrlg {
        /// The group index.
        group: usize,
    },
    /// Repair a shared-risk group.
    RepairSrlg {
        /// The group index.
        group: usize,
    },
}

impl MemberOp {
    /// The oplog record this operation commits as.
    pub fn to_committed(self) -> CommittedOp {
        match self {
            MemberOp::Release { id } => CommittedOp::Release { id },
            MemberOp::FailLink { link } => CommittedOp::FailLink { link },
            MemberOp::RepairLink { link } => CommittedOp::RepairLink { link },
            MemberOp::FailNode { node } => CommittedOp::FailNode { node },
            MemberOp::FailSrlg { group } => CommittedOp::FailSrlg { group },
            MemberOp::RepairSrlg { group } => CommittedOp::RepairSrlg { group },
        }
    }
}

/// The outcome of applying one committed operation to a network. Both the
/// coordinator (at commit time) and every replica (at replay time)
/// produce one of these; on a correct cluster they are equal at equal
/// sequence numbers, which is how member daemons answer their clients
/// from their own replica.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyOutcome {
    /// Establish result.
    Establish(Result<ConnectionId, AdmissionError>),
    /// Release result; `Ok` carries the bandwidth (Kbps) the connection
    /// held before the release (`None` would mean inconsistent state).
    Release(Result<Option<u64>, NetworkError>),
    /// Link-failure report.
    FailLink(Result<FailureReport, NetworkError>),
    /// Repair result: the connections that regained a backup.
    RepairLink(Result<Vec<ConnectionId>, NetworkError>),
    /// Node-failure reports, one per adjacent link failed.
    FailNode(Result<Vec<FailureReport>, NetworkError>),
    /// Shared-risk-group failure reports, one per member link failed.
    FailSrlg(Result<Vec<FailureReport>, NetworkError>),
    /// Group repair result: the connections that regained a backup.
    RepairSrlg(Result<Vec<ConnectionId>, NetworkError>),
    /// A membership epoch; carries the post-change roster.
    Rebalance(Vec<bool>),
}

/// Applies one committed operation to a network, exactly as the
/// monolithic manager would. This is the single replay function shared by
/// the coordinator's serial path and every replica, so the two cannot
/// drift.
pub fn apply_committed(net: &mut Network, op: &CommittedOp) -> ApplyOutcome {
    match *op {
        CommittedOp::Establish { src, dst, qos } => {
            ApplyOutcome::Establish(net.establish(src, dst, qos))
        }
        CommittedOp::Release { id } => {
            // `release` retreats the channel to its minimum before removing
            // it, so read the bandwidth actually held first (the service
            // engine renders this as `freed=`).
            let held = net.connection(id).map(|c| c.bandwidth().as_kbps());
            ApplyOutcome::Release(net.release(id).map(|_| held))
        }
        CommittedOp::FailLink { link } => ApplyOutcome::FailLink(net.fail_link(link)),
        CommittedOp::RepairLink { link } => ApplyOutcome::RepairLink(net.repair_link(link)),
        CommittedOp::FailNode { node } => ApplyOutcome::FailNode(net.fail_node(node)),
        CommittedOp::FailSrlg { group } => ApplyOutcome::FailSrlg(net.fail_srlg(group)),
        CommittedOp::RepairSrlg { group } => ApplyOutcome::RepairSrlg(net.repair_srlg(group)),
        CommittedOp::Rebalance { ref alive } => ApplyOutcome::Rebalance(alive.clone()),
    }
}

/// A successful reservation: the ticket to commit or abort, and whether
/// every footprint digest was still current at reserve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepared {
    /// The two-phase ticket.
    pub ticket: u64,
    /// `true` when the member's plan is provably identical to a serial
    /// plan at this point (all probed digests unchanged).
    pub fresh: bool,
}

/// An in-flight prepare, between reserve and commit/abort.
#[derive(Debug)]
struct PendingPrepare {
    member: u64,
    fresh: bool,
}

/// The commit authority of a federation (see the module docs).
#[derive(Debug)]
pub struct Coordinator {
    net: Network,
    assignment: Assignment,
    alive: Vec<bool>,
    /// Per-compact-shard reservation ledgers (ticket → owned links).
    ledgers: Vec<BTreeMap<u64, Vec<LinkId>>>,
    pending: BTreeMap<u64, PendingPrepare>,
    next_ticket: u64,
    oplog: Vec<CommittedOp>,
    stale_replans: u64,
    aborted_prepares: u64,
    seed: u64,
    policy: RebalancePolicy,
    lose_prepare: bool,
    fault_fired: bool,
}

impl Coordinator {
    /// Creates a coordinator over `net` with `members` live members
    /// (ids `0..members`), partitioned deterministically from `seed`.
    pub fn new(net: Network, members: usize, seed: u64, policy: RebalancePolicy) -> Self {
        let alive = vec![true; members.max(1)];
        let assignment = Assignment::compute(net.graph(), &alive, seed, policy)
            .expect("at least one member is alive by construction"); // lint:allow(panic-reachability): members.max(1) guarantees at least one alive member
        let ledgers = (0..assignment.partition().shards())
            .map(|_| BTreeMap::new())
            .collect();
        Self {
            net,
            assignment,
            alive,
            ledgers,
            pending: BTreeMap::new(),
            next_ticket: 0,
            oplog: Vec::new(),
            stale_replans: 0,
            aborted_prepares: 0,
            seed,
            policy,
            lose_prepare: false,
            fault_fired: false,
        }
    }

    /// The authoritative network, read-only.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The current oplog sequence number (= committed operation count).
    pub fn seq(&self) -> u64 {
        self.oplog.len() as u64
    }

    /// Liveness by member id.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether `member` is a live roster entry.
    pub fn is_alive(&self, member: u64) -> bool {
        usize::try_from(member)
            .ok()
            .and_then(|m| self.alive.get(m).copied())
            .unwrap_or(false)
    }

    /// Count of live members.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The current survivor assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The live member owning `node`.
    pub fn member_of_node(&self, node: NodeId) -> u64 {
        self.assignment.member_of_node(node)
    }

    /// Commits that found a stale footprint and re-planned serially.
    pub fn stale_replans(&self) -> u64 {
        self.stale_replans
    }

    /// Prepares aborted without committing (timeouts and member crashes).
    pub fn aborted_prepares(&self) -> u64 {
        self.aborted_prepares
    }

    /// Reservations currently pending across all partition ledgers. Zero
    /// between waves on a correct cluster; a leak here is how the
    /// differential harness catches
    /// [`ClusterFault::LosePrepare`](crate::sim::ClusterFault).
    pub fn pending_prepares(&self) -> usize {
        self.ledgers.iter().map(|l| l.len()).sum()
    }

    /// Arms (or clears) the lost-prepare fault for the mutation
    /// self-test: the next commit "forgets" to release one reservation.
    pub fn set_lose_prepare(&mut self, lose: bool) {
        self.lose_prepare = lose;
        self.fault_fired = false;
    }

    /// Phase 1 of the two-phase commit: reserve the touched partition
    /// ledgers (ascending) and validate the footprint digests.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownMember`] when `member` is not alive.
    pub fn prepare(
        &mut self,
        member: u64,
        footprint: &[(LinkId, u64)],
    ) -> Result<Prepared, ClusterError> {
        if !self.is_alive(member) {
            return Err(ClusterError::UnknownMember(member));
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let partition = self.assignment.partition();
        let touched = partition.touched_shards(footprint.iter().map(|&(l, _)| l));
        for &s in &touched {
            let owned: Vec<LinkId> = footprint
                .iter()
                .map(|&(l, _)| l)
                .filter(|&l| partition.shard_of_link(l) == s)
                .collect();
            if let Some(ledger) = self.ledgers.get_mut(s) {
                ledger.insert(ticket, owned);
            }
        }
        let fresh = footprint
            .iter()
            .all(|&(l, d)| self.net.link_usage(l).plan_digest() == d);
        self.pending
            .insert(ticket, PendingPrepare { member, fresh });
        Ok(Prepared { ticket, fresh })
    }

    /// Releases a ticket's reservations from every ledger. The injected
    /// lost-prepare fault skips the first owned ledger entry once.
    fn release_reservations(&mut self, ticket: u64) {
        let lose = self.lose_prepare && !self.fault_fired;
        let mut skipped = false;
        for ledger in &mut self.ledgers {
            if lose && !skipped && ledger.contains_key(&ticket) {
                skipped = true;
                continue;
            }
            ledger.remove(&ticket);
        }
        if skipped {
            self.fault_fired = true;
        }
    }

    /// Phase 2: commit a prepared establish. With a fresh footprint the
    /// member's `planned` result is committed as-is (it is provably the
    /// serial plan); a stale footprint — or a commit without a shipped
    /// plan, the TCP daemons' mode — re-plans serially at this sequential
    /// point. Either way the operation is appended to the oplog.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StalePrepare`] when the ticket is not pending
    /// (already committed, or aborted by a crash).
    pub fn commit_prepared(
        &mut self,
        ticket: u64,
        planned: Option<Result<EstablishPlan, AdmissionError>>,
        req: &EstablishRequest,
        pending_fill: &mut Option<BTreeSet<ConnectionId>>,
    ) -> Result<Result<ConnectionId, AdmissionError>, ClusterError> {
        let pending = self
            .pending
            .remove(&ticket)
            .ok_or(ClusterError::StalePrepare(ticket))?;
        self.release_reservations(ticket);
        let result = if pending.fresh {
            match planned {
                Some(Ok(plan)) => Ok(self.net.batch_commit(plan, pending_fill)),
                Some(Err(e)) => Err(e),
                None => self.replan(req, pending_fill),
            }
        } else {
            self.stale_replans += 1;
            self.replan(req, pending_fill)
        };
        self.oplog.push(CommittedOp::Establish {
            src: req.src,
            dst: req.dst,
            qos: req.qos,
        });
        Ok(result)
    }

    /// Aborts a pending prepare (member-side timeout), releasing its
    /// reservations without committing anything.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StalePrepare`] when the ticket is not pending.
    pub fn abort_prepare(&mut self, ticket: u64) -> Result<(), ClusterError> {
        self.pending
            .remove(&ticket)
            .ok_or(ClusterError::StalePrepare(ticket))?;
        self.release_reservations(ticket);
        self.aborted_prepares += 1;
        Ok(())
    }

    /// Admits a request without a member prepare: the coordinator's own
    /// serial path, used to re-establish requests orphaned by a member
    /// crash mid-wave. Appends the oplog record like any commit.
    pub fn establish_unprepared(
        &mut self,
        req: &EstablishRequest,
        pending_fill: &mut Option<BTreeSet<ConnectionId>>,
    ) -> Result<ConnectionId, AdmissionError> {
        let result = self.replan(req, pending_fill);
        self.oplog.push(CommittedOp::Establish {
            src: req.src,
            dst: req.dst,
            qos: req.qos,
        });
        result
    }

    fn replan(
        &mut self,
        req: &EstablishRequest,
        pending_fill: &mut Option<BTreeSet<ConnectionId>>,
    ) -> Result<ConnectionId, AdmissionError> {
        let plan = self.net.plan_establish(req.src, req.dst, req.qos)?;
        Ok(self.net.batch_commit(plan, pending_fill))
    }

    /// Flushes the deferred elastic fill at the end of a wave (the same
    /// protocol as [`Network::batch_flush`]).
    pub fn flush(&mut self, pending_fill: Option<BTreeSet<ConnectionId>>) {
        self.net.batch_flush(pending_fill);
    }

    /// Applies a forwarded non-establish operation serially and appends
    /// it to the oplog.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownMember`] when `member` is not alive.
    pub fn forward(&mut self, member: u64, op: MemberOp) -> Result<ApplyOutcome, ClusterError> {
        if !self.is_alive(member) {
            return Err(ClusterError::UnknownMember(member));
        }
        let committed = op.to_committed();
        let outcome = apply_committed(&mut self.net, &committed);
        self.oplog.push(committed);
        Ok(outcome)
    }

    /// Oplog records from sequence `from` (exclusive of nothing — `from`
    /// is the count of records the replica has already applied).
    ///
    /// # Errors
    ///
    /// [`ClusterError::SequenceGap`] when `from` is past the current
    /// sequence number.
    pub fn records_since(&self, from: u64) -> Result<&[CommittedOp], ClusterError> {
        let at = usize::try_from(from).map_err(|_| ClusterError::SequenceGap(from))?;
        self.oplog.get(at..).ok_or(ClusterError::SequenceGap(from))
    }

    /// Adds (or revives) member id `member` and rebalances.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DuplicateMember`] when the id is already alive.
    pub fn join(&mut self, member: u64) -> Result<(), ClusterError> {
        let idx = usize::try_from(member).map_err(|_| ClusterError::DuplicateMember(member))?;
        if self.alive.get(idx).copied().unwrap_or(false) {
            return Err(ClusterError::DuplicateMember(member));
        }
        if idx >= self.alive.len() {
            self.alive.resize(idx + 1, false);
        }
        self.alive[idx] = true;
        self.rebalance();
        Ok(())
    }

    /// The lowest unused member id, for coordinator-assigned joins.
    pub fn next_member_id(&self) -> u64 {
        self.alive
            .iter()
            .position(|&a| !a)
            .unwrap_or(self.alive.len()) as u64
    }

    /// Graceful departure: the member's partition links rebalance to the
    /// survivors.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownMember`] for a dead/unknown id,
    /// [`ClusterError::LastMember`] when it is the only live member.
    pub fn leave(&mut self, member: u64) -> Result<(), ClusterError> {
        self.depart(member)
    }

    /// Abrupt departure: like [`Coordinator::leave`], but first aborts
    /// every prepare the member had in flight (their reservations are
    /// released; the requests are the member's to retry — or its
    /// clients').
    ///
    /// # Errors
    ///
    /// Same as [`Coordinator::leave`].
    pub fn crash(&mut self, member: u64) -> Result<(), ClusterError> {
        if !self.is_alive(member) {
            return Err(ClusterError::UnknownMember(member));
        }
        let orphaned: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.member == member)
            .map(|(&t, _)| t)
            .collect();
        for ticket in orphaned {
            let _ = self.abort_prepare(ticket);
        }
        self.depart(member)
    }

    fn depart(&mut self, member: u64) -> Result<(), ClusterError> {
        if !self.is_alive(member) {
            return Err(ClusterError::UnknownMember(member));
        }
        if self.alive_count() == 1 {
            return Err(ClusterError::LastMember(member));
        }
        // A graceful leave must not strand reservations; treat any still
        // pending as crashed (abort them) so the ledgers stay consistent.
        let strays: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.member == member)
            .map(|(&t, _)| t)
            .collect();
        for ticket in strays {
            let _ = self.abort_prepare(ticket);
        }
        if let Some(slot) = self.alive.get_mut(member as usize) {
            *slot = false;
        }
        self.rebalance();
        Ok(())
    }

    /// Recomputes the survivor assignment and re-buckets the ledgers into
    /// the new compact shard space (preserving any pending — or leaked —
    /// reservations). Appends the membership epoch to the oplog.
    fn rebalance(&mut self) {
        self.assignment =
            Assignment::compute(self.net.graph(), &self.alive, self.seed, self.policy)
                .expect("membership guards keep at least one member alive");
        let mut all: BTreeMap<u64, Vec<LinkId>> = BTreeMap::new();
        for ledger in &mut self.ledgers {
            for (ticket, mut links) in std::mem::take(ledger) {
                all.entry(ticket).or_default().append(&mut links);
            }
        }
        let partition = self.assignment.partition();
        let mut ledgers: Vec<BTreeMap<u64, Vec<LinkId>>> =
            (0..partition.shards()).map(|_| BTreeMap::new()).collect();
        for (ticket, links) in all {
            for &s in &partition.touched_shards(links.iter().copied()) {
                let owned: Vec<LinkId> = links
                    .iter()
                    .copied()
                    .filter(|&l| partition.shard_of_link(l) == s)
                    .collect();
                if let Some(ledger) = ledgers.get_mut(s) {
                    ledger.insert(ticket, owned);
                }
            }
        }
        self.ledgers = ledgers;
        self.oplog.push(CommittedOp::Rebalance {
            alive: self.alive.clone(),
        });
    }

    /// Runs the full invariant oracle over the authoritative network.
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        self.net.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_core::qos::ElasticQos;
    use drqos_topology::regular::ring;

    fn coordinator(members: usize) -> Coordinator {
        let net = Network::new(ring(6).unwrap(), NetworkConfig::default());
        Coordinator::new(net, members, 2001, RebalancePolicy::Bfs)
    }

    fn request(src: usize, dst: usize) -> EstablishRequest {
        EstablishRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            qos: ElasticQos::paper_video(100),
        }
    }

    #[test]
    fn membership_guards_reject_bad_transitions() {
        let mut c = coordinator(3);
        assert_eq!(c.alive_count(), 3);
        assert_eq!(c.join(1), Err(ClusterError::DuplicateMember(1)));
        assert_eq!(c.leave(7), Err(ClusterError::UnknownMember(7)));
        c.leave(1).unwrap();
        assert_eq!(c.leave(1), Err(ClusterError::UnknownMember(1)));
        c.crash(2).unwrap();
        assert_eq!(c.crash(0), Err(ClusterError::LastMember(0)));
        c.join(1).unwrap();
        assert_eq!(c.alive_count(), 2);
        // Every membership change appended an epoch record.
        let epochs = c
            .records_since(0)
            .unwrap()
            .iter()
            .filter(|r| matches!(r, CommittedOp::Rebalance { .. }))
            .count();
        assert_eq!(epochs, 3);
    }

    #[test]
    fn two_phase_commit_appends_to_the_oplog_and_clears_ledgers() {
        let mut c = coordinator(2);
        let req = request(0, 3);
        let footprint: Vec<(LinkId, u64)> = c
            .net()
            .up_links()
            .map(|l| (l, c.net().link_usage(l).plan_digest()))
            .collect();
        let p = c.prepare(0, &footprint).unwrap();
        assert!(p.fresh, "untouched digests must validate");
        assert!(c.pending_prepares() > 0, "reservation must be held");
        let mut fill = None;
        let got = c.commit_prepared(p.ticket, None, &req, &mut fill).unwrap();
        c.flush(fill);
        assert!(got.is_ok());
        assert_eq!(c.pending_prepares(), 0);
        assert_eq!(c.seq(), 1);
        assert_eq!(
            c.commit_prepared(p.ticket, None, &req, &mut None),
            Err(ClusterError::StalePrepare(p.ticket)),
            "double commit must be rejected"
        );
    }

    #[test]
    fn a_crash_aborts_the_members_prepares() {
        let mut c = coordinator(3);
        let footprint = vec![(LinkId(0), c.net().link_usage(LinkId(0)).plan_digest())];
        let p = c.prepare(1, &footprint).unwrap();
        assert_eq!(c.pending_prepares(), 1);
        c.crash(1).unwrap();
        assert_eq!(c.pending_prepares(), 0, "crash must release reservations");
        assert_eq!(c.aborted_prepares(), 1);
        assert_eq!(
            c.commit_prepared(p.ticket, None, &request(0, 3), &mut None),
            Err(ClusterError::StalePrepare(p.ticket)),
            "a commit after the crash is stale"
        );
    }

    #[test]
    fn prepares_from_dead_members_are_rejected() {
        let mut c = coordinator(2);
        c.leave(0).unwrap();
        assert_eq!(
            c.prepare(0, &[]).unwrap_err(),
            ClusterError::UnknownMember(0)
        );
        assert_eq!(
            c.forward(0, MemberOp::FailLink { link: LinkId(0) })
                .unwrap_err(),
            ClusterError::UnknownMember(0)
        );
    }

    #[test]
    fn records_since_guards_the_sequence_space() {
        let mut c = coordinator(2);
        c.forward(0, MemberOp::FailLink { link: LinkId(0) })
            .unwrap();
        assert_eq!(c.records_since(0).unwrap().len(), 1);
        assert_eq!(c.records_since(1).unwrap().len(), 0);
        assert_eq!(c.records_since(2), Err(ClusterError::SequenceGap(2)));
    }

    #[test]
    fn the_lost_prepare_fault_leaks_a_reservation() {
        let mut c = coordinator(2);
        c.set_lose_prepare(true);
        let footprint = vec![(LinkId(0), c.net().link_usage(LinkId(0)).plan_digest())];
        let p = c.prepare(0, &footprint).unwrap();
        let mut fill = None;
        c.commit_prepared(p.ticket, None, &request(0, 2), &mut fill)
            .unwrap()
            .unwrap();
        c.flush(fill);
        assert!(
            c.pending_prepares() > 0,
            "LosePrepare must leak a ledger entry"
        );
    }
}
