//! Deterministic partition (re)assignment across cluster members.
//!
//! The coordinator owns a roster of member daemons, of which some are
//! alive. The topology is divided among the *live* members only: a
//! [`Partition`] with one shard per survivor, plus a map from compact
//! shard index to member id. After any membership change (JOIN, LEAVE,
//! CRASH) the assignment is recomputed from scratch as a pure function of
//! `(graph, live set, seed, policy)` — no incremental state, so every
//! replica that knows the roster derives the identical ownership map, and
//! a restarted coordinator rebalances to exactly the same cut.
//!
//! Link ownership follows node ownership through
//! [`Partition::from_node_assignment`] (a link belongs to the shard of
//! its lower-indexed endpoint), so "every live link is owned by exactly
//! one surviving member" is structural: the partition is a total function
//! and every compact shard maps to a live member id.

use drqos_core::env::RebalancePolicy;
use drqos_topology::{Graph, LinkId, NodeId, Partition};

/// The live-member ownership map: a compact [`Partition`] over the
/// survivors plus the member id owning each compact shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    partition: Partition,
    shard_member: Vec<u64>,
}

impl Assignment {
    /// Computes the assignment for the given live set. Returns `None`
    /// when no member is alive (the coordinator's last-member guard makes
    /// that unreachable in practice).
    pub fn compute(
        graph: &Graph,
        alive: &[bool],
        seed: u64,
        policy: RebalancePolicy,
    ) -> Option<Self> {
        let survivors: Vec<u64> = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(m, _)| m as u64)
            .collect();
        if survivors.is_empty() {
            return None;
        }
        let shards = survivors.len();
        let partition = match policy {
            RebalancePolicy::Bfs => Partition::seeded_bfs(graph, shards, seed),
            RebalancePolicy::RoundRobin => {
                let node_shard: Vec<usize> = (0..graph.node_count()).map(|i| i % shards).collect();
                Partition::from_node_assignment(graph, shards, node_shard).ok()?
            }
        };
        // seeded_bfs clamps the shard count to the node count; truncate
        // the member map to match so both sides agree on the shard space.
        let shard_member: Vec<u64> = survivors.into_iter().take(partition.shards()).collect();
        Some(Self {
            partition,
            shard_member,
        })
    }

    /// The compact partition over the survivors.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The member id owning `node`.
    pub fn member_of_node(&self, node: NodeId) -> u64 {
        self.member_of_shard(self.partition.shard_of_node(node))
    }

    /// The member id owning `link`.
    pub fn member_of_link(&self, link: LinkId) -> u64 {
        self.member_of_shard(self.partition.shard_of_link(link))
    }

    /// The member id owning compact shard `shard` (shard 0's owner for an
    /// out-of-range index, mirroring [`Partition::shard_of_node`]).
    pub fn member_of_shard(&self, shard: usize) -> u64 {
        self.shard_member
            .get(shard)
            .or_else(|| self.shard_member.first())
            .copied()
            .unwrap_or(0)
    }

    /// The member ids in compact shard order.
    pub fn members(&self) -> &[u64] {
        &self.shard_member
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_sim::rng::Rng;
    use drqos_topology::waxman;

    fn graph(seed: u64) -> Graph {
        waxman::paper_waxman(24)
            .generate(&mut Rng::seed_from_u64(seed))
            .unwrap()
    }

    /// Satellite property: after a LEAVE/CRASH (modelled as flipping one
    /// roster bit), every link is owned by exactly one *surviving* member.
    #[test]
    fn every_link_owned_by_exactly_one_survivor_after_churn() {
        for seed in 0..12u64 {
            let g = graph(seed);
            for policy in [RebalancePolicy::Bfs, RebalancePolicy::RoundRobin] {
                let mut alive = vec![true; 4];
                alive[(seed % 4) as usize] = false; // the departed member
                let a = Assignment::compute(&g, &alive, seed ^ 0x0BAD, policy).unwrap();
                for l in g.links() {
                    let owner = a.member_of_link(l.id());
                    assert!(
                        alive[owner as usize],
                        "seed {seed} {policy:?}: link {:?} owned by dead member m{owner}",
                        l.id()
                    );
                }
                // Exactly one owner is structural (total function into the
                // survivor set); check the survivor set is what we expect.
                let mut owners: Vec<u64> = a.members().to_vec();
                owners.sort_unstable();
                owners.dedup();
                assert_eq!(owners.len(), a.members().len(), "duplicate shard owner");
                assert!(owners.iter().all(|&m| alive[m as usize]));
            }
        }
    }

    /// Satellite property: ownership is deterministic for a given seed —
    /// two coordinators that witness the same churn derive the same map.
    #[test]
    fn ownership_is_deterministic_per_seed() {
        for seed in 0..8u64 {
            let g1 = graph(seed);
            let g2 = graph(seed);
            let alive = [true, false, true];
            let a = Assignment::compute(&g1, &alive, 77, RebalancePolicy::Bfs).unwrap();
            let b = Assignment::compute(&g2, &alive, 77, RebalancePolicy::Bfs).unwrap();
            assert_eq!(a, b, "seed {seed}: assignment must be deterministic");
            let c = Assignment::compute(&g1, &alive, 78, RebalancePolicy::Bfs).unwrap();
            // On a 24-node Waxman a different seed should move something.
            assert_ne!(a, c, "seed {seed}: assignment ignored its seed");
        }
    }

    #[test]
    fn round_robin_ignores_the_seed_but_respects_the_roster() {
        let g = graph(3);
        let alive = [false, true, true, true];
        let a = Assignment::compute(&g, &alive, 1, RebalancePolicy::RoundRobin).unwrap();
        let b = Assignment::compute(&g, &alive, 999, RebalancePolicy::RoundRobin).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.members(), &[1, 2, 3]);
        assert_eq!(a.member_of_node(NodeId(0)), 1);
        assert_eq!(a.member_of_node(NodeId(1)), 2);
        assert_eq!(a.member_of_node(NodeId(3)), 1);
    }

    #[test]
    fn an_empty_roster_has_no_assignment() {
        let g = graph(1);
        assert!(Assignment::compute(&g, &[false, false], 1, RebalancePolicy::Bfs).is_none());
        assert!(Assignment::compute(&g, &[], 1, RebalancePolicy::Bfs).is_none());
    }
}
