//! An in-process N-member cluster: the federation's semantics without
//! sockets.
//!
//! [`ClusterSim`] wires a [`Coordinator`] to a roster of [`Member`]
//! replicas through direct calls instead of the TCP protocol, which makes
//! it the deterministic test double for the daemons: the differential
//! harness (`fuzz --diff-cluster`) replays fuzzed operation sequences
//! against it and a monolithic oracle, and the `cluster_establish_3`
//! trajectory bench measures its admission throughput. Fault injection
//! ([`ClusterFault`]) covers the two cluster-specific failure modes the
//! mutation self-tests must catch: a lost prepare (a reservation never
//! released) and a member crash in the middle of a wave (its planned
//! requests are orphaned and must be re-established serially by the
//! coordinator).
//!
//! The wave pipeline mirrors [`drqos_core::shard::ShardedNetwork::establish_wave`]
//! exactly — plan on frozen replicas, commit in request order through the
//! two-phase ledger, flush the deferred elastic fill once at wave end —
//! so a cluster wave is byte-identical to a monolithic serial run, churn
//! or no churn.

use crate::coordinator::{ApplyOutcome, Coordinator, MemberOp};
use crate::member::Member;
use drqos_core::channel::ConnectionId;
use drqos_core::env::RebalancePolicy;
use drqos_core::error::{AdmissionError, ClusterError};
use drqos_core::network::{EstablishPlan, EstablishRequest, Network};
use drqos_topology::{LinkId, NodeId};
use std::collections::BTreeSet;

/// Injected cluster faults for the mutation self-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterFault {
    /// Correct behaviour.
    #[default]
    None,
    /// The coordinator forgets to release one ledger reservation at the
    /// first commit (caught as a pending-prepare leak between waves).
    LosePrepare,
    /// The given member crashes in the middle of the first wave, after
    /// planning but before any commit: its planned requests are orphaned
    /// and the coordinator re-establishes them serially.
    CrashDuringWave(u64),
}

/// An in-process federation: one coordinator plus N member replicas
/// (dead members are `None`).
#[derive(Debug)]
pub struct ClusterSim {
    coord: Coordinator,
    members: Vec<Option<Member>>,
    genesis: Network,
    fault: ClusterFault,
    crash_fired: bool,
}

impl ClusterSim {
    /// Builds a cluster of `members` live members over `net`, partitioned
    /// with the default BFS policy from `seed`.
    pub fn new(net: Network, members: usize, seed: u64) -> Self {
        Self::with_policy(net, members, seed, RebalancePolicy::Bfs)
    }

    /// Like [`ClusterSim::new`] with an explicit rebalance policy.
    pub fn with_policy(net: Network, members: usize, seed: u64, policy: RebalancePolicy) -> Self {
        let members = members.max(1);
        let genesis = net.clone();
        let coord = Coordinator::new(net, members, seed, policy);
        let roster = (0..members)
            .map(|m| Some(Member::new(m as u64, genesis.clone())))
            .collect();
        Self {
            coord,
            members: roster,
            genesis,
            fault: ClusterFault::None,
            crash_fired: false,
        }
    }

    /// Arms a fault for the next wave(s).
    pub fn set_fault(&mut self, fault: ClusterFault) {
        self.fault = fault;
        self.crash_fired = false;
        self.coord
            .set_lose_prepare(matches!(fault, ClusterFault::LosePrepare));
    }

    /// The authoritative network.
    pub fn authoritative(&self) -> &Network {
        self.coord.net()
    }

    /// The coordinator (counters, assignment, invariants).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coord
    }

    /// Live member replicas, in id order.
    pub fn replicas(&self) -> impl Iterator<Item = &Member> {
        self.members.iter().flatten()
    }

    /// Live member ids.
    pub fn alive_members(&self) -> Vec<u64> {
        self.members.iter().flatten().map(Member::id).collect()
    }

    /// Reservations still pending after the last wave (must be zero on a
    /// correct cluster).
    pub fn pending_prepares(&self) -> usize {
        self.coord.pending_prepares()
    }

    /// The live member owning `node` under the current assignment.
    pub fn member_of_node(&self, node: NodeId) -> u64 {
        self.coord.member_of_node(node)
    }

    /// Admits a wave of requests: each is planned on its home member's
    /// replica (local, cross-partition footprints included), then
    /// committed through the coordinator's two-phase ledger in request
    /// order with one deferred elastic fill flushed at wave end. Replicas
    /// sync before the wave returns.
    pub fn establish_wave(
        &mut self,
        requests: &[EstablishRequest],
    ) -> Vec<Result<ConnectionId, AdmissionError>> {
        type PlannedLocal = (Result<EstablishPlan, AdmissionError>, Vec<(LinkId, u64)>);
        let homes: Vec<u64> = requests
            .iter()
            .map(|r| self.coord.member_of_node(r.src))
            .collect();
        // Phase 0: plan on the (frozen, synced) home replicas.
        let mut planned: Vec<Option<PlannedLocal>> = Vec::with_capacity(requests.len());
        for (req, &home) in requests.iter().zip(&homes) {
            let slot = self
                .members
                .get_mut(home as usize)
                .and_then(Option::as_mut)
                .map(|m| m.plan(req));
            planned.push(slot);
        }
        // Fault: a member dies after planning, before any commit. Its
        // plans are orphaned; the coordinator re-establishes the requests
        // serially on the survivors' behalf.
        if let ClusterFault::CrashDuringWave(victim) = self.fault {
            if !self.crash_fired && self.coord.is_alive(victim) && self.coord.alive_count() > 1 {
                self.crash_fired = true;
                let _ = self.coord.crash(victim);
                if let Some(slot) = self.members.get_mut(victim as usize) {
                    *slot = None;
                }
                for (slot, &home) in planned.iter_mut().zip(&homes) {
                    if home == victim {
                        *slot = None;
                    }
                }
            }
        }
        // Phase 1+2: reserve, validate, commit — in request order.
        let mut fill: Option<BTreeSet<ConnectionId>> = None;
        let mut results = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let (plan_opt, footprint) = match planned.get_mut(i).and_then(Option::take) {
                Some((plan_res, fp)) => (Some(plan_res), fp),
                None => (None, Vec::new()),
            };
            // Rebalance may have moved the home; any live member may
            // carry an unplanned request to the coordinator.
            let home = homes
                .get(i)
                .copied()
                .filter(|&h| self.coord.is_alive(h))
                .unwrap_or_else(|| self.coord.member_of_node(req.src));
            let committed = self.coord.prepare(home, &footprint).and_then(|p| {
                self.coord
                    .commit_prepared(p.ticket, plan_opt, req, &mut fill)
            });
            match committed {
                Ok(result) => results.push(result),
                // Unreachable on live members; keep the wave total anyway.
                Err(_) => results.push(self.coord.establish_unprepared(req, &mut fill)),
            }
        }
        self.coord.flush(fill);
        self.sync();
        results
    }

    /// Forwards a non-establish operation through the lowest-id live
    /// member (results are member-independent) and syncs replicas.
    ///
    /// # Errors
    ///
    /// Propagates coordinator errors (none on a live cluster).
    pub fn apply(&mut self, op: MemberOp) -> Result<ApplyOutcome, ClusterError> {
        let carrier = match op {
            MemberOp::FailLink { link } | MemberOp::RepairLink { link } => {
                self.coord.assignment().member_of_link(link)
            }
            MemberOp::FailNode { node } => self.coord.member_of_node(node),
            MemberOp::Release { .. } | MemberOp::FailSrlg { .. } | MemberOp::RepairSrlg { .. } => {
                self.alive_members().first().copied().unwrap_or(0)
            }
        };
        let outcome = self.coord.forward(carrier, op)?;
        self.sync();
        Ok(outcome)
    }

    /// JOIN: member `member` (re)joins with a genesis replica and catches
    /// up by replaying the full oplog.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DuplicateMember`] when already alive.
    pub fn join(&mut self, member: u64) -> Result<(), ClusterError> {
        self.coord.join(member)?;
        let idx = member as usize;
        if idx >= self.members.len() {
            self.members.resize_with(idx + 1, || None);
        }
        if let Some(slot) = self.members.get_mut(idx) {
            *slot = Some(Member::new(member, self.genesis.clone()));
        }
        self.sync();
        Ok(())
    }

    /// LEAVE: graceful departure; the member's partition rebalances to
    /// the survivors.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::leave`].
    pub fn leave(&mut self, member: u64) -> Result<(), ClusterError> {
        self.coord.leave(member)?;
        if let Some(slot) = self.members.get_mut(member as usize) {
            *slot = None;
        }
        self.sync();
        Ok(())
    }

    /// CRASH: abrupt departure; in-flight prepares abort, then the
    /// partition rebalances.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::crash`].
    pub fn crash(&mut self, member: u64) -> Result<(), ClusterError> {
        self.coord.crash(member)?;
        if let Some(slot) = self.members.get_mut(member as usize) {
            *slot = None;
        }
        self.sync();
        Ok(())
    }

    /// Replays new oplog records onto every live replica.
    fn sync(&mut self) {
        let coord = &self.coord;
        for m in self.members.iter_mut().flatten() {
            if let Ok(records) = coord.records_since(m.applied()) {
                m.apply(records);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drqos_core::network::NetworkConfig;
    use drqos_core::qos::ElasticQos;
    use drqos_core::snapshot::NetworkSnapshot;
    use drqos_sim::rng::Rng;
    use drqos_topology::regular::ring;

    fn fresh_net() -> Network {
        Network::new(ring(8).unwrap(), NetworkConfig::default())
    }

    fn request(src: usize, dst: usize) -> EstablishRequest {
        EstablishRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            qos: ElasticQos::paper_video(100),
        }
    }

    fn wave(n: usize, rng: &mut Rng) -> Vec<EstablishRequest> {
        (0..n)
            .map(|_| {
                let s = rng.range_usize(8);
                let mut d = rng.range_usize(7);
                if d >= s {
                    d += 1;
                }
                request(s, d)
            })
            .collect()
    }

    /// A cluster wave must be byte-identical to the monolithic serial
    /// oracle — the core federation claim.
    #[test]
    fn cluster_waves_match_the_serial_oracle() {
        for members in [1usize, 2, 3, 5] {
            let mut oracle = fresh_net();
            let mut cluster = ClusterSim::new(fresh_net(), members, 2001);
            let mut rng = Rng::seed_from_u64(42 + members as u64);
            for _ in 0..4 {
                let reqs = wave(12, &mut rng);
                let got = cluster.establish_wave(&reqs);
                let want = oracle.establish_batch(&reqs);
                assert_eq!(got, want, "{members}-member wave results diverged");
                assert_eq!(
                    NetworkSnapshot::capture(cluster.authoritative()),
                    NetworkSnapshot::capture(&oracle),
                    "{members}-member authoritative state diverged"
                );
            }
            assert_eq!(cluster.pending_prepares(), 0);
            for m in cluster.replicas() {
                assert_eq!(
                    NetworkSnapshot::capture(m.net()),
                    NetworkSnapshot::capture(&oracle),
                    "replica m{} diverged from the oracle",
                    m.id()
                );
            }
        }
    }

    /// Churn between waves must not disturb the replicated state: after
    /// LEAVE/CRASH/JOIN the survivors still match the oracle exactly.
    #[test]
    fn churn_preserves_oracle_equivalence() {
        let mut oracle = fresh_net();
        let mut cluster = ClusterSim::new(fresh_net(), 3, 2001);
        let mut rng = Rng::seed_from_u64(7);
        let reqs = wave(10, &mut rng);
        assert_eq!(cluster.establish_wave(&reqs), oracle.establish_batch(&reqs));
        cluster.crash(1).unwrap();
        let reqs = wave(10, &mut rng);
        assert_eq!(cluster.establish_wave(&reqs), oracle.establish_batch(&reqs));
        cluster.join(1).unwrap();
        cluster.leave(0).unwrap();
        let reqs = wave(10, &mut rng);
        assert_eq!(cluster.establish_wave(&reqs), oracle.establish_batch(&reqs));
        assert_eq!(
            NetworkSnapshot::capture(cluster.authoritative()),
            NetworkSnapshot::capture(&oracle)
        );
        // The rejoined member replayed the whole history from genesis and
        // must equal the oracle too.
        for m in cluster.replicas() {
            assert_eq!(
                NetworkSnapshot::capture(m.net()),
                NetworkSnapshot::capture(&oracle),
                "replica m{} diverged after churn",
                m.id()
            );
        }
    }

    /// Satellite property: a wave interrupted by a member crash commits
    /// every request exactly once (no double-commit across the handoff)
    /// and still matches the serial oracle.
    #[test]
    fn no_double_commit_across_a_mid_wave_crash() {
        let mut oracle = fresh_net();
        let mut cluster = ClusterSim::new(fresh_net(), 3, 2001);
        cluster.set_fault(ClusterFault::CrashDuringWave(2));
        let mut rng = Rng::seed_from_u64(99);
        let reqs = wave(16, &mut rng);
        let got = cluster.establish_wave(&reqs);
        let want = oracle.establish_batch(&reqs);
        assert_eq!(
            got.len(),
            reqs.len(),
            "every request gets exactly one result"
        );
        assert_eq!(got, want, "orphaned requests must re-establish serially");
        assert_eq!(
            NetworkSnapshot::capture(cluster.authoritative()),
            NetworkSnapshot::capture(&oracle)
        );
        // Exactly one establish record per request — committed once each.
        let establishes = cluster
            .coordinator()
            .records_since(0)
            .unwrap()
            .iter()
            .filter(|r| matches!(r, crate::coordinator::CommittedOp::Establish { .. }))
            .count();
        assert_eq!(establishes, reqs.len());
        assert_eq!(cluster.alive_members(), vec![0, 1]);
        assert_eq!(cluster.pending_prepares(), 0);
    }

    /// The lost-prepare fault must be observable as a reservation leak —
    /// the signal the mutation self-test relies on.
    #[test]
    fn a_lost_prepare_leaks_a_pending_reservation() {
        let mut cluster = ClusterSim::new(fresh_net(), 2, 2001);
        cluster.set_fault(ClusterFault::LosePrepare);
        let mut rng = Rng::seed_from_u64(5);
        let reqs = wave(6, &mut rng);
        cluster.establish_wave(&reqs);
        assert!(
            cluster.pending_prepares() > 0,
            "LosePrepare must leak a reservation"
        );
    }

    /// Forwarded failure/repair/release ops flow through the oplog and
    /// keep replicas synced.
    #[test]
    fn forwarded_ops_replicate() {
        let mut oracle = fresh_net();
        let mut cluster = ClusterSim::new(fresh_net(), 3, 2001);
        let mut rng = Rng::seed_from_u64(11);
        let reqs = wave(8, &mut rng);
        cluster.establish_wave(&reqs);
        oracle.establish_batch(&reqs);
        let link = oracle.graph().links().next().unwrap().id();
        let got = cluster.apply(MemberOp::FailLink { link }).unwrap();
        let want = oracle.fail_link(link);
        assert_eq!(got, ApplyOutcome::FailLink(want));
        let got = cluster.apply(MemberOp::RepairLink { link }).unwrap();
        let want = oracle.repair_link(link);
        assert_eq!(got, ApplyOutcome::RepairLink(want));
        for m in cluster.replicas() {
            assert_eq!(
                NetworkSnapshot::capture(m.net()),
                NetworkSnapshot::capture(&oracle)
            );
        }
    }
}
