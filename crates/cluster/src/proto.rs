//! The inter-daemon cluster protocol: frame bodies exchanged between a
//! member daemon and the coordinator.
//!
//! Transport framing is shared byte-for-byte with the service's binary
//! wire mode ([`drqos_core::framing`]): `[u32 LE len][body]`. The body
//! starts with a one-byte opcode from a family disjoint from the client
//! protocol's (`0x10..` member→coordinator, `0x20..` coordinator→member)
//! so a frame accidentally crossing protocols fails loudly. All integers
//! are little-endian `u64`; QoS travels as raw `(bmin, bmax, delta)`
//! Kbps and is revalidated on decode, exactly like the client protocol.
//!
//! The conversation (documented in SERVICE.md):
//!
//! ```text
//! member                         coordinator
//!   JOIN                      →
//!                             ←  WELCOME {member, seq}
//!   PREPARE {footprint}       →                         (phase 1)
//!                             ←  VERDICT {ticket, fresh}
//!   COMMIT {ticket, request}  →                         (phase 2)
//!                             ←  DONE {op_seq, seq}
//!   SYNC {applied}            →
//!                             ←  RECORDS {seq, records…}
//! ```
//!
//! A member renders its client's response by replaying the record at
//! `op_seq` on its own replica — no result travels on the wire, which is
//! only sound because replay is deterministic (`fuzz --diff-cluster`).
//! A member that stops waiting for a verdict sends `ABORT {ticket}`
//! (timeout, wire error code 504); the coordinator releases the
//! reservation. Crashes need no message: the coordinator treats a
//! member's EOF as CRASH, aborts its in-flight prepares and rebalances.

use crate::coordinator::{CommittedOp, MemberOp};
use drqos_core::channel::ConnectionId;
use drqos_core::framing::{get_u64, put_u64};
use drqos_core::network::EstablishRequest;
use drqos_core::qos::{Bandwidth, ElasticQos};
use drqos_topology::{LinkId, NodeId};
use std::fmt;

/// Member → coordinator opcodes (`0x10` family).
pub const C_JOIN: u8 = 0x10;
/// See [`C_JOIN`].
pub const C_PREPARE: u8 = 0x11;
/// See [`C_JOIN`].
pub const C_COMMIT: u8 = 0x12;
/// See [`C_JOIN`].
pub const C_ABORT: u8 = 0x13;
/// See [`C_JOIN`].
pub const C_OP: u8 = 0x14;
/// See [`C_JOIN`].
pub const C_SYNC: u8 = 0x15;
/// See [`C_JOIN`].
pub const C_LEAVE: u8 = 0x16;
/// See [`C_JOIN`].
pub const C_STATUS: u8 = 0x17;
/// See [`C_JOIN`].
pub const C_STOP: u8 = 0x18;

/// Coordinator → member opcodes (`0x20` family).
pub const C_WELCOME: u8 = 0x20;
/// See [`C_WELCOME`].
pub const C_VERDICT: u8 = 0x21;
/// See [`C_WELCOME`].
pub const C_DONE: u8 = 0x22;
/// See [`C_WELCOME`].
pub const C_RECORDS: u8 = 0x23;
/// See [`C_WELCOME`].
pub const C_STATE: u8 = 0x24;
/// See [`C_WELCOME`].
pub const C_ERR: u8 = 0x25;
/// See [`C_WELCOME`].
pub const C_OK: u8 = 0x26;

/// Most records a single `RECORDS` reply carries; a member behind by
/// more keeps `SYNC`ing until `applied == seq`. Keeps every frame well
/// under [`drqos_core::framing::MAX_FRAME_BYTES`].
pub const RECORDS_PER_SYNC: usize = 512;

/// A decode failure. The body is untrusted input; every error closes the
/// offending connection (there is no way to resynchronize mid-protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the message did.
    Truncated,
    /// The leading opcode byte is not in the expected family.
    UnknownOpcode(u8),
    /// A record or operation tag is unknown.
    UnknownTag(u8),
    /// Bytes remained after a complete message.
    Trailing,
    /// A field failed validation (bad QoS, bad UTF-8, bad bool).
    BadPayload,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated cluster frame"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown cluster opcode 0x{op:02x}"),
            ProtoError::UnknownTag(t) => write!(f, "unknown cluster record tag {t}"),
            ProtoError::Trailing => write!(f, "trailing bytes after cluster frame"),
            ProtoError::BadPayload => write!(f, "malformed cluster frame payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// An admission request in wire form: endpoints and raw QoS Kbps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRequest {
    /// Source node index.
    pub src: u64,
    /// Destination node index.
    pub dst: u64,
    /// Minimum bandwidth (Kbps).
    pub bmin: u64,
    /// Maximum bandwidth (Kbps).
    pub bmax: u64,
    /// Elastic increment (Kbps).
    pub delta: u64,
}

impl WireRequest {
    /// Captures an in-memory request for the wire.
    pub fn from_request(req: &EstablishRequest) -> Self {
        Self {
            src: req.src.index() as u64,
            dst: req.dst.index() as u64,
            bmin: req.qos.min().as_kbps(),
            bmax: req.qos.max().as_kbps(),
            delta: req.qos.increment().as_kbps(),
        }
    }

    /// Revalidates into an in-memory request (unit utility, like the
    /// client protocol).
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadPayload`] when the QoS triple is invalid.
    pub fn to_request(self) -> Result<EstablishRequest, ProtoError> {
        let qos = ElasticQos::new(
            Bandwidth::kbps(self.bmin),
            Bandwidth::kbps(self.bmax),
            Bandwidth::kbps(self.delta),
            1.0,
        )
        .map_err(|_| ProtoError::BadPayload)?;
        let src = usize::try_from(self.src).map_err(|_| ProtoError::BadPayload)?;
        let dst = usize::try_from(self.dst).map_err(|_| ProtoError::BadPayload)?;
        Ok(EstablishRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            qos,
        })
    }
}

/// A member → coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Join (or rejoin) the federation; the reply assigns a member id.
    Join,
    /// Phase 1: reserve the footprint `(link, plan digest)` pairs.
    Prepare {
        /// The admission footprint traced by local planning.
        footprint: Vec<(u64, u64)>,
    },
    /// Phase 2: commit a prepared ticket. The request rides along so the
    /// coordinator can replan serially (stale footprint) and append the
    /// oplog record.
    Commit {
        /// The ticket from the verdict.
        ticket: u64,
        /// The admission request.
        req: WireRequest,
    },
    /// Abandon a prepared ticket (member-side timeout).
    Abort {
        /// The ticket to release.
        ticket: u64,
    },
    /// Forward a non-establish operation.
    Op {
        /// The operation.
        op: MemberOp,
    },
    /// Pull oplog records past `applied`.
    Sync {
        /// Records already applied by this member.
        applied: u64,
    },
    /// Graceful departure.
    Leave,
    /// Human/CI-readable coordinator status (also served to non-members).
    Status,
    /// Stop the coordinator (invariant-gated shutdown).
    Stop,
}

/// A coordinator → member message.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Reply to [`ClusterMsg::Join`].
    Welcome {
        /// The assigned member id.
        member: u64,
        /// The coordinator's current oplog sequence.
        seq: u64,
    },
    /// Reply to [`ClusterMsg::Prepare`].
    Verdict {
        /// The two-phase ticket.
        ticket: u64,
        /// Whether every footprint digest was still current.
        fresh: bool,
    },
    /// Reply to [`ClusterMsg::Commit`] / [`ClusterMsg::Op`]: the
    /// operation committed at `op_seq`; replay it to learn the outcome.
    Done {
        /// The committed operation's sequence number.
        op_seq: u64,
        /// The coordinator's current oplog sequence.
        seq: u64,
    },
    /// Reply to [`ClusterMsg::Sync`]: at most [`RECORDS_PER_SYNC`]
    /// records starting at the member's `applied`.
    Records {
        /// The coordinator's current oplog sequence.
        seq: u64,
        /// The records to replay, in sequence order.
        records: Vec<CommittedOp>,
    },
    /// Reply to [`ClusterMsg::Status`].
    State {
        /// One status line (stable format, grepped by CI).
        text: String,
    },
    /// A [`drqos_core::error::ClusterError`] wire code (500–599).
    Err {
        /// The wire code.
        code: u16,
    },
    /// Bare acknowledgement (LEAVE, ABORT, STOP).
    Ok,
}

// ------------------------------------------------------------ encoding --

fn put_record(body: &mut Vec<u8>, record: &CommittedOp) {
    match *record {
        CommittedOp::Establish { src, dst, qos } => {
            body.push(1);
            put_u64(body, src.index() as u64);
            put_u64(body, dst.index() as u64);
            put_u64(body, qos.min().as_kbps());
            put_u64(body, qos.max().as_kbps());
            put_u64(body, qos.increment().as_kbps());
        }
        CommittedOp::Release { id } => {
            body.push(2);
            put_u64(body, id.0);
        }
        CommittedOp::FailLink { link } => {
            body.push(3);
            put_u64(body, link.index() as u64);
        }
        CommittedOp::RepairLink { link } => {
            body.push(4);
            put_u64(body, link.index() as u64);
        }
        CommittedOp::FailNode { node } => {
            body.push(5);
            put_u64(body, node.index() as u64);
        }
        CommittedOp::Rebalance { ref alive } => {
            body.push(6);
            put_u64(body, alive.len() as u64);
            body.extend(alive.iter().map(|&a| u8::from(a)));
        }
        CommittedOp::FailSrlg { group } => {
            body.push(7);
            put_u64(body, group as u64);
        }
        CommittedOp::RepairSrlg { group } => {
            body.push(8);
            put_u64(body, group as u64);
        }
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let v = get_u64(self.body, self.at).ok_or(ProtoError::Truncated)?;
        self.at += 8;
        Ok(v)
    }

    fn byte(&mut self) -> Result<u8, ProtoError> {
        let v = *self.body.get(self.at).ok_or(ProtoError::Truncated)?;
        self.at += 1;
        Ok(v)
    }

    fn len(&mut self) -> Result<usize, ProtoError> {
        usize::try_from(self.u64()?).map_err(|_| ProtoError::BadPayload)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.at.checked_add(n).ok_or(ProtoError::Truncated)?;
        let v = self.body.get(self.at..end).ok_or(ProtoError::Truncated)?;
        self.at = end;
        Ok(v)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(ProtoError::Trailing)
        }
    }

    fn record(&mut self) -> Result<CommittedOp, ProtoError> {
        match self.byte()? {
            1 => {
                let src = self.len()?;
                let dst = self.len()?;
                let (bmin, bmax, delta) = (self.u64()?, self.u64()?, self.u64()?);
                let qos = ElasticQos::new(
                    Bandwidth::kbps(bmin),
                    Bandwidth::kbps(bmax),
                    Bandwidth::kbps(delta),
                    1.0,
                )
                .map_err(|_| ProtoError::BadPayload)?;
                Ok(CommittedOp::Establish {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    qos,
                })
            }
            2 => Ok(CommittedOp::Release {
                id: ConnectionId(self.u64()?),
            }),
            3 => Ok(CommittedOp::FailLink {
                link: LinkId(self.len()?),
            }),
            4 => Ok(CommittedOp::RepairLink {
                link: LinkId(self.len()?),
            }),
            5 => Ok(CommittedOp::FailNode {
                node: NodeId(self.len()?),
            }),
            6 => {
                let n = self.len()?;
                if n > MAX_ROSTER {
                    return Err(ProtoError::BadPayload);
                }
                let alive = self
                    .bytes(n)?
                    .iter()
                    .map(|&b| match b {
                        0 => Ok(false),
                        1 => Ok(true),
                        _ => Err(ProtoError::BadPayload),
                    })
                    .collect::<Result<Vec<bool>, ProtoError>>()?;
                Ok(CommittedOp::Rebalance { alive })
            }
            7 => Ok(CommittedOp::FailSrlg { group: self.len()? }),
            8 => Ok(CommittedOp::RepairSrlg { group: self.len()? }),
            t => Err(ProtoError::UnknownTag(t)),
        }
    }
}

/// Sanity cap on a wire roster (untrusted length field).
const MAX_ROSTER: usize = 4096;

/// Encodes a member → coordinator message into a frame body.
pub fn encode_cluster_msg(msg: &ClusterMsg) -> Vec<u8> {
    let mut body = Vec::new();
    match msg {
        ClusterMsg::Join => body.push(C_JOIN),
        ClusterMsg::Prepare { footprint } => {
            body.push(C_PREPARE);
            put_u64(&mut body, footprint.len() as u64);
            for &(link, digest) in footprint {
                put_u64(&mut body, link);
                put_u64(&mut body, digest);
            }
        }
        ClusterMsg::Commit { ticket, req } => {
            body.push(C_COMMIT);
            put_u64(&mut body, *ticket);
            for v in [req.src, req.dst, req.bmin, req.bmax, req.delta] {
                put_u64(&mut body, v);
            }
        }
        ClusterMsg::Abort { ticket } => {
            body.push(C_ABORT);
            put_u64(&mut body, *ticket);
        }
        ClusterMsg::Op { op } => {
            body.push(C_OP);
            match *op {
                MemberOp::Release { id } => {
                    body.push(1);
                    put_u64(&mut body, id.0);
                }
                MemberOp::FailLink { link } => {
                    body.push(2);
                    put_u64(&mut body, link.index() as u64);
                }
                MemberOp::RepairLink { link } => {
                    body.push(3);
                    put_u64(&mut body, link.index() as u64);
                }
                MemberOp::FailNode { node } => {
                    body.push(4);
                    put_u64(&mut body, node.index() as u64);
                }
                MemberOp::FailSrlg { group } => {
                    body.push(5);
                    put_u64(&mut body, group as u64);
                }
                MemberOp::RepairSrlg { group } => {
                    body.push(6);
                    put_u64(&mut body, group as u64);
                }
            }
        }
        ClusterMsg::Sync { applied } => {
            body.push(C_SYNC);
            put_u64(&mut body, *applied);
        }
        ClusterMsg::Leave => body.push(C_LEAVE),
        ClusterMsg::Status => body.push(C_STATUS),
        ClusterMsg::Stop => body.push(C_STOP),
    }
    body
}

/// Decodes a member → coordinator frame body.
///
/// # Errors
///
/// Any [`ProtoError`]; the connection should be closed.
pub fn decode_cluster_msg(body: &[u8]) -> Result<ClusterMsg, ProtoError> {
    let mut c = Cursor::new(body);
    let msg = match c.byte()? {
        C_JOIN => ClusterMsg::Join,
        C_PREPARE => {
            let n = c.len()?;
            if n > MAX_ROSTER {
                return Err(ProtoError::BadPayload);
            }
            let mut footprint = Vec::with_capacity(n);
            for _ in 0..n {
                footprint.push((c.u64()?, c.u64()?));
            }
            ClusterMsg::Prepare { footprint }
        }
        C_COMMIT => ClusterMsg::Commit {
            ticket: c.u64()?,
            req: WireRequest {
                src: c.u64()?,
                dst: c.u64()?,
                bmin: c.u64()?,
                bmax: c.u64()?,
                delta: c.u64()?,
            },
        },
        C_ABORT => ClusterMsg::Abort { ticket: c.u64()? },
        C_OP => {
            let op = match c.byte()? {
                1 => MemberOp::Release {
                    id: ConnectionId(c.u64()?),
                },
                2 => MemberOp::FailLink {
                    link: LinkId(c.len()?),
                },
                3 => MemberOp::RepairLink {
                    link: LinkId(c.len()?),
                },
                4 => MemberOp::FailNode {
                    node: NodeId(c.len()?),
                },
                5 => MemberOp::FailSrlg { group: c.len()? },
                6 => MemberOp::RepairSrlg { group: c.len()? },
                t => return Err(ProtoError::UnknownTag(t)),
            };
            ClusterMsg::Op { op }
        }
        C_SYNC => ClusterMsg::Sync { applied: c.u64()? },
        C_LEAVE => ClusterMsg::Leave,
        C_STATUS => ClusterMsg::Status,
        C_STOP => ClusterMsg::Stop,
        op => return Err(ProtoError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(msg)
}

/// Encodes a coordinator → member message into a frame body.
pub fn encode_coord_msg(msg: &CoordMsg) -> Vec<u8> {
    let mut body = Vec::new();
    match msg {
        CoordMsg::Welcome { member, seq } => {
            body.push(C_WELCOME);
            put_u64(&mut body, *member);
            put_u64(&mut body, *seq);
        }
        CoordMsg::Verdict { ticket, fresh } => {
            body.push(C_VERDICT);
            put_u64(&mut body, *ticket);
            body.push(u8::from(*fresh));
        }
        CoordMsg::Done { op_seq, seq } => {
            body.push(C_DONE);
            put_u64(&mut body, *op_seq);
            put_u64(&mut body, *seq);
        }
        CoordMsg::Records { seq, records } => {
            body.push(C_RECORDS);
            put_u64(&mut body, *seq);
            put_u64(&mut body, records.len() as u64);
            for r in records {
                put_record(&mut body, r);
            }
        }
        CoordMsg::State { text } => {
            body.push(C_STATE);
            put_u64(&mut body, text.len() as u64);
            body.extend_from_slice(text.as_bytes());
        }
        CoordMsg::Err { code } => {
            body.push(C_ERR);
            put_u64(&mut body, u64::from(*code));
        }
        CoordMsg::Ok => body.push(C_OK),
    }
    body
}

/// Decodes a coordinator → member frame body.
///
/// # Errors
///
/// Any [`ProtoError`]; the connection should be closed.
pub fn decode_coord_msg(body: &[u8]) -> Result<CoordMsg, ProtoError> {
    let mut c = Cursor::new(body);
    let msg = match c.byte()? {
        C_WELCOME => CoordMsg::Welcome {
            member: c.u64()?,
            seq: c.u64()?,
        },
        C_VERDICT => CoordMsg::Verdict {
            ticket: c.u64()?,
            fresh: match c.byte()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::BadPayload),
            },
        },
        C_DONE => CoordMsg::Done {
            op_seq: c.u64()?,
            seq: c.u64()?,
        },
        C_RECORDS => {
            let seq = c.u64()?;
            let n = c.len()?;
            if n > RECORDS_PER_SYNC {
                return Err(ProtoError::BadPayload);
            }
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(c.record()?);
            }
            CoordMsg::Records { seq, records }
        }
        C_STATE => {
            let n = c.len()?;
            let text =
                String::from_utf8(c.bytes(n)?.to_vec()).map_err(|_| ProtoError::BadPayload)?;
            CoordMsg::State { text }
        }
        C_ERR => {
            let code = u16::try_from(c.u64()?).map_err(|_| ProtoError::BadPayload)?;
            CoordMsg::Err { code }
        }
        C_OK => CoordMsg::Ok,
        op => return Err(ProtoError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<CommittedOp> {
        vec![
            CommittedOp::Establish {
                src: NodeId(0),
                dst: NodeId(5),
                qos: ElasticQos::paper_video(100),
            },
            CommittedOp::Release {
                id: ConnectionId(3),
            },
            CommittedOp::FailLink { link: LinkId(7) },
            CommittedOp::RepairLink { link: LinkId(7) },
            CommittedOp::FailNode { node: NodeId(2) },
            CommittedOp::Rebalance {
                alive: vec![true, false, true],
            },
        ]
    }

    #[test]
    fn every_member_message_round_trips() {
        let msgs = vec![
            ClusterMsg::Join,
            ClusterMsg::Prepare {
                footprint: vec![(0, 42), (9, u64::MAX)],
            },
            ClusterMsg::Commit {
                ticket: 17,
                req: WireRequest {
                    src: 1,
                    dst: 4,
                    bmin: 100,
                    bmax: 500,
                    delta: 100,
                },
            },
            ClusterMsg::Abort { ticket: 17 },
            ClusterMsg::Op {
                op: MemberOp::FailLink { link: LinkId(3) },
            },
            ClusterMsg::Op {
                op: MemberOp::Release {
                    id: ConnectionId(12),
                },
            },
            ClusterMsg::Sync { applied: 99 },
            ClusterMsg::Leave,
            ClusterMsg::Status,
            ClusterMsg::Stop,
        ];
        for msg in msgs {
            let body = encode_cluster_msg(&msg);
            assert_eq!(decode_cluster_msg(&body), Ok(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn every_coordinator_message_round_trips() {
        let msgs = vec![
            CoordMsg::Welcome { member: 2, seq: 10 },
            CoordMsg::Verdict {
                ticket: 5,
                fresh: true,
            },
            CoordMsg::Done { op_seq: 7, seq: 9 },
            CoordMsg::Records {
                seq: 6,
                records: sample_records(),
            },
            CoordMsg::State {
                text: "members=3 seq=42".to_string(),
            },
            CoordMsg::Err { code: 503 },
            CoordMsg::Ok,
        ];
        for msg in msgs {
            let body = encode_coord_msg(&msg);
            assert_eq!(decode_coord_msg(&body), Ok(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        assert_eq!(decode_cluster_msg(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            decode_coord_msg(&[0x42]),
            Err(ProtoError::UnknownOpcode(0x42))
        );
        // Truncated prepare: announces 2 footprint pairs, carries none.
        let mut body = vec![C_PREPARE];
        put_u64(&mut body, 2);
        assert_eq!(decode_cluster_msg(&body), Err(ProtoError::Truncated));
        // Trailing garbage after a complete message.
        let mut body = encode_cluster_msg(&ClusterMsg::Join);
        body.push(0);
        assert_eq!(decode_cluster_msg(&body), Err(ProtoError::Trailing));
        // A bad bool in a verdict.
        let mut body = vec![C_VERDICT];
        put_u64(&mut body, 1);
        body.push(7);
        assert_eq!(decode_coord_msg(&body), Err(ProtoError::BadPayload));
        // A rejected QoS triple (bmin 0) in a commit.
        let commit = ClusterMsg::Commit {
            ticket: 0,
            req: WireRequest {
                src: 0,
                dst: 1,
                bmin: 0,
                bmax: 0,
                delta: 0,
            },
        };
        let body = encode_cluster_msg(&commit);
        match decode_cluster_msg(&body) {
            Ok(ClusterMsg::Commit { req, .. }) => {
                assert_eq!(req.to_request(), Err(ProtoError::BadPayload));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
        // An oversized roster length is rejected before allocation.
        let mut body = vec![C_RECORDS];
        put_u64(&mut body, 0);
        put_u64(&mut body, (RECORDS_PER_SYNC as u64) + 1);
        assert_eq!(decode_coord_msg(&body), Err(ProtoError::BadPayload));
    }

    #[test]
    fn wire_requests_rebuild_the_qos() {
        let req = WireRequest {
            src: 2,
            dst: 6,
            bmin: 100,
            bmax: 500,
            delta: 100,
        }
        .to_request()
        .unwrap();
        assert_eq!(req.src, NodeId(2));
        assert_eq!(req.qos.min().as_kbps(), 100);
        assert_eq!(req.qos.max().as_kbps(), 500);
        assert_eq!(req.qos.increment().as_kbps(), 100);
        assert_eq!(WireRequest::from_request(&req).bmin, 100);
    }
}
