use drqos_core::experiment::{run_churn, ExperimentConfig};
use drqos_sim::rng::Rng;
use drqos_topology::waxman;
use std::time::Instant;

fn main() {
    // One fig2-like point: 100-node waxman, 2000 connections target.
    let graph = waxman::paper_waxman(100)
        .generate(&mut Rng::seed_from_u64(42))
        .unwrap();
    for on in [true, false] {
        let mut cfg = ExperimentConfig::paper_default(2_000, 50);
        cfg.network.route_cache = on;
        let t0 = Instant::now();
        let (report, _net) = run_churn(graph.clone(), &cfg);
        println!(
            "cache={on}: {:?}  hits={} misses={} stale={} accepted={}",
            t0.elapsed(),
            report.cache.hits,
            report.cache.misses,
            report.cache.stale_evictions,
            report.accepted
        );
    }
}
