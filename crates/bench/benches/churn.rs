//! End-to-end churn throughput: how fast the full simulation loop
//! (arrival/termination events, retreat, re-distribution, measurement)
//! runs at a paper-scale load.

use drqos_bench::microbench::Criterion;
use drqos_bench::{criterion_group, criterion_main};
use drqos_core::experiment::{run_churn, ExperimentConfig};
use drqos_sim::rng::Rng;
use drqos_topology::waxman;

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn/end_to_end");
    group.sample_size(10);
    for &(nchan, events) in &[(200usize, 200usize), (1_000, 200)] {
        group.bench_function(format!("{nchan}conn_{events}events"), |b| {
            b.iter(|| {
                let graph = waxman::paper_waxman(100)
                    .generate(&mut Rng::seed_from_u64(9))
                    .unwrap();
                let mut config = ExperimentConfig::paper_default(nchan, 50);
                config.churn_events = events;
                run_churn(graph, &config)
            });
        });
    }
    group.finish();
}

fn bench_churn_with_failures(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn/with_failures");
    group.sample_size(10);
    group.bench_function("500conn_200events_gamma2x", |b| {
        b.iter(|| {
            let graph = waxman::paper_waxman(100)
                .generate(&mut Rng::seed_from_u64(10))
                .unwrap();
            let mut config = ExperimentConfig::paper_default(500, 50);
            config.churn_events = 200;
            config.gamma = 0.002;
            config.mean_repair = 500.0;
            run_churn(graph, &config)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_churn, bench_churn_with_failures);
criterion_main!(benches);
