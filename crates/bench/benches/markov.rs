//! Micro-benchmarks for the CTMC solvers — the SHARPE-replacement layer.
//! GTH is the default; the direct LU solve and power iteration are the
//! alternatives it is compared against.

use drqos_bench::microbench::Criterion;
use drqos_bench::{criterion_group, criterion_main};
use drqos_markov::ctmc::{Ctmc, CtmcBuilder};
use drqos_markov::steady_state;
use drqos_markov::transient;

/// A dense pseudo-random irreducible chain with `n` states.
fn dense_chain(n: usize) -> Ctmc {
    let mut builder = CtmcBuilder::new(n);
    let mut x = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = ((x >> 33) as f64) / (u32::MAX as f64) * 2.0 + 0.001;
                builder = builder.rate(i, j, r).unwrap();
            }
        }
    }
    builder.build().unwrap()
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov/steady_state");
    for &n in &[5usize, 9, 32] {
        let chain = dense_chain(n);
        group.bench_function(format!("gth_{n}"), |b| {
            b.iter(|| steady_state::gth(&chain).unwrap());
        });
        group.bench_function(format!("linear_{n}"), |b| {
            b.iter(|| steady_state::linear(&chain).unwrap());
        });
        group.bench_function(format!("power_{n}"), |b| {
            b.iter(|| steady_state::power(&chain, 1e-10, 1_000_000).unwrap());
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov/transient");
    let chain = dense_chain(9);
    let initial = {
        let mut v = vec![0.0; 9];
        v[0] = 1.0;
        v
    };
    for &t in &[1.0f64, 100.0] {
        group.bench_function(format!("uniformization_t{t}"), |b| {
            b.iter(|| transient::transient(&chain, &initial, t, 1e-9).unwrap());
        });
    }
    group.finish();
}

fn bench_hitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov/hitting");
    for &n in &[9usize, 32] {
        let chain = dense_chain(n);
        group.bench_function(format!("mean_hitting_times_{n}"), |b| {
            b.iter(|| drqos_markov::hitting::mean_hitting_times(&chain, &[n - 1]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_transient, bench_hitting);
criterion_main!(benches);
