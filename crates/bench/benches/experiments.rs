//! Scaled-down versions of every paper experiment, run under Criterion so
//! `cargo bench` exercises (and times) the exact code paths behind each
//! table and figure. The rows are printed once per bench so the series
//! shape is visible in the bench log; the full-size regenerators are the
//! `fig2`/`table1`/`fig3`/`fig4`/`ablation` binaries.

use drqos_bench::microbench::Criterion;
use drqos_bench::{ablation, fig2, fig3, fig4, table1};
use drqos_bench::{criterion_group, criterion_main};
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_preview() {
    PRINT_ONCE.call_once(|| {
        println!("\n--- scaled-down experiment previews (full size: bin targets) ---");
        for r in fig2(&[200, 800, 1_600], 400, 1).into_rows() {
            println!(
                "fig2   nchan={:5} sim={:6.1} model={:6.1} ideal={:6.1}",
                r.nchan, r.sim, r.analytic, r.ideal
            );
        }
        for r in table1(&[800], 400, 1).into_rows() {
            println!(
                "table1 nchan={:5} random5={:6.1} random9={:6.1} tier5={:6.1} tier9={:6.1}",
                r.nchan, r.random5, r.random9, r.tier5, r.tier9
            );
        }
        for r in fig3(&[100, 200], 800, 400, 1).into_rows() {
            println!(
                "fig3   nodes={:4} edges={:5} sim={:6.1} model={:6.1}",
                r.nodes, r.edges, r.sim, r.analytic
            );
        }
        for r in fig4(&[1e-6, 1e-3], 400, 1).into_rows() {
            println!(
                "fig4   gamma={:8.0e} sim2000={:6.1} sim3000={:6.1}",
                r.gamma, r.sim2000, r.sim3000
            );
        }
        for r in ablation(&[800], 400, 1).into_rows() {
            println!(
                "ablate nchan={:5} elastic={:6.1} rigid={:6.1} max-utility={:6.1}",
                r.nchan, r.elastic_avg, r.rigid_avg, r.max_utility_avg
            );
        }
        println!("--- end previews ---\n");
    });
}

fn bench_experiments(c: &mut Criterion) {
    print_preview();
    let mut group = c.benchmark_group("experiments/scaled");
    group.sample_size(10);
    group.bench_function("fig2_point_800conn", |b| {
        b.iter(|| fig2(&[800], 300, 2));
    });
    group.bench_function("table1_point_800conn", |b| {
        b.iter(|| table1(&[800], 300, 2));
    });
    group.bench_function("fig3_point_200nodes", |b| {
        b.iter(|| fig3(&[200], 800, 300, 2));
    });
    group.bench_function("fig4_point_gamma1e-3", |b| {
        b.iter(|| fig4(&[1e-3], 300, 2));
    });
    group.bench_function("ablation_point_800conn", |b| {
        b.iter(|| ablation(&[800], 300, 2));
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
