//! Micro-benchmarks for route selection: bounded-flooding emulation vs.
//! the plain shortest-path baseline vs. Suurballe disjoint pairs.

use drqos_bench::microbench::Criterion;
use drqos_bench::{criterion_group, criterion_main};
use drqos_core::qos::Bandwidth;
use drqos_core::routing::{self, BackupDisjointness, RouterKind};
use drqos_sim::rng::Rng;
use drqos_topology::disjoint::suurballe;
use drqos_topology::graph::{Graph, LinkId, NodeId};
use drqos_topology::paths::{bfs_path, k_shortest_paths, pass_all};
use drqos_topology::waxman;

fn graph() -> Graph {
    waxman::paper_waxman(100)
        .generate(&mut Rng::seed_from_u64(11))
        .unwrap()
}

fn endpoints(g: &Graph, rng: &mut Rng) -> (NodeId, NodeId) {
    let n = g.node_count();
    let a = rng.range_usize(n);
    let mut b = rng.range_usize(n - 1);
    if b >= a {
        b += 1;
    }
    (NodeId(a), NodeId(b))
}

fn bench_single_path(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("routing/single_path");
    group.bench_function("bfs", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| {
            let (s, d) = endpoints(&g, &mut rng);
            bfs_path(&g, s, d, &pass_all)
        });
    });
    group.bench_function("flood_with_allowance", |b| {
        let mut rng = Rng::seed_from_u64(1);
        let allowance = |l: LinkId| Bandwidth::kbps(1000 + l.index() as u64);
        b.iter(|| {
            let (s, d) = endpoints(&g, &mut rng);
            routing::flood_path(&g, s, d, g.node_count(), &pass_all, &allowance)
        });
    });
    group.finish();
}

fn bench_pairs(c: &mut Criterion) {
    let g = graph();
    let allowance = |_: LinkId| Bandwidth::kbps(1000);
    let mut group = c.benchmark_group("routing/disjoint_pair");
    group.bench_function("two_phase_flooding", |b| {
        let mut rng = Rng::seed_from_u64(2);
        b.iter(|| {
            let (s, d) = endpoints(&g, &mut rng);
            let kind = RouterKind::default();
            let p = routing::route_primary(kind, &g, s, d, &pass_all, &allowance)?;
            routing::route_backup(
                kind,
                &g,
                &p,
                BackupDisjointness::MaximallyDisjoint,
                &pass_all,
                &allowance,
            )
        });
    });
    group.bench_function("suurballe", |b| {
        let mut rng = Rng::seed_from_u64(2);
        b.iter(|| {
            let (s, d) = endpoints(&g, &mut rng);
            suurballe(&g, s, d, &pass_all)
        });
    });
    group.finish();
}

fn bench_k_shortest(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("routing/k_shortest");
    group.sample_size(20);
    group.bench_function("yen_k4", |b| {
        let mut rng = Rng::seed_from_u64(3);
        b.iter(|| {
            let (s, d) = endpoints(&g, &mut rng);
            k_shortest_paths(&g, s, d, 4, &pass_all)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_path, bench_pairs, bench_k_shortest);
criterion_main!(benches);
