//! Micro-benchmarks for topology generation and metrics — the substrate
//! every experiment builds on.

use drqos_bench::microbench::{BatchSize, Criterion};
use drqos_bench::{criterion_group, criterion_main};
use drqos_sim::rng::Rng;
use drqos_topology::{metrics, transit_stub::TransitStubConfig, waxman};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/generate");
    group.bench_function("waxman_100", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| waxman::paper_waxman(100).generate(&mut rng).unwrap());
    });
    group.bench_function("waxman_500_scaled", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| waxman::paper_waxman_scaled(500).generate(&mut rng).unwrap());
    });
    group.bench_function("transit_stub_100", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| {
            TransitStubConfig::paper_default()
                .generate(&mut rng)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/metrics");
    let graph = waxman::paper_waxman(100)
        .generate(&mut Rng::seed_from_u64(2))
        .unwrap();
    group.bench_function("summarize_100", |b| {
        b.iter(|| metrics::summarize(&graph));
    });
    group.bench_function("diameter_100", |b| {
        b.iter(|| metrics::diameter(&graph));
    });
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/calibrate");
    group.sample_size(10);
    group.bench_function("calibrate_beta_354_edges", |b| {
        b.iter_batched(
            || Rng::seed_from_u64(3),
            |mut rng| waxman::calibrate_beta(100, 0.33, 354, 2, &mut rng).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_metrics, bench_calibration);
criterion_main!(benches);
