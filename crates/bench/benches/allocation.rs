//! Micro-benchmarks for admission and elastic re-distribution under load —
//! the per-event cost of the paper's retreat/re-allocate dynamics.

use drqos_bench::microbench::{BatchSize, Criterion};
use drqos_bench::{criterion_group, criterion_main};
use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::ElasticQos;
use drqos_core::workload::Workload;
use drqos_sim::rng::Rng;
use drqos_topology::waxman;

/// A network pre-loaded with `n` connections.
fn loaded_network(n: usize, seed: u64) -> (Network, Rng) {
    let graph = waxman::paper_waxman(100)
        .generate(&mut Rng::seed_from_u64(seed))
        .unwrap();
    let mut net = Network::new(graph, NetworkConfig::default());
    let workload = Workload::new(ElasticQos::paper_video(50));
    let mut rng = Rng::seed_from_u64(seed ^ 0xABCD);
    let nodes = net.graph().node_count();
    let mut established = 0;
    while established < n {
        let req = workload.request(&mut rng, nodes);
        if net.establish(req.src, req.dst, req.qos).is_ok() {
            established += 1;
        }
    }
    (net, rng)
}

fn bench_establish_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation/establish_release");
    group.sample_size(20);
    for &load in &[500usize, 2_000] {
        group.bench_function(format!("at_{load}_connections"), |b| {
            b.iter_batched(
                || loaded_network(load, 5),
                |(mut net, mut rng)| {
                    let workload = Workload::new(ElasticQos::paper_video(50));
                    let nodes = net.graph().node_count();
                    // One arrival + one departure: a full churn step.
                    let req = workload.request(&mut rng, nodes);
                    let id = net.establish(req.src, req.dst, req.qos);
                    if let Ok(id) = id {
                        net.release(id).unwrap();
                    }
                    net
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation/failover");
    group.sample_size(20);
    group.bench_function("fail_and_repair_at_1000", |b| {
        b.iter_batched(
            || loaded_network(1_000, 6),
            |(mut net, mut rng)| {
                let up: Vec<_> = net.up_links().collect();
                let link = up[rng.range_usize(up.len())];
                net.fail_link(link).unwrap();
                net.repair_link(link).unwrap();
                net
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_establish_release, bench_failover);
criterion_main!(benches);
