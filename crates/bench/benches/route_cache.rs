//! Micro-benchmark for the admission route cache: repeat-admission
//! planning with `DRQOS_ROUTE_CACHE` on vs. off, plus a steady
//! establish/release churn loop showing the cache surviving real commits.
//!
//! Besides the usual stdout report, the cached/uncached medians and the
//! resulting speedup are recorded into `target/experiments/runtime.json`
//! under the `route_cache` entry (the PR's acceptance criterion is a ≥ 2×
//! speedup on the repeat-admission workload).

use drqos_bench::microbench::Criterion;
use drqos_bench::runner::record_runtime_entry_in;
use drqos_bench::{criterion_group, criterion_main};
use drqos_core::network::{Network, NetworkConfig};
use drqos_core::qos::ElasticQos;
use drqos_sim::rng::Rng;
use drqos_topology::graph::NodeId;
use drqos_topology::waxman;
use std::hint::black_box;
use std::time::Instant;

fn network(route_cache: bool) -> Network {
    let graph = waxman::paper_waxman(100)
        .generate(&mut Rng::seed_from_u64(11))
        .unwrap();
    let mut net = Network::new(
        graph,
        NetworkConfig {
            route_cache,
            ..NetworkConfig::default()
        },
    );
    // A realistic background load so planning has real work to skip.
    let mut rng = Rng::seed_from_u64(7);
    let mut admitted = 0;
    while admitted < 60 {
        let (s, d) = endpoints(&net, &mut rng);
        if net.establish(s, d, qos()).is_ok() {
            admitted += 1;
        }
    }
    net
}

fn qos() -> ElasticQos {
    ElasticQos::paper_video(100)
}

fn endpoints(net: &Network, rng: &mut Rng) -> (NodeId, NodeId) {
    let n = net.graph().node_count();
    let a = rng.range_usize(n);
    let mut b = rng.range_usize(n - 1);
    if b >= a {
        b += 1;
    }
    (NodeId(a), NodeId(b))
}

/// A fixed request mix replayed over and over — the repeat-admission
/// pattern (steady churn re-requesting popular endpoint pairs, no
/// topology events).
fn request_mix(net: &Network, pairs: usize) -> Vec<(NodeId, NodeId)> {
    let mut rng = Rng::seed_from_u64(13);
    (0..pairs).map(|_| endpoints(net, &mut rng)).collect()
}

/// Median ns per `plan_establish` over `rounds` passes of the mix (two
/// warm passes first: the cache's doorkeeper memoizes a key on its
/// second miss, so after two passes a cached network answers from the
/// memo).
fn median_plan_ns(net: &Network, mix: &[(NodeId, NodeId)], rounds: usize) -> f64 {
    for _ in 0..2 {
        for &(s, d) in mix {
            let _ = black_box(net.plan_establish(s, d, qos()));
        }
    }
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            for &(s, d) in mix {
                let _ = black_box(net.plan_establish(s, d, qos()));
            }
            t0.elapsed().as_nanos() as f64 / mix.len() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_repeat_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_cache/repeat_admission");
    group.sample_size(30);
    for (label, enabled) in [("cached", true), ("uncached", false)] {
        let net = network(enabled);
        let mix = request_mix(&net, 32);
        group.bench_function(label, |b| {
            b.iter(|| {
                for &(s, d) in &mix {
                    let _ = black_box(net.plan_establish(s, d, qos()));
                }
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_cache/establish_release_churn");
    group.sample_size(20);
    for (label, enabled) in [("cached", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            let mut net = network(enabled);
            let mut rng = Rng::seed_from_u64(29);
            b.iter(|| {
                let (s, d) = endpoints(&net, &mut rng);
                if let Ok(id) = net.establish(s, d, qos()) {
                    net.release(id).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn record_speedup(_c: &mut Criterion) {
    let cached_net = network(true);
    let uncached_net = network(false);
    let mix = request_mix(&cached_net, 32);
    let cached_ns = median_plan_ns(&cached_net, &mix, 30);
    let uncached_ns = median_plan_ns(&uncached_net, &mix, 30);
    let speedup = uncached_ns / cached_ns.max(1.0);
    let stats = cached_net.route_cache_stats();
    println!(
        "\nroute_cache speedup: {speedup:.2}x \
         (uncached {uncached_ns:.0} ns/plan, cached {cached_ns:.0} ns/plan, \
         {} hits / {} misses / {} stale)",
        stats.hits, stats.misses, stats.stale_evictions
    );
    let json = format!(
        concat!(
            "{{\"name\":\"route_cache\",\"workload\":\"repeat_admission\",",
            "\"uncached_ns_per_plan\":{:.0},\"cached_ns_per_plan\":{:.0},",
            "\"speedup\":{:.2},\"cache_hits\":{},\"cache_misses\":{},",
            "\"cache_stale\":{}}}"
        ),
        uncached_ns, cached_ns, speedup, stats.hits, stats.misses, stats.stale_evictions,
    );
    // `cargo bench` starts in the package root, not the workspace root —
    // anchor explicitly so the entry lands in the canonical aggregate.
    let experiments = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/experiments");
    match record_runtime_entry_in(&experiments, "route_cache", &json) {
        Ok(path) => println!("(recorded in {})", path.display()),
        Err(e) => eprintln!("warning: could not record route_cache runtime: {e}"),
    }
}

criterion_group!(benches, bench_repeat_admission, bench_churn, record_speedup);
criterion_main!(benches);
