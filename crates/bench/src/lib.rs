//! # drqos-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (Section 4), shared between the runnable binaries
//! (`fig2`, `table1`, `fig3`, `fig4`, `ablation`) and the Criterion
//! benches (which run scaled-down versions).
//!
//! Each harness returns plain data rows; the binaries render them with
//! [`drqos_analysis::report::TextTable`]. EXPERIMENTS.md records the
//! paper-vs-measured comparison for each of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod experiments;
pub mod microbench;
pub mod runner;
pub mod trajectory;

pub use experiments::{
    ablation, dependability, fig2, fig3, fig4, scenario_scaling, scenario_sweep, table1,
    AblationRow, DependabilityRow, Fig2Row, Fig3Row, Fig4Row, ScenarioSweepRow, Table1Row,
};
